"""Shared configuration for the experiment benches.

Model runs are cached process-wide (see :mod:`repro.eval.models`), so
Figure 6, Figure 8 and Table 3 share their underlying simulations when
the whole directory runs in one pytest session.
"""

import pytest


@pytest.fixture(scope="session")
def scale():
    """Workload scale used by all benches (1 = Table-1-analog sizes)."""
    return 1
