"""Perf smoke: the compiled paths must not be slower than the scalar ones.

Three sections, selected by ``--timing`` / ``--serve``:

**ISA section** (default) runs the pinned ``cmp/li`` co-simulation (the
sweep's heavyweight job shape) once per execution engine, ``--reps``
times each, and compares the minimum CPU seconds — CPU time, not wall
clock, so a noisy shared CI runner does not flap the check.  The two
engines' ``SlipstreamResult``s must also be equal, making this a cheap
end-to-end identity smoke on top of the dedicated test suite.

**Timing section** (``--timing``) does the same A/B for the memoized
timing model (:mod:`repro.uarch.compiled_timing`), toggled through
``REPRO_COMPILED_TIMING``, on the superscalar baseline and the
slipstream co-simulation, and additionally asserts that the recorded
per-instruction pipeline :class:`~repro.uarch.scheduler.Timestamps`
are identical under both modes.  The superscalar core — where the
scalar path pays full per-instruction scheduler calls — gates strictly
(memoized may never be slower); the slipstream loops were already
hand-inlined, so there the memoized path only has to stay within a
small documented noise margin.

**Serve section** (``--serve``) stress-tests the eval daemon
(:mod:`repro.eval.serve`) with simulated many-client load: it
self-hosts a daemon on a private cache root, races ``--clients``
concurrent HTTP clients through one cold pass and one warm pass of
overlapping batches, then replays the same grid inline and compares
result digests.  The hard gates are correctness, chosen to hold even
in the 1-CPU ``--jobs 1`` degradation mode: daemon results
byte-identical to inline, the cold pass simulates each unique job
exactly once (in-flight dedup), and the warm pass simulates nothing.
Warm aggregate throughput is measured at 1, 2 and ``--clients``
concurrent clients and reported in ``BENCH_serve.json`` — evidence of
scaling on multi-core, informational on CI.

Fails (exit 1) only when a compiled path is *slower* than its scalar
reference (or results/digests differ): the point is to catch a
regression that silently turns the default path into a pessimization,
not to enforce a specific speedup on unknown CI hardware.  The measured
numbers are written as JSON for artifact upload; read a ratio with::

    python -c "import json; print(json.load(open('BENCH_perf_smoke.json'))['speedup'])"
    python -c "import json; print(json.load(open('BENCH_timing.json'))['models']['ss64']['speedup'])"
    python -c "import json; print(json.load(open('BENCH_serve.json'))['cold']['deduped'])"
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.core.slipstream import SlipstreamProcessor
from repro.uarch import SS_64x4
from repro.uarch.compiled_timing import TIMING_ENV
from repro.uarch.core import SuperscalarCore
from repro.uarch.timeline import trace_core_timeline
from repro.workloads.suite import get_benchmark

BENCHMARK = "li"

#: Noise margin for the slipstream timing gate: its scalar loops are
#: hand-inlined, so the memoized path roughly ties there and a strict
#: comparison would flap on shared runners.
CMP_TIMING_TOLERANCE = 1.10


def measure(program, engine: str, reps: int):
    """(min CPU seconds, result) over ``reps`` fresh co-simulations."""
    best = None
    result = None
    for _ in range(reps):
        c0 = time.process_time()
        result = SlipstreamProcessor(program, engine=engine).run()
        cpu = time.process_time() - c0
        if best is None or cpu < best:
            best = cpu
    return best, result


def measure_timing(factory, reps: int):
    """A/B the compiled timing model: {"on"|"off": (min CPU s, result)}.

    Rounds are interleaved (on, off, on, off, ...) so drifting machine
    load hits both modes symmetrically; each round constructs a fresh
    simulator via ``factory`` because the mode is latched at run start.
    """
    out = {}
    rounds = {"on": [], "off": []}
    for _ in range(reps):
        for mode, flag in (("on", "1"), ("off", "0")):
            os.environ[TIMING_ENV] = flag
            sim = factory()
            c0 = time.process_time()
            result = sim.run()
            cpu = time.process_time() - c0
            rounds[mode].append(round(cpu, 4))
            if mode not in out or cpu < out[mode][0]:
                out[mode] = (cpu, result)
    return out, rounds


def timestamps_identical() -> bool:
    """True iff the recorded pipeline timestamps of every instruction
    match between the memoized and scalar timing paths (jpeg@1 on the
    superscalar baseline, captured through the timeline recorder)."""
    program = get_benchmark("jpeg").program(1)
    stamps = {}
    for flag in ("1", "0"):
        os.environ[TIMING_ENV] = flag
        core = SuperscalarCore(SS_64x4, program)
        timeline = trace_core_timeline(core, limit=1 << 30)
        core.run()
        stamps[flag] = [entry.stamps for entry in timeline.entries]
    return stamps["1"] == stamps["0"]


def timing_main(args) -> int:
    program = get_benchmark(BENCHMARK).program(1)
    runs = {
        "ss64": measure_timing(
            lambda: SuperscalarCore(SS_64x4, program), args.reps),
        "cmp": measure_timing(
            lambda: SlipstreamProcessor(program), args.reps),
    }
    stamps_ok = timestamps_identical()
    os.environ.pop(TIMING_ENV, None)

    models = {}
    identical = stamps_ok
    for name, (modes, rounds) in runs.items():
        on_cpu, on_result = modes["on"]
        off_cpu, off_result = modes["off"]
        identical = identical and on_result == off_result
        models[name] = {
            "scalar_cpu_seconds": round(off_cpu, 4),
            "memoized_cpu_seconds": round(on_cpu, 4),
            "speedup": round(off_cpu / on_cpu, 3) if on_cpu > 0
            else float("inf"),
            "rounds_scalar": rounds["off"],
            "rounds_memoized": rounds["on"],
            "results_identical": on_result == off_result,
        }
    payload = {
        "benchmark": f"{BENCHMARK}@1",
        "python": platform.python_version(),
        "reps": args.reps,
        "models": models,
        "timestamps_identical": stamps_ok,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))

    if not identical:
        print("FAIL: timing modes disagree (results or timestamps)",
              file=sys.stderr)
        return 1
    if models["ss64"]["speedup"] < 1.0:
        print("FAIL: memoized timing slower than scalar on the "
              "superscalar baseline", file=sys.stderr)
        return 1
    if models["cmp"]["memoized_cpu_seconds"] > (
            models["cmp"]["scalar_cpu_seconds"] * CMP_TIMING_TOLERANCE):
        print(f"FAIL: memoized timing more than "
              f"{CMP_TIMING_TOLERANCE:.0%} of scalar on slipstream",
              file=sys.stderr)
        return 1
    return 0


def _serve_clients(port: int, batches, timeout: float = 600.0):
    """Race one ServeClient thread per batch; returns (wall seconds,
    list of per-client result-line lists, in batch order)."""
    import threading

    from repro.eval.serve import ServeClient

    results = [None] * len(batches)
    errors = []

    def tenant(slot, batch):
        try:
            client = ServeClient(port=port, timeout=timeout)
            results[slot] = client.submit_all(batch)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=tenant, args=(slot, batch))
               for slot, batch in enumerate(batches)]
    w0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - w0
    if errors:
        raise errors[0]
    return wall, results


def serve_main(args) -> int:
    import tempfile

    from repro.eval import jobs as eval_jobs
    from repro.eval import models
    from repro.eval.models import run_cached
    from repro.eval.serve import (
        result_payload,
        spec_from_json,
        start_server_thread,
    )
    from repro.workloads.suite import benchmark_suite

    benchmarks = [b.name for b in benchmark_suite()]
    grid = [{"model": "count", "benchmark": name} for name in benchmarks]
    # Overlapping batches: every client wants the whole grid, rotated so
    # the same key is in flight from several tenants at once.
    batches = [grid[i % len(grid):] + grid[:i % len(grid)]
               for i in range(args.clients)]

    saved = (models._DISK, models._DISK_ENABLED)
    models.clear_cache()
    eval_jobs.reset_simulation_count()
    tmp = tempfile.mkdtemp(prefix="repro-serve-bench-")
    models.configure_disk_cache(enabled=True, cache_dir=os.path.join(
        tmp, "daemon-cache"))
    handle = start_server_thread(jobs=args.jobs, backend=args.backend)
    try:
        cold_wall, cold_results = _serve_clients(handle.port, batches)
        cold_stats = dict(handle.service.stats.__dict__)
        warm_wall, _ = _serve_clients(handle.port, batches)
        warm_stats = dict(handle.service.stats.__dict__)

        # Warm aggregate throughput at increasing client counts.
        throughput = {}
        for clients in sorted({1, 2, args.clients}):
            wall, outcomes = _serve_clients(handle.port, batches[:clients])
            served = sum(len(lines) for lines in outcomes)
            throughput[str(clients)] = round(served / wall, 1) if wall > 0 \
                else float("inf")

        # Inline reference on a fresh root: digests must match the
        # daemon's line for every job of every client.
        models.clear_cache()
        models.configure_disk_cache(enabled=True, cache_dir=os.path.join(
            tmp, "inline-cache"))
        w0 = time.perf_counter()
        inline_digests = {}
        for job in grid:
            spec = spec_from_json(job)
            line = result_payload(0, spec.key, "inline", run_cached(spec))
            inline_digests[line["job"]] = line["digest"]
        inline_wall = time.perf_counter() - w0
        identical = all(
            line["ok"] and inline_digests[line["job"]] == line["digest"]
            for lines in cold_results for line in lines
        )
    finally:
        handle.stop()
        models.clear_cache()
        models._DISK, models._DISK_ENABLED = saved

    warm_simulated = warm_stats["simulated"] - cold_stats["simulated"]
    payload = {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "backend": handle.service.backend.name,
        "jobs": args.jobs,
        "clients": args.clients,
        "unique_jobs": len(grid),
        "cold": {
            "wall_seconds": round(cold_wall, 3),
            "requested": len(grid) * args.clients,
            "simulated": cold_stats["simulated"],
            "deduped": cold_stats["deduped"],
            "disk_hits": cold_stats["disk_hits"],
            "memory_hits": cold_stats["memory_hits"],
        },
        "warm": {
            "wall_seconds": round(warm_wall, 3),
            "simulated": warm_simulated,
        },
        "warm_jobs_per_second_by_clients": throughput,
        "inline_wall_seconds": round(inline_wall, 3),
        "identical_to_inline": identical,
    }
    with open(args.out, "w", encoding="utf-8") as handle_out:
        json.dump(payload, handle_out, indent=2)
        handle_out.write("\n")
    print(json.dumps(payload, indent=2))

    if not identical:
        print("FAIL: daemon results differ from inline execution",
              file=sys.stderr)
        return 1
    if cold_stats["simulated"] != len(grid):
        print(f"FAIL: cold pass simulated {cold_stats['simulated']} jobs "
              f"for {len(grid)} unique keys (dedup broken)",
              file=sys.stderr)
        return 1
    if warm_simulated != 0:
        print(f"FAIL: warm pass simulated {warm_simulated} jobs "
              "(cache broken)", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=2,
                        help="runs per engine; min is compared (default 2)")
    parser.add_argument("--out", default=None,
                        help="JSON output path")
    parser.add_argument("--timing", action="store_true",
                        help="run the compiled-timing section instead of "
                             "the ISA-engine section")
    parser.add_argument("--serve", action="store_true",
                        help="run the eval-daemon stress section instead")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent HTTP clients for --serve "
                             "(default 4)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="daemon worker pool size for --serve "
                             "(default 1: the CI degradation mode)")
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "spawn", "inline"),
                        help="daemon worker backend for --serve")
    args = parser.parse_args(argv)
    if args.timing:
        args.out = args.out or "BENCH_timing.json"
        return timing_main(args)
    if args.serve:
        args.out = args.out or "BENCH_serve.json"
        return serve_main(args)
    args.out = args.out or "BENCH_perf_smoke.json"

    program = get_benchmark(BENCHMARK).program(1)
    interp_cpu, interp_result = measure(program, "interpreted", args.reps)
    compiled_cpu, compiled_result = measure(program, "compiled", args.reps)

    identical = compiled_result == interp_result
    speedup = interp_cpu / compiled_cpu if compiled_cpu > 0 else float("inf")
    payload = {
        "benchmark": f"cmp/{BENCHMARK}@1",
        "python": platform.python_version(),
        "reps": args.reps,
        "interpreted_cpu_seconds": round(interp_cpu, 4),
        "compiled_cpu_seconds": round(compiled_cpu, 4),
        "speedup": round(speedup, 3),
        "results_identical": identical,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))

    if not identical:
        print("FAIL: engines disagree on the co-simulation result",
              file=sys.stderr)
        return 1
    if compiled_cpu > interp_cpu:
        print(f"FAIL: compiled engine slower than the interpreter "
              f"({compiled_cpu:.2f}s > {interp_cpu:.2f}s CPU)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
