"""Perf smoke: the compiled engine must not be slower than the interpreter.

Runs the pinned ``cmp/li`` co-simulation (the sweep's heavyweight job
shape) once per engine, ``--reps`` times each, and compares the minimum
CPU seconds — CPU time, not wall clock, so a noisy shared CI runner
does not flap the check.  The two engines' ``SlipstreamResult``s must
also be equal, making this a cheap end-to-end identity smoke on top of
the dedicated test suite.

Fails (exit 1) only when the compiled engine is *slower* than the
interpreter: the point is to catch a regression that silently turns the
default engine into a pessimization, not to enforce a specific speedup
on unknown CI hardware.  The measured numbers are written as JSON for
artifact upload; read the ratio with::

    python -c "import json; print(json.load(open('BENCH_perf_smoke.json'))['speedup'])"
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.core.slipstream import SlipstreamProcessor
from repro.workloads.suite import get_benchmark

BENCHMARK = "li"


def measure(program, engine: str, reps: int):
    """(min CPU seconds, result) over ``reps`` fresh co-simulations."""
    best = None
    result = None
    for _ in range(reps):
        c0 = time.process_time()
        result = SlipstreamProcessor(program, engine=engine).run()
        cpu = time.process_time() - c0
        if best is None or cpu < best:
            best = cpu
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=2,
                        help="runs per engine; min is compared (default 2)")
    parser.add_argument("--out", default="BENCH_perf_smoke.json",
                        help="JSON output path")
    args = parser.parse_args(argv)

    program = get_benchmark(BENCHMARK).program(1)
    interp_cpu, interp_result = measure(program, "interpreted", args.reps)
    compiled_cpu, compiled_result = measure(program, "compiled", args.reps)

    identical = compiled_result == interp_result
    speedup = interp_cpu / compiled_cpu if compiled_cpu > 0 else float("inf")
    payload = {
        "benchmark": f"cmp/{BENCHMARK}@1",
        "python": platform.python_version(),
        "reps": args.reps,
        "interpreted_cpu_seconds": round(interp_cpu, 4),
        "compiled_cpu_seconds": round(compiled_cpu, 4),
        "speedup": round(speedup, 3),
        "results_identical": identical,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))

    if not identical:
        print("FAIL: engines disagree on the co-simulation result",
              file=sys.stderr)
        return 1
    if compiled_cpu > interp_cpu:
        print(f"FAIL: compiled engine slower than the interpreter "
              f"({compiled_cpu:.2f}s > {interp_cpu:.2f}s CPU)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
