"""Perf smoke: the compiled paths must not be slower than the scalar ones.

Three sections, selected by ``--timing`` / ``--serve``:

**ISA section** (default) runs the pinned ``cmp/li`` co-simulation (the
sweep's heavyweight job shape) once per execution engine, ``--reps``
times each, and compares the minimum CPU seconds — CPU time, not wall
clock, so a noisy shared CI runner does not flap the check.  The two
engines' ``SlipstreamResult``s must also be equal, making this a cheap
end-to-end identity smoke on top of the dedicated test suite.

**Timing section** (``--timing``) does the same A/B for the memoized
timing model (:mod:`repro.uarch.compiled_timing`), toggled through
``REPRO_COMPILED_TIMING``, on the superscalar baseline and the
slipstream co-simulation, and additionally asserts that the recorded
per-instruction pipeline :class:`~repro.uarch.scheduler.Timestamps`
are identical under both modes.  The superscalar core — where the
scalar path pays full per-instruction scheduler calls — gates strictly
(memoized may never be slower); the slipstream loops were already
hand-inlined, so there the memoized path only has to stay within a
small documented noise margin.

**Serve section** (``--serve``) stress-tests the eval daemon
(:mod:`repro.eval.serve`) with simulated many-client load: it
self-hosts a daemon on a private cache root, races ``--clients``
concurrent HTTP clients through one cold pass and one warm pass of
overlapping batches, then replays the same grid inline and compares
result digests.  The hard gates are correctness, chosen to hold even
in the 1-CPU ``--jobs 1`` degradation mode: daemon results
byte-identical to inline, the cold pass simulates each unique job
exactly once (in-flight dedup), and the warm pass simulates nothing.
Warm aggregate throughput is measured at 1, 2 and ``--clients``
concurrent clients and reported in ``BENCH_serve.json`` — evidence of
scaling on multi-core, informational on CI.

**Federation section** (``--federation``) measures the digest-sharded
daemon federation (:mod:`repro.eval.remote`): for fleets of 1, 2 and 4
subprocess worker daemons it self-hosts a front, pushes one cold pass
and repeated warm passes of a grid through it, and records fleet-wide
throughput in ``BENCH_federation.json``.  Warm passes clear only the
front's memory, so every line still crosses the wire to a
cache-warm worker — the number measures federation dispatch, not the
simulator.  Hard gates: every digest identical to inline execution,
the cold pass simulates each unique job exactly once *fleet-wide*, the
warm passes simulate nothing anywhere, and 2-worker warm throughput is
at least the 1-worker number.  The keep-alive dividend is reported as
requests/second over one persistent connection vs a fresh connection
per request.

Fails (exit 1) only when a compiled path is *slower* than its scalar
reference (or results/digests differ): the point is to catch a
regression that silently turns the default path into a pessimization,
not to enforce a specific speedup on unknown CI hardware.  The measured
numbers are written as JSON for artifact upload; read a ratio with::

    python -c "import json; print(json.load(open('BENCH_perf_smoke.json'))['speedup'])"
    python -c "import json; print(json.load(open('BENCH_timing.json'))['models']['ss64']['speedup'])"
    python -c "import json; print(json.load(open('BENCH_serve.json'))['cold']['deduped'])"
    python -c "import json; print(json.load(open('BENCH_federation.json'))['fleets']['2']['warm_jobs_per_second'])"
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.core.slipstream import SlipstreamProcessor
from repro.uarch import SS_64x4
from repro.uarch.compiled_timing import TIMING_ENV
from repro.uarch.core import SuperscalarCore
from repro.uarch.timeline import trace_core_timeline
from repro.workloads.suite import get_benchmark

BENCHMARK = "li"

#: Noise margin for the slipstream timing gate: its scalar loops are
#: hand-inlined, so the memoized path roughly ties there and a strict
#: comparison would flap on shared runners.
CMP_TIMING_TOLERANCE = 1.10


def measure(program, engine: str, reps: int):
    """(min CPU seconds, result) over ``reps`` fresh co-simulations."""
    best = None
    result = None
    for _ in range(reps):
        c0 = time.process_time()
        result = SlipstreamProcessor(program, engine=engine).run()
        cpu = time.process_time() - c0
        if best is None or cpu < best:
            best = cpu
    return best, result


def measure_timing(factory, reps: int):
    """A/B the compiled timing model: {"on"|"off": (min CPU s, result)}.

    Rounds are interleaved (on, off, on, off, ...) so drifting machine
    load hits both modes symmetrically; each round constructs a fresh
    simulator via ``factory`` because the mode is latched at run start.
    """
    out = {}
    rounds = {"on": [], "off": []}
    for _ in range(reps):
        for mode, flag in (("on", "1"), ("off", "0")):
            os.environ[TIMING_ENV] = flag
            sim = factory()
            c0 = time.process_time()
            result = sim.run()
            cpu = time.process_time() - c0
            rounds[mode].append(round(cpu, 4))
            if mode not in out or cpu < out[mode][0]:
                out[mode] = (cpu, result)
    return out, rounds


def timestamps_identical() -> bool:
    """True iff the recorded pipeline timestamps of every instruction
    match between the memoized and scalar timing paths (jpeg@1 on the
    superscalar baseline, captured through the timeline recorder)."""
    program = get_benchmark("jpeg").program(1)
    stamps = {}
    for flag in ("1", "0"):
        os.environ[TIMING_ENV] = flag
        core = SuperscalarCore(SS_64x4, program)
        timeline = trace_core_timeline(core, limit=1 << 30)
        core.run()
        stamps[flag] = [entry.stamps for entry in timeline.entries]
    return stamps["1"] == stamps["0"]


def timing_main(args) -> int:
    program = get_benchmark(BENCHMARK).program(1)
    runs = {
        "ss64": measure_timing(
            lambda: SuperscalarCore(SS_64x4, program), args.reps),
        "cmp": measure_timing(
            lambda: SlipstreamProcessor(program), args.reps),
    }
    stamps_ok = timestamps_identical()
    os.environ.pop(TIMING_ENV, None)

    models = {}
    identical = stamps_ok
    for name, (modes, rounds) in runs.items():
        on_cpu, on_result = modes["on"]
        off_cpu, off_result = modes["off"]
        identical = identical and on_result == off_result
        models[name] = {
            "scalar_cpu_seconds": round(off_cpu, 4),
            "memoized_cpu_seconds": round(on_cpu, 4),
            "speedup": round(off_cpu / on_cpu, 3) if on_cpu > 0
            else float("inf"),
            "rounds_scalar": rounds["off"],
            "rounds_memoized": rounds["on"],
            "results_identical": on_result == off_result,
        }
    payload = {
        "benchmark": f"{BENCHMARK}@1",
        "python": platform.python_version(),
        "reps": args.reps,
        "models": models,
        "timestamps_identical": stamps_ok,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))

    if not identical:
        print("FAIL: timing modes disagree (results or timestamps)",
              file=sys.stderr)
        return 1
    if models["ss64"]["speedup"] < 1.0:
        print("FAIL: memoized timing slower than scalar on the "
              "superscalar baseline", file=sys.stderr)
        return 1
    if models["cmp"]["memoized_cpu_seconds"] > (
            models["cmp"]["scalar_cpu_seconds"] * CMP_TIMING_TOLERANCE):
        print(f"FAIL: memoized timing more than "
              f"{CMP_TIMING_TOLERANCE:.0%} of scalar on slipstream",
              file=sys.stderr)
        return 1
    return 0


def _serve_clients(port: int, batches, timeout: float = 600.0):
    """Race one ServeClient thread per batch; returns (wall seconds,
    list of per-client result-line lists, in batch order)."""
    import threading

    from repro.eval.serve import ServeClient

    results = [None] * len(batches)
    errors = []

    def tenant(slot, batch):
        try:
            client = ServeClient(port=port, timeout=timeout)
            results[slot] = client.submit_all(batch)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=tenant, args=(slot, batch))
               for slot, batch in enumerate(batches)]
    w0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - w0
    if errors:
        raise errors[0]
    return wall, results


def serve_main(args) -> int:
    import tempfile

    from repro.eval import jobs as eval_jobs
    from repro.eval import models
    from repro.eval.models import run_cached
    from repro.eval.serve import (
        result_payload,
        spec_from_json,
        start_server_thread,
    )
    from repro.workloads.suite import benchmark_suite

    benchmarks = [b.name for b in benchmark_suite()]
    grid = [{"model": "count", "benchmark": name} for name in benchmarks]
    # Overlapping batches: every client wants the whole grid, rotated so
    # the same key is in flight from several tenants at once.
    batches = [grid[i % len(grid):] + grid[:i % len(grid)]
               for i in range(args.clients)]

    saved = (models._DISK, models._DISK_ENABLED)
    models.clear_cache()
    eval_jobs.reset_simulation_count()
    tmp = tempfile.mkdtemp(prefix="repro-serve-bench-")
    models.configure_disk_cache(enabled=True, cache_dir=os.path.join(
        tmp, "daemon-cache"))
    handle = start_server_thread(jobs=args.jobs, backend=args.backend)
    try:
        cold_wall, cold_results = _serve_clients(handle.port, batches)
        cold_stats = dict(handle.service.stats.__dict__)
        warm_wall, _ = _serve_clients(handle.port, batches)
        warm_stats = dict(handle.service.stats.__dict__)

        # Warm aggregate throughput at increasing client counts.
        throughput = {}
        for clients in sorted({1, 2, args.clients}):
            wall, outcomes = _serve_clients(handle.port, batches[:clients])
            served = sum(len(lines) for lines in outcomes)
            throughput[str(clients)] = round(served / wall, 1) if wall > 0 \
                else float("inf")

        # Inline reference on a fresh root: digests must match the
        # daemon's line for every job of every client.
        models.clear_cache()
        models.configure_disk_cache(enabled=True, cache_dir=os.path.join(
            tmp, "inline-cache"))
        w0 = time.perf_counter()
        inline_digests = {}
        for job in grid:
            spec = spec_from_json(job)
            line = result_payload(0, spec.key, "inline", run_cached(spec))
            inline_digests[line["job"]] = line["digest"]
        inline_wall = time.perf_counter() - w0
        identical = all(
            line["ok"] and inline_digests[line["job"]] == line["digest"]
            for lines in cold_results for line in lines
        )
    finally:
        handle.stop()
        models.clear_cache()
        models._DISK, models._DISK_ENABLED = saved

    warm_simulated = warm_stats["simulated"] - cold_stats["simulated"]
    payload = {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "backend": handle.service.backend.name,
        "jobs": args.jobs,
        "clients": args.clients,
        "unique_jobs": len(grid),
        "cold": {
            "wall_seconds": round(cold_wall, 3),
            "requested": len(grid) * args.clients,
            "simulated": cold_stats["simulated"],
            "deduped": cold_stats["deduped"],
            "disk_hits": cold_stats["disk_hits"],
            "memory_hits": cold_stats["memory_hits"],
        },
        "warm": {
            "wall_seconds": round(warm_wall, 3),
            "simulated": warm_simulated,
        },
        "warm_jobs_per_second_by_clients": throughput,
        "inline_wall_seconds": round(inline_wall, 3),
        "identical_to_inline": identical,
    }
    with open(args.out, "w", encoding="utf-8") as handle_out:
        json.dump(payload, handle_out, indent=2)
        handle_out.write("\n")
    print(json.dumps(payload, indent=2))

    if not identical:
        print("FAIL: daemon results differ from inline execution",
              file=sys.stderr)
        return 1
    if cold_stats["simulated"] != len(grid):
        print(f"FAIL: cold pass simulated {cold_stats['simulated']} jobs "
              f"for {len(grid)} unique keys (dedup broken)",
              file=sys.stderr)
        return 1
    if warm_simulated != 0:
        print(f"FAIL: warm pass simulated {warm_simulated} jobs "
              "(cache broken)", file=sys.stderr)
        return 1
    return 0


def _spawn_worker_daemon(tmp: str, tag: str, jobs: int = 2):
    """One worker daemon subprocess on a private cache root; returns
    (process, port)."""
    import subprocess

    src_dir = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    port_file = os.path.join(tmp, f"{tag}.port")
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.eval", "serve", "--port", "0",
         "--port-file", port_file, "--jobs", str(jobs),
         "--backend", "thread",
         "--cache-dir", os.path.join(tmp, f"cache-{tag}")],
        env=env, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60.0
    while True:
        try:
            with open(port_file, encoding="utf-8") as handle:
                text = handle.read().strip()
            if text:
                return proc, int(text)
        except OSError:
            pass
        if proc.poll() is not None:
            raise RuntimeError(f"worker {tag} exited {proc.returncode}")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError(f"worker {tag} never bound a port")
        time.sleep(0.05)


def _connection_reuse_delta(port: int, requests: int = 30):
    """Requests/second for one persistent keep-alive connection vs a
    fresh connection per request (same /v1/health endpoint)."""
    from repro.eval.serve import ServeClient

    client = ServeClient(port=port)
    w0 = time.perf_counter()
    for _ in range(requests):
        client.health()
    keepalive_wall = time.perf_counter() - w0
    client.close()

    w0 = time.perf_counter()
    for _ in range(requests):
        one_shot = ServeClient(port=port)
        one_shot.health()
        one_shot.close()
    fresh_wall = time.perf_counter() - w0

    keepalive_rps = requests / keepalive_wall if keepalive_wall > 0 else 0.0
    fresh_rps = requests / fresh_wall if fresh_wall > 0 else 0.0
    return {
        "requests": requests,
        "keepalive_requests_per_second": round(keepalive_rps, 1),
        "fresh_connection_requests_per_second": round(fresh_rps, 1),
        "reuse_speedup": round(keepalive_rps / fresh_rps, 3)
        if fresh_rps > 0 else float("inf"),
    }


def federation_main(args) -> int:
    import tempfile

    from repro.eval import models
    from repro.eval.models import run_cached
    from repro.eval.serve import (
        ServeClient,
        spec_from_json,
        start_server_thread,
    )
    from repro.workloads.suite import benchmark_suite

    # 24 unique jobs: enough lines per warm pass that parallel worker
    # streams, not fixed per-request overhead, dominate the timing.
    grid = [{"model": "count", "benchmark": b.name, "scale": scale}
            for b in benchmark_suite() for scale in (2, 3, 4)]
    warm_reps = max(3, args.reps)
    fleets = {}
    digests_by_fleet = {}
    reuse = None
    saved = (models._DISK, models._DISK_ENABLED)
    models._DISK, models._DISK_ENABLED = None, False
    tmp = tempfile.mkdtemp(prefix="repro-federation-bench-")
    try:
        for fleet_size in (1, 2, 4):
            workers = [_spawn_worker_daemon(tmp, f"f{fleet_size}-w{i}")
                       for i in range(fleet_size)]
            front = None
            try:
                urls = [f"127.0.0.1:{port}" for _, port in workers]
                models.clear_cache()
                front = start_server_thread(
                    jobs=1, backend="inline", use_disk_cache=False,
                    workers=urls,
                )
                client = ServeClient(port=front.port)

                def fleet_sims():
                    total = 0
                    for _, port in workers:
                        probe = ServeClient(port=port)
                        total += probe.health()["stats"]["simulated"]
                        probe.close()
                    return total

                sims_start = fleet_sims()
                w0 = time.perf_counter()
                cold_lines = client.submit_all(grid)
                cold_wall = time.perf_counter() - w0
                cold_sims = fleet_sims() - sims_start

                best_warm = None
                for _ in range(warm_reps):
                    # Cold front memory, warm workers: each line still
                    # crosses the wire — the federation is what's timed.
                    models.clear_cache()
                    w0 = time.perf_counter()
                    warm_lines = client.submit_all(grid)
                    wall = time.perf_counter() - w0
                    if best_warm is None or wall < best_warm:
                        best_warm = wall
                warm_sims = fleet_sims() - sims_start - cold_sims

                if reuse is None:
                    reuse = _connection_reuse_delta(front.port)
                metrics = client.metrics()["metrics"]
                client.close()

                digests_by_fleet[fleet_size] = {
                    line["job"]: line["digest"]
                    for line in cold_lines + warm_lines if line["ok"]
                }
                fleets[str(fleet_size)] = {
                    "workers": fleet_size,
                    "cold_wall_seconds": round(cold_wall, 3),
                    "cold_simulated": cold_sims,
                    "cold_ok": all(line["ok"] for line in cold_lines),
                    "warm_wall_seconds": round(best_warm, 3),
                    "warm_simulated": warm_sims,
                    "warm_jobs_per_second": round(len(grid) / best_warm, 1)
                    if best_warm > 0 else float("inf"),
                    "jobs_forwarded": metrics.get(
                        "federation.jobs_forwarded", 0),
                    "worker_failures": metrics.get(
                        "federation.worker_failures", 0),
                }
            finally:
                if front is not None:
                    front.stop()
                for proc, _ in workers:
                    if proc.poll() is None:
                        proc.kill()
                    proc.wait(timeout=30)

        # Inline reference digests on a cold in-process cache.
        from repro.eval.serve import result_payload

        models.clear_cache()
        inline_digests = {}
        for job in grid:
            spec = spec_from_json(job)
            line = result_payload(0, spec.key, "inline", run_cached(spec))
            inline_digests[line["job"]] = line["digest"]
    finally:
        models.clear_cache()
        models._DISK, models._DISK_ENABLED = saved

    identical = all(
        fleet_digests == inline_digests
        for fleet_digests in digests_by_fleet.values()
    )
    payload = {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "unique_jobs": len(grid),
        "warm_reps": warm_reps,
        "fleets": fleets,
        "connection_reuse": reuse,
        "identical_to_inline": identical,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))

    if not identical:
        print("FAIL: federation results differ from inline execution",
              file=sys.stderr)
        return 1
    for name, fleet in fleets.items():
        if not fleet["cold_ok"]:
            print(f"FAIL: {name}-worker cold pass had failing jobs",
                  file=sys.stderr)
            return 1
        if fleet["cold_simulated"] != len(grid):
            print(f"FAIL: {name}-worker cold pass simulated "
                  f"{fleet['cold_simulated']} jobs for {len(grid)} unique "
                  f"keys (fleet-wide exactly-once broken)", file=sys.stderr)
            return 1
        if fleet["warm_simulated"] != 0:
            print(f"FAIL: {name}-worker warm passes simulated "
                  f"{fleet['warm_simulated']} jobs (worker caches broken)",
                  file=sys.stderr)
            return 1
    if fleets["2"]["warm_jobs_per_second"] < fleets["1"][
            "warm_jobs_per_second"]:
        print("FAIL: 2-worker warm throughput below the single-daemon "
              "number (federation dispatch is a pessimization)",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=2,
                        help="runs per engine; min is compared (default 2)")
    parser.add_argument("--out", default=None,
                        help="JSON output path")
    parser.add_argument("--timing", action="store_true",
                        help="run the compiled-timing section instead of "
                             "the ISA-engine section")
    parser.add_argument("--serve", action="store_true",
                        help="run the eval-daemon stress section instead")
    parser.add_argument("--federation", action="store_true",
                        help="run the daemon-federation section instead "
                             "(1/2/4 subprocess worker fleets)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent HTTP clients for --serve "
                             "(default 4)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="daemon worker pool size for --serve "
                             "(default 1: the CI degradation mode)")
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "spawn", "inline"),
                        help="daemon worker backend for --serve")
    args = parser.parse_args(argv)
    if args.timing:
        args.out = args.out or "BENCH_timing.json"
        return timing_main(args)
    if args.serve:
        args.out = args.out or "BENCH_serve.json"
        return serve_main(args)
    if args.federation:
        args.out = args.out or "BENCH_federation.json"
        return federation_main(args)
    args.out = args.out or "BENCH_perf_smoke.json"

    program = get_benchmark(BENCHMARK).program(1)
    interp_cpu, interp_result = measure(program, "interpreted", args.reps)
    compiled_cpu, compiled_result = measure(program, "compiled", args.reps)

    identical = compiled_result == interp_result
    speedup = interp_cpu / compiled_cpu if compiled_cpu > 0 else float("inf")
    payload = {
        "benchmark": f"cmp/{BENCHMARK}@1",
        "python": platform.python_version(),
        "reps": args.reps,
        "interpreted_cpu_seconds": round(interp_cpu, 4),
        "compiled_cpu_seconds": round(compiled_cpu, 4),
        "speedup": round(speedup, 3),
        "results_identical": identical,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))

    if not identical:
        print("FAIL: engines disagree on the co-simulation result",
              file=sys.stderr)
        return 1
    if compiled_cpu > interp_cpu:
        print(f"FAIL: compiled engine slower than the interpreter "
              f"({compiled_cpu:.2f}s > {interp_cpu:.2f}s CPU)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
