"""E-AB1: ablations of the design knobs the paper calls out.

* Confidence threshold (section 2.1.1): lower thresholds remove more,
  but with more IR-mispredictions — the paper's threshold of 32 keeps
  IR-mispredictions under 0.05/1000.
* Trace length / R-DFG size (section 2.1.3): back-propagation is
  confined to a trace, so shorter traces find fewer chains.
* Delay buffer capacity (section 2.2): the A-stream's lead distance;
  small buffers throttle the A-stream with backpressure.
* IR-detector scope (section 2.1.2): value kills arrive from later
  traces, so a one-trace scope misses most ineffectual writes.
"""

from repro.eval.experiments import (
    ablation_confidence_threshold,
    ablation_delay_buffer,
    ablation_ir_scope,
)
from repro.eval.reporting import render_table

BENCH = "li"  # mid-sized, removal-sensitive workload


def test_confidence_threshold_sweep(benchmark):
    rows = benchmark.pedantic(
        ablation_confidence_threshold,
        kwargs={"benchmark": BENCH, "thresholds": (4, 32, 128)},
        rounds=1, iterations=1,
    )
    print()
    print(render_table(
        rows, ["threshold", "removal_fraction", "ir_misp_per_1000", "ipc"],
        title=f"Ablation: confidence threshold ({BENCH})",
        float_format="{:.3f}",
    ))
    removal = {row["threshold"]: row["removal_fraction"] for row in rows}
    assert removal[4] >= removal[32] >= removal[128]
    irm = {row["threshold"]: row["ir_misp_per_1000"] for row in rows}
    assert irm[4] >= irm[128]


def test_delay_buffer_sweep(benchmark):
    rows = benchmark.pedantic(
        ablation_delay_buffer,
        kwargs={"benchmark": BENCH, "capacities": (32, 256)},
        rounds=1, iterations=1,
    )
    print()
    print(render_table(
        rows, ["capacity", "backpressure_events", "ipc"],
        title=f"Ablation: delay buffer capacity ({BENCH})",
        float_format="{:.3f}",
    ))
    by_cap = {row["capacity"]: row for row in rows}
    assert by_cap[32]["backpressure_events"] >= by_cap[256]["backpressure_events"]
    assert by_cap[32]["ipc"] <= by_cap[256]["ipc"] + 0.05


def test_ir_scope_sweep(benchmark):
    rows = benchmark.pedantic(
        ablation_ir_scope,
        kwargs={"benchmark": BENCH, "scopes": (1, 8)},
        rounds=1, iterations=1,
    )
    print()
    print(render_table(
        rows, ["scope_traces", "removal_fraction", "ipc"],
        title=f"Ablation: IR-detector scope ({BENCH})",
        float_format="{:.3f}",
    ))
    by_scope = {row["scope_traces"]: row for row in rows}
    # Kills arrive from later traces: a one-trace scope finds less.
    assert by_scope[1]["removal_fraction"] <= by_scope[8]["removal_fraction"]
