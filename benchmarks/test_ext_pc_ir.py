"""E-EXT: the paper's sketched non-trace-based IR mechanism (§2.1.3).

The paper predicts ("Using a non-trace-based IR-predictor could fix
the problem") that per-instruction confidence would recover the
removal that gcc's unstable traces leave on the table — and warns that
separate counters risk removing a producer without its consumer,
causing spurious IR-mispredictions.

This bench tests both halves of that prediction:

* gcc's removal fraction rises substantially under the "pc" mechanism;
* IR-mispredictions rise too (the chains are no longer removed
  atomically), with every deviation still detected and recovered
  (outputs bit-identical, recovery audits clean).
"""

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamConfig, SlipstreamProcessor
from repro.eval.models import run_slipstream_model
from repro.eval.reporting import render_table
from repro.workloads.suite import get_benchmark

BENCHES = ("gcc", "li")


def _compare(scale):
    rows = []
    for name in BENCHES:
        program = get_benchmark(name).program(scale)
        reference = FunctionalSimulator(program).run()
        trace = run_slipstream_model(name, scale)
        pc = SlipstreamProcessor(
            get_benchmark(name).program(scale),
            SlipstreamConfig(removal_mechanism="pc"),
        ).run()
        assert pc.output == reference.output
        assert pc.recovery_audit_shortfalls == 0
        rows.append(
            {
                "benchmark": name,
                "trace_removal": trace.removal_fraction,
                "pc_removal": pc.removal_fraction,
                "trace_irm": trace.ir_mispredictions_per_1000,
                "pc_irm": pc.ir_mispredictions_per_1000,
                "trace_ipc": trace.ipc,
                "pc_ipc": pc.ipc,
            }
        )
    return rows


def test_pc_mechanism_vs_trace_mechanism(benchmark, scale):
    rows = benchmark.pedantic(_compare, args=(scale,), rounds=1, iterations=1)
    print()
    print(render_table(
        rows,
        columns=["benchmark", "trace_removal", "pc_removal", "trace_irm",
                 "pc_irm", "trace_ipc", "pc_ipc"],
        headers=["benchmark", "removal (trace)", "removal (pc)",
                 "IR-misp/1000 (trace)", "IR-misp/1000 (pc)",
                 "IPC (trace)", "IPC (pc)"],
        title="Extension: per-instruction vs trace-based removal",
        float_format="{:.3f}",
    ))
    by_name = {row["benchmark"]: row for row in rows}
    # The paper's prediction: gcc's removal rises without trace
    # confinement of the confidence.
    assert by_name["gcc"]["pc_removal"] > by_name["gcc"]["trace_removal"] * 1.3
    # The paper's warning: separate counters cost IR-mispredictions.
    assert by_name["gcc"]["pc_irm"] > by_name["gcc"]["trace_irm"]
    # ... which stay detected-and-recovered (asserted in _compare) and
    # bounded.
    for row in rows:
        assert row["pc_irm"] < 5.0
