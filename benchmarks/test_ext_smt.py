"""E-EXT2: slipstream on an 8-wide SMT (paper §5, future work).

"The peak bandwidth of CMP(2x64x4) is only 4 IPC ... this suggests
implementing a slipstream processor using an 8-wide SMT processor,
which we leave for future work."

This bench quantifies the suggestion with a statically-partitioned
8-wide core (3-wide A partition, 5-wide R partition): the wider
R-stream partition lifts the 4-IPC retire bound for high-removal
benchmarks (m88ksim), while low-removal benchmarks suffer from the
narrower A-stream partition — the resource-competition problem the
paper's section 7 anticipates ("SMT introduces new problems, such as
competition for resources ... adaptively turning on/off slipstreaming
may be needed").
"""

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamProcessor
from repro.core.smt import smt_slipstream_config
from repro.eval.models import run_baseline, run_big_core, run_slipstream_model
from repro.eval.reporting import render_table
from repro.workloads.suite import get_benchmark

BENCHES = ("m88ksim", "perl", "jpeg")


def _compare(scale):
    rows = []
    for name in BENCHES:
        reference = FunctionalSimulator(get_benchmark(name).program(scale)).run()
        base = run_baseline(name, scale)
        cmp_result = run_slipstream_model(name, scale)
        smt_result = SlipstreamProcessor(
            get_benchmark(name).program(scale), smt_slipstream_config()
        ).run()
        big = run_big_core(name, scale)
        assert smt_result.output == reference.output
        rows.append(
            {
                "benchmark": name,
                "ss64_ipc": base.ipc,
                "cmp_ipc": cmp_result.ipc,
                "smt_ipc": smt_result.ipc,
                "ss128_ipc": big.ipc,
                "cmp_gain": 100 * (cmp_result.ipc / base.ipc - 1),
                "smt_gain": 100 * (smt_result.ipc / base.ipc - 1),
            }
        )
    return rows


def test_smt_slipstream(benchmark, scale):
    rows = benchmark.pedantic(_compare, args=(scale,), rounds=1, iterations=1)
    print()
    print(render_table(
        rows,
        columns=["benchmark", "ss64_ipc", "cmp_ipc", "smt_ipc", "ss128_ipc",
                 "cmp_gain", "smt_gain"],
        headers=["benchmark", "SS(64x4)", "CMP(2x64x4)", "SMT(8-wide)",
                 "SS(128x8)", "CMP gain %", "SMT gain %"],
        title="Extension: slipstream on a statically-partitioned 8-wide SMT",
    ))
    by_name = {row["benchmark"]: row for row in rows}
    # The paper's motivation: the CMP's 4-IPC ceiling binds m88ksim; the
    # SMT's 5-wide R partition lifts it.
    assert by_name["m88ksim"]["smt_ipc"] > by_name["m88ksim"]["cmp_ipc"]
    assert by_name["m88ksim"]["smt_ipc"] > 4.0
    # The anticipated resource competition: a low-removal stream pays
    # for the narrow A partition.
    assert by_name["perl"]["smt_gain"] < by_name["perl"]["cmp_gain"]
