"""E-FT: the section 3 fault study, made quantitative.

The paper analyses three scenarios informally; this bench injects a
deterministic campaign and reports the outcome mix:

* faults confined to the A-stream are always safe (the R-stream
  recomputes everything independently);
* faults on redundantly-executed R-stream instructions are detected
  and recovered;
* coverage is *partial* by design — bypassed-region and architectural
  R-stream faults can escape.
"""

from repro.eval.experiments import fault_coverage_study
from repro.fault.coverage import FaultOutcome
from repro.fault.injector import FaultSite


def test_fault_coverage_campaign(benchmark):
    campaign = benchmark.pedantic(
        fault_coverage_study,
        kwargs={"benchmark": "jpeg", "points": 4},
        rounds=1, iterations=1,
    )
    print()
    print("Fault-injection campaign (jpeg analog):")
    for site, outcomes in campaign.by_site().items():
        print(f"  {site.value}:")
        for outcome, count in sorted(outcomes.items(), key=lambda kv: kv[0].value):
            print(f"    {outcome.value:24} {count}")
    coverage = campaign.coverage
    print("  coverage of harmful faults: "
          + ("n/a (none harmful)" if coverage is None else f"{coverage:.2f}"))

    by_site = campaign.by_site()
    # A-stream faults: never silent corruption, never unrecoverable.
    for outcome in by_site.get(FaultSite.A_RESULT, {}):
        assert outcome in (
            FaultOutcome.DETECTED_RECOVERED,
            FaultOutcome.MASKED,
            FaultOutcome.NOT_FIRED,
        )
    # R-stream transient faults on this no-removal workload are all
    # redundantly executed, hence detected or masked.
    for outcome in by_site.get(FaultSite.R_TRANSIENT, {}):
        assert outcome in (
            FaultOutcome.DETECTED_RECOVERED,
            FaultOutcome.MASKED,
            FaultOutcome.NOT_FIRED,
        )
    # Every harmful fault on this fully-redundant workload is handled;
    # a campaign with no harmful fault has no coverage to claim (None).
    assert campaign.coverage == 1.0 if campaign.harmful else campaign.coverage is None
