"""E-F6: regenerate Figure 6 — % IPC improvement of the slipstream
CMP(2x64x4) over the SS(64x4) baseline, per benchmark.

Shape expectations (paper: average 7%; m88ksim +20%, perl +16%,
li/vortex +7%, gcc +4%, compress/go/jpeg ~0):

* m88ksim is the biggest winner, perl second;
* the unpredictable/low-removal trio (compress, go, jpeg) shows little
  or no improvement;
* the average lands in the paper's mid-single-digit to low-teens band.
"""

from repro.eval.experiments import figure6
from repro.eval.metrics import arithmetic_mean
from repro.eval.reporting import render_bar_series, render_table


def test_figure6(benchmark, scale):
    rows = benchmark.pedantic(figure6, args=(scale,), rounds=1, iterations=1)
    print()
    print(render_table(
        rows,
        columns=["benchmark", "base_ipc", "slip_ipc", "gain_pct",
                 "paper_gain_pct"],
        headers=["benchmark", "SS(64x4) IPC", "CMP(2x64x4) IPC",
                 "gain % (ours)", "gain % (paper)"],
        title="Figure 6: CMP(2x64x4) IPC improvement over SS(64x4)",
    ))
    print()
    print(render_bar_series(rows, "benchmark", "gain_pct"))

    gains = {row["benchmark"]: row["gain_pct"] for row in rows}
    best = max(gains, key=gains.get)
    assert best == "m88ksim", f"biggest winner should be m88ksim, got {best}"
    assert gains["m88ksim"] >= 15.0
    assert gains["perl"] >= 10.0
    assert gains["perl"] > gains["vortex"]
    for flat in ("compress", "go", "jpeg"):
        assert gains[flat] < 8.0, f"{flat} should see little improvement"
    average = arithmetic_mean(list(gains.values()))
    assert 3.0 <= average <= 15.0, f"average gain {average:.1f}% out of band"
