"""E-F7: regenerate Figure 7 — % IPC improvement of SS(128x8) over
SS(64x4).

Shape expectation (paper: average 28%, about four times the slipstream
gain): doubling window and width helps everything, and by much more
than slipstreaming does on average.
"""

from repro.eval.experiments import figure6, figure7
from repro.eval.metrics import arithmetic_mean
from repro.eval.reporting import render_bar_series, render_table


def test_figure7(benchmark, scale):
    rows = benchmark.pedantic(figure7, args=(scale,), rounds=1, iterations=1)
    print()
    print(render_table(
        rows,
        columns=["benchmark", "base_ipc", "big_ipc", "gain_pct"],
        headers=["benchmark", "SS(64x4) IPC", "SS(128x8) IPC", "gain %"],
        title="Figure 7: SS(128x8) IPC improvement over SS(64x4)",
    ))
    print()
    print(render_bar_series(rows, "benchmark", "gain_pct"))

    gains = [row["gain_pct"] for row in rows]
    assert all(g >= 0 for g in gains), "a bigger core must not lose"
    big_avg = arithmetic_mean(gains)
    assert big_avg >= 20.0, f"big-core average {big_avg:.1f}% too small"

    slip_avg = arithmetic_mean([r["gain_pct"] for r in figure6(scale)])
    # The paper's headline comparison: the slipstream gain is a
    # meaningful fraction (about a quarter) of the big-core gain.
    assert big_avg > slip_avg
    assert slip_avg >= big_avg / 10.0
