"""E-F8a/E-F8b: regenerate Figure 8 — the breakdown of removed
A-stream instructions, in full and branch-only removal modes.

Shape expectations:

* full mode: m88ksim has by far the largest removed fraction (~half of
  its dynamic stream in the paper), dominated by SV and its chains;
  perl is second; BR/SV and their propagated chains dominate overall;
* branch-only mode: only BR and P: BR categories appear, and
  m88ksim's fraction collapses to a fraction of its full-mode value
  (the paper's counterintuitive "half to one-quarter" observation).
"""

from repro.core.removal import CATEGORIES
from repro.eval.experiments import figure8
from repro.eval.reporting import render_stacked_fractions


def test_figure8_full_mode(benchmark, scale):
    rows = benchmark.pedantic(
        figure8, kwargs={"mode": "full", "scale": scale}, rounds=1, iterations=1
    )
    print()
    print(render_stacked_fractions(
        rows, CATEGORIES,
        title="Figure 8 (top): removed A-stream instructions, % of "
              "dynamic stream, full removal",
    ))
    totals = {row["benchmark"]: row["total_fraction"] for row in rows}
    assert max(totals, key=totals.get) == "m88ksim"
    assert totals["m88ksim"] >= 0.40
    assert totals["perl"] >= 0.15
    assert totals["li"] >= 0.05
    assert totals["vortex"] >= 0.10
    # Per-category accounting must add up.
    for row in rows:
        assert abs(sum(row["categories"].values()) - row["total_fraction"]) < 1e-9


def test_figure8_branch_only_mode(benchmark, scale):
    rows = benchmark.pedantic(
        figure8, kwargs={"mode": "branch_only", "scale": scale},
        rounds=1, iterations=1,
    )
    print()
    print(render_stacked_fractions(
        rows, ["BR", "P: BR"],
        title="Figure 8 (bottom): removed A-stream instructions, "
              "branch-only removal",
    ))
    for row in rows:
        for category, fraction in row["categories"].items():
            if fraction > 0:
                assert category in ("BR", "P: BR"), (
                    f"{row['benchmark']}: write-removal category "
                    f"{category} appeared in branch-only mode"
                )
    # m88ksim's removal collapses without the ineffectual writes.
    full = {r["benchmark"]: r["total_fraction"] for r in figure8("full", scale)}
    only = {r["benchmark"]: r["total_fraction"] for r in rows}
    assert only["m88ksim"] <= full["m88ksim"] * 0.6
