"""E-T1: regenerate Table 1 (benchmarks and instruction counts)."""

from repro.eval.experiments import table1
from repro.eval.reporting import render_table


def test_table1(benchmark, scale):
    rows = benchmark.pedantic(table1, args=(scale,), rounds=1, iterations=1)
    print()
    print(render_table(
        rows,
        columns=["benchmark", "paper_input", "instr_count",
                 "paper_instr_count_millions"],
        headers=["benchmark", "input dataset (paper)", "instr. count (ours)",
                 "paper (millions)"],
        title="Table 1: Benchmarks",
    ))
    assert len(rows) == 8
    for row in rows:
        # Our analogs run at roughly 1/1000 the paper's dynamic sizes.
        assert 30_000 <= row["instr_count"] <= 600_000
