"""E-T3: regenerate Table 3 — misprediction measurements.

Shape expectations (paper):

* base IPCs span roughly 1.7 (compress) to 3.2 (jpeg/vortex);
* branch misprediction rates order the benchmarks: compress/go worst,
  vortex/m88ksim/perl best — and instruction removal succeeds exactly
  where prediction succeeds;
* slipstreaming leaves the branch misprediction rate roughly unchanged
  (the CMP row tracks the SS row);
* IR-mispredictions are rare (paper: < 0.05/1000) and their average
  penalty sits near the 21-cycle minimum (paper: 22-26).
"""

from repro.eval.experiments import table3
from repro.eval.reporting import render_table


def test_table3(benchmark, scale):
    rows = benchmark.pedantic(table3, args=(scale,), rounds=1, iterations=1)
    print()
    print(render_table(
        rows,
        columns=["benchmark", "ss_ipc", "paper_ss_ipc", "ss_misp_per_1000",
                 "paper_misp_per_1000", "cmp_misp_per_1000",
                 "ir_misp_per_1000", "avg_ir_penalty"],
        headers=["benchmark", "IPC", "IPC(paper)", "misp/1000",
                 "misp/1000(paper)", "CMP misp/1000", "IR-misp/1000",
                 "avg IR penalty"],
        title="Table 3: Misprediction measurements",
        float_format="{:.2f}",
    ))

    by_name = {row["benchmark"]: row for row in rows}

    # Base IPC band.
    for row in rows:
        assert 1.2 <= row["ss_ipc"] <= 4.0

    # Predictability ordering: the chaotic pair worst, the regular
    # trio best.
    misp = {name: row["ss_misp_per_1000"] for name, row in by_name.items()}
    worst_two = sorted(misp, key=misp.get, reverse=True)[:2]
    assert set(worst_two) == {"compress", "go"}
    best_three = sorted(misp, key=misp.get)[:3]
    assert set(best_three) == {"vortex", "m88ksim", "perl"}

    # Slipstreaming does not blow up the branch misprediction rate.
    for name, row in by_name.items():
        assert row["cmp_misp_per_1000"] <= row["ss_misp_per_1000"] * 2 + 1.0

    # IR-mispredictions: rare, and penalty near the 21-cycle minimum.
    for row in rows:
        assert row["ir_misp_per_1000"] <= 0.25, row["benchmark"]
        if row["ir_misp_per_1000"] > 0:
            assert 21.0 <= row["avg_ir_penalty"] <= 40.0
