#!/usr/bin/env python3
"""Demonstrate the paper's section 3 fault-tolerance scenarios.

Injects single transient faults (bit flips in instruction results) at
each of the three sites and shows how the slipstream machinery reacts:

* a fault on a redundantly executed instruction is detected as a
  "misprediction" and recovered transparently;
* a fault in a region the A-stream bypassed can escape (partial
  coverage, by design);
* a fault confined to the A-stream is always repaired — the R-stream
  independently recomputes everything.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.arch.functional import FunctionalSimulator
from repro.fault.scenarios import SCENARIOS, run_scenario
from repro.isa.assembler import assemble

SOURCE = """
main:
    addi r1, r0, 2000
    addi r10, r0, 0x100000
loop:
    addi r2, r0, 7
    sw   r2, 0(r10)             # silent store: removable, bypassed
    addi r3, r0, 1
    addi r3, r0, 2              # dead write: removable, bypassed
    add  r4, r4, r3             # live, redundantly executed
    xor  r5, r4, r1
    add  r6, r5, r4
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    out  r6
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="fault-demo")
    reference = FunctionalSimulator(program).run()
    print(f"fault-free output: {reference.output}\n")

    for scenario in SCENARIOS.values():
        result = run_scenario(scenario, program, after_seq=6000)
        print(f"scenario {scenario.name!r}:")
        print(f"  {scenario.description}")
        print(f"  struck: seq={result.fault.target_seq} "
              f"site={result.fault.site.value} "
              f"compared={result.struck_compared}")
        print(f"  outcome: {result.outcome.value}")
        expected = ", ".join(o.value for o in scenario.expected)
        print(f"  (consistent with the paper's analysis: {expected})\n")


if __name__ == "__main__":
    main()
