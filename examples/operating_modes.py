#!/usr/bin/env python3
"""The chip's three operating modes (paper, sections 1 and 7).

The paper's larger point: a CMP's second context is a flexible
resource.  The same two cores can run two jobs (throughput), speed up
one job with partial redundancy (slipstream), or protect one job with
full redundancy (AR-SMT-style reliable mode).

Run:  python examples/operating_modes.py
"""

from repro.core.modes import OperatingMode, run_mode
from repro.isa.assembler import assemble
from repro.uarch.config import SS_64x4
from repro.uarch.core import SuperscalarCore

JOB_A = """
main:
    addi r1, r0, 4000
    addi r10, r0, 0x100000
loop:
    addi r2, r0, 7
    sw   r2, 0(r10)
    addi r3, r0, 1
    addi r3, r0, 2
    add  r4, r4, r3
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    halt
"""

JOB_B = """
main:
    addi r1, r0, 3000
loop:
    xor  r4, r4, r1
    slli r5, r4, 1
    add  r6, r5, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    halt
"""


def main() -> None:
    job_a = assemble(JOB_A, name="job-a")
    job_b = assemble(JOB_B, name="job-b")

    single = SuperscalarCore(SS_64x4, assemble(JOB_A, name="job-a")).run()
    print(f"one core, one job:     {single.retired} instructions in "
          f"{single.cycles} cycles (IPC {single.ipc:.2f})\n")

    throughput = run_mode(OperatingMode.THROUGHPUT,
                          [job_a, assemble(JOB_B, name="job-b")])
    print(f"THROUGHPUT mode: two independent jobs")
    print(f"  combined {throughput.useful_instructions} instructions in "
          f"{throughput.cycles} cycles "
          f"(chip throughput {throughput.throughput_ipc:.2f} IPC, "
          f"redundancy {throughput.redundancy:.0%})\n")

    slip = run_mode(OperatingMode.SLIPSTREAM, [assemble(JOB_A, name='job-a')])
    result = slip.core_results[0]
    print(f"SLIPSTREAM mode: one job, partial redundancy")
    print(f"  {slip.useful_instructions} instructions in {slip.cycles} cycles "
          f"(IPC {slip.throughput_ipc:.2f}, "
          f"{100 * (slip.throughput_ipc / single.ipc - 1):+.1f}% vs one core)")
    print(f"  redundancy {slip.redundancy:.0%} of the stream "
          f"({result.a_removed} instructions removed from the A-stream)\n")

    reliable = run_mode(OperatingMode.RELIABLE, [assemble(JOB_A, name='job-a')])
    print(f"RELIABLE mode (AR-SMT): one job, full redundancy")
    print(f"  {reliable.useful_instructions} instructions in "
          f"{reliable.cycles} cycles (IPC {reliable.throughput_ipc:.2f}, "
          f"{100 * (reliable.throughput_ipc / single.ipc - 1):+.1f}% vs one core)")
    print(f"  redundancy {reliable.redundancy:.0%}: every instruction is "
          "compared — pipeline transients are fully covered")


if __name__ == "__main__":
    main()
