#!/usr/bin/env python3
"""Quickstart: assemble a program, run it three ways.

1. Functionally (the architectural reference).
2. On a conventional SS(64x4) superscalar core.
3. On the slipstream CMP(2x64x4) — and show what the IR machinery
   removed from the A-stream.

Run:  python examples/quickstart.py
"""

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamProcessor
from repro.isa.assembler import assemble
from repro.uarch.config import SS_64x4
from repro.uarch.core import SuperscalarCore

# A loop with the three kinds of removable computation the paper
# exploits: a silent store (SV), a dead write (WW), and predictable
# branches (BR) — plus live work the program's output depends on.
SOURCE = """
main:
    addi r1, r0, 5000           # loop counter
    addi r10, r0, 0x100000      # status-block base
loop:
    addi r2, r0, 7              # "mode" value: never changes
    sw   r2, 0(r10)             #   -> silent store (SV)
    addi r3, r0, 1              # scratch, overwritten before use
    addi r3, r0, 2              #   -> the first write is dead (WW)
    add  r4, r4, r3             # live accumulator
    xor  r5, r4, r1             # live work
    add  r6, r5, r4
    addi r1, r1, -1
    bne  r1, r0, loop           # predictable branch (BR)
    out  r4
    out  r6
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")

    # 1. Architectural reference.
    reference = FunctionalSimulator(program).run()
    print(f"functional: output={reference.output} "
          f"({reference.instruction_count} instructions)")

    # 2. Conventional superscalar.
    base = SuperscalarCore(SS_64x4, assemble(SOURCE, name="quickstart")).run()
    print(f"SS(64x4):   IPC={base.ipc:.2f}  cycles={base.cycles}  "
          f"branch misp/1000={base.mispredictions_per_1000:.2f}")

    # 3. Slipstream CMP.
    slip = SlipstreamProcessor(assemble(SOURCE, name="quickstart")).run()
    assert slip.output == reference.output, "slipstream output must match!"
    print(f"CMP(2x64x4): IPC={slip.ipc:.2f}  cycles={slip.cycles}  "
          f"gain={100 * (slip.ipc / base.ipc - 1):+.1f}%")
    print(f"  A-stream executed {slip.a_executed} of {slip.retired} "
          f"instructions ({100 * slip.removal_fraction:.1f}% removed)")
    print(f"  removal breakdown: {slip.removed_by_category}")
    print(f"  IR-mispredictions: {slip.ir_mispredictions} "
          f"(avg penalty {slip.avg_ir_penalty:.1f} cycles)")
    print("  recovery-audit shortfalls:", slip.recovery_audit_shortfalls)


if __name__ == "__main__":
    main()
