#!/usr/bin/env python3
"""Anatomy of instruction removal: watch the IR-detector think.

Feeds a small program's retired stream straight into the IR-detector
and prints, for every dynamic instruction of one loop iteration, the
detector's verdict — removed (and why: BR / WW / SV / back-propagated)
or kept.

Run:  python examples/removal_anatomy.py
"""

from repro.arch.functional import FunctionalSimulator
from repro.core.ir_detector import IRDetector
from repro.core.removal import RemovalKind, removal_category
from repro.isa.assembler import assemble
from repro.trace.selection import TraceSelector

SOURCE = """
main:
    addi r1, r0, 64
    addi r10, r0, 0x100000
loop:
    addi r2, r0, 7              # feeds only the silent store
    sw   r2, 0(r10)             # silent store (SV)
    addi r3, r0, 1              # dead write (WW)
    addi r3, r0, 2
    add  r4, r4, r3             # live accumulator
    addi r1, r1, -1
    bne  r1, r0, loop           # branch (BR)
    out  r4
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="anatomy")
    sim = FunctionalSimulator(program)
    detector = IRDetector()
    selector = TraceSelector(trace_length=8)

    analyses = []
    dyn_by_pos = []
    for trace in selector.chunk(sim.steps()):
        dyn_by_pos.extend(trace.instructions)
        analyses.extend(detector.feed_trace(trace))
    analyses.extend(detector.drain())

    # Flatten verdicts back onto the dynamic stream and print a
    # steady-state window (skip the warm-up iterations).
    verdicts = []
    for analysis in analyses:
        verdicts.extend(zip(analysis.ir_vec, analysis.kinds))

    start = 7 * 20  # a few iterations in
    print(f"{'pc':>8}  {'instruction':28} verdict")
    print("-" * 56)
    for dyn, (selected, kind) in list(zip(dyn_by_pos, verdicts))[start:start + 14]:
        verdict = (
            f"REMOVE ({removal_category(kind)})"
            if selected
            else "keep"
        )
        print(f"{dyn.pc:#8x}  {dyn.instr.format():28} {verdict}")


if __name__ == "__main__":
    main()
