#!/usr/bin/env python3
"""Run one suite benchmark through all three processor models.

Run:  python examples/run_benchmark.py [benchmark] [scale]

e.g.  python examples/run_benchmark.py m88ksim
      python examples/run_benchmark.py perl 2

Benchmarks: compress gcc go jpeg li m88ksim perl vortex
"""

import sys

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamProcessor
from repro.uarch.config import SS_128x8, SS_64x4
from repro.uarch.core import SuperscalarCore
from repro.workloads.suite import get_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    bench = get_benchmark(name)
    print(f"benchmark: {bench.name} (analog of SPEC95 {bench.name}, "
          f"paper input: {bench.paper_input})")
    print(f"models: {bench.analog}")

    reference = FunctionalSimulator(bench.program(scale)).run()
    print(f"\ndynamic instructions: {reference.instruction_count}")

    base = SuperscalarCore(SS_64x4, bench.program(scale)).run()
    big = SuperscalarCore(SS_128x8, bench.program(scale)).run()
    slip = SlipstreamProcessor(bench.program(scale)).run()
    assert slip.output == reference.output

    print(f"\n{'model':14} {'IPC':>6} {'cycles':>9} {'vs base':>8}")
    print(f"{'SS(64x4)':14} {base.ipc:>6.2f} {base.cycles:>9} {'-':>8}")
    print(f"{'SS(128x8)':14} {big.ipc:>6.2f} {big.cycles:>9} "
          f"{100 * (big.ipc / base.ipc - 1):>+7.1f}%")
    print(f"{'CMP(2x64x4)':14} {slip.ipc:>6.2f} {slip.cycles:>9} "
          f"{100 * (slip.ipc / base.ipc - 1):>+7.1f}%")

    print(f"\nslipstream detail:")
    print(f"  removal fraction:      {slip.removal_fraction:.3f}")
    print(f"  removal breakdown:     {slip.removed_by_category}")
    print(f"  branch misp/1000:      {slip.mispredictions_per_1000:.2f} "
          f"(base {base.mispredictions_per_1000:.2f})")
    print(f"  IR-misp/1000:          {slip.ir_mispredictions_per_1000:.3f}")
    if slip.ir_mispredictions:
        print(f"  avg IR-misp penalty:   {slip.avg_ir_penalty:.1f} cycles")
    print(f"  max tracked addresses: {slip.recovery_max_outstanding}")


if __name__ == "__main__":
    main()
