"""Slipstream Processors (ASPLOS 2000) reproduction.

An execution-driven simulator of a slipstream processor: two redundant
copies of a program (a speculatively shortened A-stream and a full,
validating R-stream) co-executing on a two-way chip multiprocessor,
improving both single-program performance and transient-fault tolerance.

Public entry points:

* :mod:`repro.isa` -- the mini RISC ISA and assembler.
* :mod:`repro.arch` -- architectural state and the functional simulator.
* :mod:`repro.uarch` -- the out-of-order superscalar timing substrate.
* :mod:`repro.trace` -- trace selection and the hybrid path-based trace
  predictor.
* :mod:`repro.core` -- the paper's contribution: IR-predictor, IR-detector,
  delay buffer, recovery controller, and the slipstream CMP model.
* :mod:`repro.fault` -- transient-fault injection and coverage analysis.
* :mod:`repro.workloads` -- SPEC95-integer analog benchmark programs.
* :mod:`repro.eval` -- experiment harness regenerating the paper's tables
  and figures.
"""

__version__ = "1.0.0"

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.arch.functional import FunctionalSimulator

__all__ = ["assemble", "Program", "FunctionalSimulator", "__version__"]
