"""Static program analysis over the mini-RISC ISA.

Layers (each building on the previous):

* :mod:`repro.analysis.cfg` — basic blocks, successors, reachability,
  dominators;
* :mod:`repro.analysis.dataflow` — constant propagation, liveness,
  reaching definitions / def-use chains, static write classification
  (dead / must-live / partial);
* :mod:`repro.analysis.lint` — the workload linter (13 rules, source
  suppressions);
* :mod:`repro.analysis.ineffectual` — the static ineffectuality oracle
  and its cross-check against the dynamic IR-detector.

CLI: ``python -m repro.analysis <workload|file.s> [--cross-check]``.
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow import Dataflow, WriteClass, analyze
from repro.analysis.ineffectual import (
    CrossCheckResult,
    StaticSummary,
    analyze_static,
    cross_check,
)
from repro.analysis.lint import Diagnostic, LintError, active, errors, lint_program

__all__ = [
    "BasicBlock",
    "CFG",
    "CrossCheckResult",
    "Dataflow",
    "Diagnostic",
    "LintError",
    "StaticSummary",
    "WriteClass",
    "active",
    "analyze",
    "analyze_static",
    "build_cfg",
    "cross_check",
    "errors",
    "lint_program",
]
