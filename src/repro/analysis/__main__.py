"""Command-line front end for the static-analysis subsystem.

Usage::

    python -m repro.analysis compress gcc          # lint named workloads
    python -m repro.analysis --all-workloads       # lint the whole suite
    python -m repro.analysis path/to/prog.s        # lint an assembly file
    python -m repro.analysis --all-workloads --cross-check --format json

Two subcommands share the front end:

    python -m repro.analysis ceiling --all-workloads --format json
        The static ineffectuality ceiling (interval abstract
        interpretation + dynamic profile weighting) per workload;
        deterministic, used as a golden CI artifact.

    python -m repro.analysis selfcheck [paths...]
        The self-determinism lint over the repro *Python* sources
        themselves (default: the installed package).

Exit status is 0 when every target is clean — no unsuppressed lint
diagnostics and (with ``--cross-check``) no soundness violations — and
1 otherwise.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import analyze
from repro.analysis.ineffectual import (
    CrossCheckResult,
    StaticSummary,
    analyze_static,
    cross_check,
)
from repro.analysis.lint import Diagnostic, active, lint_program
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.program import Program


def _load_targets(args: argparse.Namespace) -> List[Program]:
    # Workload builders lint at assembly time by default; disable that
    # here so this CLI is the one reporting diagnostics (with exit
    # status) instead of dying inside the builder.
    os.environ["REPRO_WORKLOAD_LINT"] = "0"
    try:
        from repro.workloads.suite import benchmark_suite, get_benchmark

        programs: List[Program] = []
        names = list(args.targets)
        if args.all_workloads:
            names = [b.name for b in benchmark_suite()]
        for name in names:
            if os.path.exists(name):
                with open(name, "r", encoding="utf-8") as fh:
                    source = fh.read()
                programs.append(assemble(source, name=os.path.basename(name)))
            else:
                programs.append(get_benchmark(name).program(scale=args.scale))
        return programs
    finally:
        os.environ.pop("REPRO_WORKLOAD_LINT", None)


def _analyze_one(
    program: Program, args: argparse.Namespace
) -> Tuple[List[Diagnostic], StaticSummary, Optional[CrossCheckResult]]:
    df = analyze(build_cfg(program))
    diagnostics = lint_program(program, allow=args.allow, dataflow=df)
    static = analyze_static(program, dataflow=df)
    xcheck = None
    if args.cross_check:
        xcheck = cross_check(
            program, max_instructions=args.max_instructions, dataflow=df
        )
    return diagnostics, static, xcheck


def _diag_json(diag: Diagnostic) -> dict:
    return {
        "rule": diag.rule,
        "severity": diag.severity,
        "message": diag.message,
        "index": diag.index,
        "pc": diag.pc,
        "line_no": diag.line_no,
        "suppressed": diag.suppressed,
    }


def _xcheck_json(result: CrossCheckResult) -> dict:
    out = dataclasses.asdict(result)
    out["instance_agreement"] = result.instance_agreement
    out["pc_coverage"] = result.pc_coverage
    out["silent_agreement"] = result.silent_agreement
    out["sound"] = result.sound
    return out


def _render_text(program, diagnostics, static, xcheck) -> List[str]:
    lines = [f"== {program.name} ({len(program)} instructions) =="]
    shown = active(diagnostics)
    n_suppressed = len(diagnostics) - len(shown)
    for diag in shown:
        lines.append("  " + diag.render())
    verdict = "clean" if not shown else f"{len(shown)} diagnostic(s)"
    sup = f" ({n_suppressed} suppressed)" if n_suppressed else ""
    lines.append(f"  lint: {verdict}{sup}")
    lines.append(
        "  static writes: "
        f"{len(static.dead_pcs)} dead, {len(static.must_live_pcs)} must-live, "
        f"{len(static.partial_pcs)} partial; "
        f"{len(static.dead_store_pcs)} dead store(s); "
        f"cfg {'exact' if static.indirect_exact else 'over-approximated'}"
    )
    if xcheck is not None:
        lines.append(
            "  cross-check: "
            f"retired {xcheck.retired}, "
            f"dead instances {xcheck.dead_instances_selected}/"
            f"{xcheck.dead_instances_executed} classified ineffectual "
            f"({xcheck.instance_agreement:.1%}), "
            f"pc coverage {xcheck.pc_coverage:.1%}, "
            f"{'SOUND' if xcheck.sound else 'UNSOUND'}"
        )
        if xcheck.static_unsound_pcs:
            lines.append(
                "  !! statically-dead writes observed referenced at: "
                + ", ".join(hex(pc) for pc in xcheck.static_unsound_pcs)
            )
        if xcheck.detector_contradiction_pcs:
            lines.append(
                "  !! detector WW verdicts on must-live writes at: "
                + ", ".join(hex(pc) for pc in xcheck.detector_contradiction_pcs)
            )
    return lines


def _ceiling_main(argv: List[str]) -> int:
    from repro.analysis.ceiling import ceiling_report, report_json

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis ceiling",
        description="Static ineffectuality ceiling per workload.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="benchmark names (see repro.workloads.suite) or .s file paths",
    )
    parser.add_argument(
        "--all-workloads", action="store_true", help="analyze every bundled workload"
    )
    parser.add_argument(
        "--scale", type=int, default=1, help="workload scale factor (default 1)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--max-instructions",
        type=int,
        default=5_000_000,
        help="dynamic instruction budget for the execution profile",
    )
    args = parser.parse_args(argv)
    if not args.targets and not args.all_workloads:
        parser.error("no targets given (names, files, or --all-workloads)")

    try:
        programs = _load_targets(args)
    except (AssemblerError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    ok = True
    entries = []
    text_lines: List[str] = []
    for program in programs:
        report = ceiling_report(program, max_instructions=args.max_instructions)
        if report.truncated:
            ok = False
        if args.fmt == "json":
            entries.append(report_json(report))
        else:
            static = report.static
            text_lines.append(
                f"== {static.name} ({static.instructions} instructions, "
                f"{static.reachable} reachable) =="
            )
            text_lines.append(
                "  proven facts: "
                f"{len(static.dead_write_pcs)} dead write(s), "
                f"{len(static.dead_store_pcs)} dead store(s), "
                f"{len(static.silent_store_pcs)} silent store(s), "
                f"{len(static.branch_always_pcs)} always-taken, "
                f"{len(static.branch_never_pcs)} never-taken, "
                f"{len(static.monotone_exit_pcs)} monotone-exit "
                f"({len(static.range_refined_dead_pcs)} range-refined)"
            )
            text_lines.append(
                f"  loops: {len(static.loop_header_pcs)} "
                f"({len(static.loop_trip_bounds)} with trip bounds); "
                f"jalr {static.jalr_resolved}/{static.jalr_total} resolved, "
                f"{static.pruned_edges} edge(s) pruned, "
                f"cfg {'exact' if static.indirect_exact else 'over-approximated'}"
            )
            text_lines.append(
                f"  profile: retired {report.retired}"
                + (" (truncated)" if report.truncated else "")
                + f", proven floor {report.proven_fraction:.2%}, "
                f"upper ceiling {report.ceiling_fraction:.2%}"
            )
    if args.fmt == "json":
        json.dump({"ok": ok, "programs": entries}, sys.stdout, indent=2,
                  sort_keys=True)
        print()
    else:
        text_lines.append("OK" if ok else "FAILED")
        print("\n".join(text_lines))
    return 0 if ok else 1


def _selfcheck_main(argv: List[str]) -> int:
    from pathlib import Path

    from repro.analysis.selfcheck import active, check_file, check_tree, summarize

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis selfcheck",
        description="Self-determinism lint over the repro Python sources.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--allow",
        action="append",
        default=[],
        metavar="RULE",
        help="globally disable a selfcheck rule (repeatable)",
    )
    args = parser.parse_args(argv)
    diagnostics = []
    if not args.paths:
        diagnostics = check_tree(allow=args.allow)
    else:
        for raw in args.paths:
            path = Path(raw)
            if path.is_dir():
                diagnostics.extend(check_tree(path, allow=args.allow))
            else:
                diagnostics.extend(check_file(path, allow=args.allow))
    for diag in diagnostics:
        print(diag.render())
    unsuppressed = active(diagnostics)
    counts = summarize(diagnostics)
    per_rule = ", ".join(f"{rule}: {counts[rule]}" for rule in sorted(counts))
    print(
        f"selfcheck: {len(unsuppressed)} finding(s) "
        f"({len(diagnostics) - len(unsuppressed)} suppressed) — {per_rule}"
    )
    return 1 if unsuppressed else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "ceiling":
        return _ceiling_main(argv[1:])
    if argv and argv[0] == "selfcheck":
        return _selfcheck_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint and statically analyze mini-RISC programs.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="benchmark names (see repro.workloads.suite) or .s file paths",
    )
    parser.add_argument(
        "--all-workloads", action="store_true", help="analyze every bundled workload"
    )
    parser.add_argument(
        "--scale", type=int, default=1, help="workload scale factor (default 1)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--cross-check",
        action="store_true",
        help="also run the dynamic IR-detector cross-check",
    )
    parser.add_argument(
        "--max-instructions",
        type=int,
        default=5_000_000,
        help="dynamic instruction budget for --cross-check",
    )
    parser.add_argument(
        "--allow",
        action="append",
        default=[],
        metavar="RULE",
        help="globally disable a lint rule (repeatable)",
    )
    args = parser.parse_args(argv)
    if not args.targets and not args.all_workloads:
        parser.error("no targets given (names, files, or --all-workloads)")

    try:
        programs = _load_targets(args)
    except (AssemblerError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    ok = True
    report = []
    text_lines: List[str] = []
    for program in programs:
        diagnostics, static, xcheck = _analyze_one(program, args)
        unsuppressed = active(diagnostics)
        if unsuppressed or (xcheck is not None and not xcheck.sound):
            ok = False
        if args.fmt == "json":
            entry = {
                "name": program.name,
                "instructions": len(program),
                "diagnostics": [_diag_json(d) for d in diagnostics],
                "clean": not unsuppressed,
                "static": dataclasses.asdict(static),
            }
            if xcheck is not None:
                entry["cross_check"] = _xcheck_json(xcheck)
            report.append(entry)
        else:
            text_lines.extend(_render_text(program, diagnostics, static, xcheck))

    if args.fmt == "json":
        json.dump({"ok": ok, "programs": report}, sys.stdout, indent=2)
        print()
    else:
        text_lines.append("OK" if ok else "FAILED")
        print("\n".join(text_lines))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
