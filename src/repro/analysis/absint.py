"""Interval/constant abstract interpretation over the CFG.

The domain is intervals of signed 32-bit two's-complement values; a
singleton interval *is* a constant, so this strictly subsumes the
constant propagation in :mod:`repro.analysis.dataflow`.  The abstract
semantics reuse the executor's ALU tables (:data:`_ALU_RRR` /
:data:`_ALU_RRI` and ``wrap32``) whenever both operands are singletons,
so singleton transfer is *bit-exact* with dynamic execution; interval
rules are applied otherwise and fall back to TOP whenever 32-bit wrap
could occur, keeping every bound sound.

Soundness invariant (checked by the hypothesis property suite): for
every execution of the program, every value a reachable instruction
reads or writes lies inside the abstract interval computed at that
program point.  This holds regardless of the ``jalr``
over-approximation, because extra CFG edges only add abstract states
(may-analysis); it is the basis for the *must* facts derived here:

* a **singleton** interval at a point means the value is that constant
  in every execution — so a branch whose condition is decided by the
  operand intervals is *always*/*never* taken in every execution, and a
  store whose value interval equals the target cell's interval as the
  same singleton is a *silent store* in every execution.

Fixpoint engineering: widening at natural-loop header instructions
(:mod:`repro.analysis.loops`) after a short join budget, plus a global
widening backstop for irreducible cycles introduced by ``jalr`` edges;
then a few Jacobi narrowing sweeps (sound: applying the monotone global
transfer to a post-fixpoint stays a post-fixpoint) to recover bounded
counter ranges inside widened loops — which is what makes trip-count
bounds derivable.

Abstract memory is word-granular over a bounded *tracked* cell set (the
data image plus every constant-resolved effective address); absent or
untracked cells read as TOP.  A store through an unresolved address
joins the stored interval into every tracked cell the address interval
may alias — never a strong update — so memory facts stay sound.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.loops import NaturalLoop, loop_header_indices, natural_loops
from repro.arch.executor import _ALU_RRI, _ALU_RRR, _BRANCH_COND, wrap32
from repro.isa.instructions import Opcode, REG_COUNT, WORD
from repro.isa.program import Program

_U32 = 0xFFFFFFFF
INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1

#: An interval is an inclusive ``(lo, hi)`` pair of signed-32 values.
Interval = Tuple[int, int]
TOP: Interval = (INT_MIN, INT_MAX)
ZERO: Interval = (0, 0)

#: One abstract state: a 64-tuple of register intervals plus a tracked
#: memory map (absent tracked cell = TOP).
State = Tuple[Tuple[Interval, ...], Dict[int, Interval]]


def is_const(iv: Interval) -> bool:
    return iv[0] == iv[1]


def hull(a: Interval, b: Interval) -> Interval:
    return (a[0] if a[0] <= b[0] else b[0], a[1] if a[1] >= b[1] else b[1])


def _widen_iv(old: Interval, new: Interval) -> Interval:
    return (
        old[0] if new[0] >= old[0] else INT_MIN,
        old[1] if new[1] <= old[1] else INT_MAX,
    )


def _widen_iv_landmarks(
    old: Interval, new: Interval, landmarks: Tuple[int, ...]
) -> Interval:
    """Widen an unstable bound to the nearest program landmark instead
    of straight to infinity ("widening with thresholds").  Loop
    counters then stabilize at the constants they are compared against,
    without a transient overflow poisoning the other bound."""
    lo, hi = old
    if new[0] < lo:
        k = bisect.bisect_right(landmarks, new[0]) - 1
        lo = landmarks[k] if k >= 0 else INT_MIN
    if new[1] > hi:
        k = bisect.bisect_left(landmarks, new[1])
        hi = landmarks[k] if k < len(landmarks) else INT_MAX
    return (lo, hi)


def _rng(lo: int, hi: int) -> Interval:
    """Interval from exact bounds, TOP when 32-bit wrap is possible."""
    if lo < INT_MIN or hi > INT_MAX:
        return TOP
    return (lo, hi)


def _exact_rrr(op: Opcode, a: int, b: int) -> Interval:
    v = wrap32(_ALU_RRR[op](a, b))
    return (v, v)


def _interval_rrr(op: Opcode, a: Interval, b: Interval) -> Interval:
    if is_const(a) and is_const(b):
        return _exact_rrr(op, a[0], b[0])
    al, ah = a
    bl, bh = b
    if op is Opcode.ADD:
        return _rng(al + bl, ah + bh)
    if op is Opcode.SUB:
        return _rng(al - bh, ah - bl)
    if op is Opcode.MUL:
        products = (al * bl, al * bh, ah * bl, ah * bh)
        return _rng(min(products), max(products))
    if op is Opcode.AND:
        # With one provably non-negative operand the result is masked
        # non-negative and bounded by that operand.
        hi_bounds = [x for x, lo in ((ah, al), (bh, bl)) if lo >= 0]
        if hi_bounds:
            return (0, min(hi_bounds))
        return TOP
    if op is Opcode.OR:
        if al >= 0 and bl >= 0:
            bits = max(ah.bit_length(), bh.bit_length())
            return (max(al, bl), (1 << bits) - 1)
        return TOP
    if op is Opcode.XOR:
        if al >= 0 and bl >= 0:
            bits = max(ah.bit_length(), bh.bit_length())
            return (0, (1 << bits) - 1)
        return TOP
    if op is Opcode.SLT:
        if ah < bl:
            return (1, 1)
        if al >= bh:
            return (0, 0)
        return (0, 1)
    if op is Opcode.SLTU:
        if al >= 0 and bl >= 0:
            if ah < bl:
                return (1, 1)
            if al >= bh:
                return (0, 0)
        return (0, 1)
    if op is Opcode.SLL:
        if is_const(b):
            s = b[0] & 31
            return _rng(al << s, ah << s)
        return TOP
    if op is Opcode.SRL:
        if al >= 0:
            if is_const(b):
                s = b[0] & 31
                return (al >> s, ah >> s)
            return (0, ah)
        return TOP
    if op is Opcode.SRA:
        if is_const(b):
            s = b[0] & 31
            return (al >> s, ah >> s)
        # a >> s is monotone in a and reaches its extremes at s in {0, 31}.
        candidates = (al, ah, al >> 31, ah >> 31)
        return (min(candidates), max(candidates))
    return TOP  # NOR and anything else: singleton-only


def _interval_rri(op: Opcode, a: Interval, imm: int) -> Interval:
    if is_const(a):
        v = wrap32(_ALU_RRI[op](a[0], imm))
        return (v, v)
    al, ah = a
    if op is Opcode.ADDI:
        return _rng(al + imm, ah + imm)
    if op is Opcode.ANDI:
        if imm >= 0:
            return (0, min(ah, imm) if al >= 0 else imm)
        if al >= 0:
            return (0, ah)
        return TOP
    if op in (Opcode.ORI, Opcode.XORI):
        return _interval_rrr(
            Opcode.OR if op is Opcode.ORI else Opcode.XOR, a, (imm, imm)
        )
    if op is Opcode.SLLI:
        s = imm & 31
        return _rng(al << s, ah << s)
    if op is Opcode.SRLI:
        if al >= 0:
            s = imm & 31
            return (al >> s, ah >> s)
        return TOP
    if op is Opcode.SRAI:
        s = imm & 31
        return (al >> s, ah >> s)
    if op is Opcode.SLTI:
        return _interval_rrr(Opcode.SLT, a, (imm, imm))
    return TOP


def _interval_divrem(op: Opcode, a: Interval, b: Interval) -> Interval:
    al, ah = a
    bl, bh = b
    if is_const(a) and is_const(b) and bl != 0:
        quotient = abs(al) // abs(bl)
        if (al < 0) != (bl < 0):
            quotient = -quotient
        v = wrap32(quotient if op is Opcode.DIV else al - quotient * bl)
        return (v, v)
    if al >= 0 and bl > 0:
        if op is Opcode.DIV:
            return (al // bh, ah // bl)
        return (0, min(bh - 1, ah))
    return TOP


def _refine_branch(
    op: Opcode, a: Interval, b: Interval, taken: bool
) -> Optional[Tuple[Interval, Interval]]:
    """Refine operand intervals along one branch edge; None = infeasible.

    Unsigned comparisons refine only when both operands are provably
    non-negative (where unsigned order coincides with signed order).
    """
    if op is Opcode.BLTU:
        if a[0] >= 0 and b[0] >= 0:
            op = Opcode.BLT
        else:
            return (a, b)
    elif op is Opcode.BGEU:
        if a[0] >= 0 and b[0] >= 0:
            op = Opcode.BGE
        else:
            return (a, b)
    if op is Opcode.BNE:
        op, taken = Opcode.BEQ, not taken
    elif op is Opcode.BGE:
        op, taken = Opcode.BLT, not taken

    al, ah = a
    bl, bh = b
    if op is Opcode.BEQ:
        if taken:
            lo, hi = max(al, bl), min(ah, bh)
            if lo > hi:
                return None
            return ((lo, hi), (lo, hi))
        # Not equal: trim only when one side is a singleton at an edge.
        if is_const(a) and is_const(b) and al == bl:
            return None
        if is_const(b):
            if al == bl:
                al += 1
            if ah == bl:
                ah -= 1
            if al > ah:
                return None
        if is_const(a):
            if bl == a[0]:
                bl += 1
            if bh == a[0]:
                bh -= 1
            if bl > bh:
                return None
        return ((al, ah), (bl, bh))
    # BLT from here on.
    if taken:  # a < b
        ah2 = min(ah, bh - 1)
        bl2 = max(bl, al + 1)
        if al > ah2 or bl2 > bh:
            return None
        return ((al, ah2), (bl2, bh))
    # a >= b
    al2 = max(al, bl)
    bh2 = min(bh, ah)
    if al2 > ah or bl > bh2:
        return None
    return ((al2, ah), (bl, bh2))


def _join_state(a: State, b: State) -> State:
    regs = tuple(
        ra if ra == rb else hull(ra, rb) for ra, rb in zip(a[0], b[0])
    )
    mem_a, mem_b = a[1], b[1]
    mem: Dict[int, Interval] = {}
    if mem_a and mem_b:
        for addr, iv in mem_a.items():
            other = mem_b.get(addr)
            if other is not None:
                mem[addr] = iv if iv == other else hull(iv, other)
    return (regs, mem)


def _widen_state(
    old: State, new: State, landmarks: Optional[Tuple[int, ...]] = None
) -> State:
    if landmarks:
        def widen(o: Interval, n: Interval) -> Interval:
            return _widen_iv_landmarks(o, n, landmarks)
    else:
        widen = _widen_iv
    regs = tuple(
        ro if ro == rn else widen(ro, rn) for ro, rn in zip(old[0], new[0])
    )
    mem: Dict[int, Interval] = {}
    for addr, rn in new[1].items():
        ro = old[1].get(addr)
        if ro is None:
            continue
        widened = ro if ro == rn else widen(ro, rn)
        if widened != TOP:
            mem[addr] = widened
    return (regs, mem)


def _program_landmarks(program: Program) -> Tuple[int, ...]:
    """Constants a loop bound plausibly stabilizes at: zero plus every
    immediate (and ``lui`` value) in the text — each with ±1 slack,
    because a counter compared against ``c`` by an exclusive test
    stabilizes at ``c-1`` or ``c+1`` (the canonical countdown loop
    ``addi r, r, -1; bne r, r0`` rests at 1, one above the tested 0 —
    which is why the slack also surrounds the base zero, the value
    every ``rX vs r0`` branch compares against) — capped
    deterministically by absolute value so widening stays
    near-linear."""
    values = {-1, 0, 1}
    for instr in program.instructions:
        if instr.opcode in _ALU_RRI or instr.opcode in (Opcode.LW, Opcode.SW):
            values.update((instr.imm - 1, instr.imm, instr.imm + 1))
        elif instr.opcode is Opcode.LUI:
            values.add(wrap32(instr.imm << 16))
    ranked = sorted(values, key=lambda v: (abs(v), v))[:128]
    return tuple(sorted(ranked))


@dataclass
class AbsintResult:
    """Per-instruction abstract states at fixpoint.

    ``env_in[i]`` / ``env_out[i]`` are the abstract states before /
    after instruction ``i`` (None = statically unreachable).
    ``tracked_cells`` is the abstract memory footprint;
    ``widen_points`` the loop-header instruction indices used.
    """

    cfg: CFG
    env_in: List[Optional[State]]
    env_out: List[Optional[State]]
    tracked_cells: FrozenSet[int]
    widen_points: FrozenSet[int]
    loops: Tuple[NaturalLoop, ...]

    def reg_interval(self, index: int, reg: int) -> Optional[Interval]:
        env = self.env_in[index]
        return None if env is None else env[0][reg]

    def mem_interval(self, index: int, addr: int) -> Optional[Interval]:
        """Abstract interval of a tracked cell before instruction
        ``index``; None when the point is unreachable, TOP when the
        cell is untracked or havocked."""
        env = self.env_in[index]
        if env is None:
            return None
        if addr not in self.tracked_cells:
            return TOP
        return env[1].get(addr, TOP)


def _tracked_cells(program: Program, cfg: CFG, cap: int) -> FrozenSet[int]:
    from repro.analysis.dataflow import constant_propagation

    resolved = sorted(
        {a for a in constant_propagation(cfg).mem_addr if a is not None}
    )
    image = sorted(a for a in program.data if a % WORD == 0)
    cells: List[int] = []
    seen = set()
    for addr in resolved + image:
        # Cells whose image value falls outside the signed-32 domain are
        # untracked: the executor's signed model makes no claim there.
        if addr not in seen and INT_MIN <= program.data.get(addr, 0) <= INT_MAX:
            seen.add(addr)
            cells.append(addr)
        if len(cells) >= cap:
            break
    return frozenset(cells)


def interpret(
    program: Program,
    cfg: Optional[CFG] = None,
    *,
    loop_widen_threshold: int = 2,
    global_widen_threshold: int = 24,
    max_tracked_cells: int = 1024,
    narrow_passes: int = 2,
) -> AbsintResult:
    """Run the interval interpreter to fixpoint over ``cfg``."""
    if cfg is None:
        cfg = build_cfg(program)
    n = len(program.instructions)
    loops = natural_loops(cfg)
    widen_points = loop_header_indices(cfg)
    tracked = _tracked_cells(program, cfg, max_tracked_cells)
    landmarks = _program_landmarks(program)
    # Landmark widening consumes at most one landmark per changing
    # join; past this budget, widen straight to infinity.
    hard_widen_threshold = global_widen_threshold + 2 * len(landmarks) + 8

    env_in: List[Optional[State]] = [None] * n
    env_out: List[Optional[State]] = [None] * n
    if cfg.entry_index is None:
        return AbsintResult(cfg, env_in, env_out, tracked, widen_points, loops)

    instrs = program.instructions

    def transfer(i: int, state: State) -> State:
        instr = instrs[i]
        op = instr.opcode
        regs, mem = state
        dest = instr.dest
        if op is Opcode.SW:
            value = regs[instr.rs2]
            base = regs[instr.rs1]
            addr_iv = _rng(base[0] + instr.imm, base[1] + instr.imm)
            if is_const(addr_iv):
                addr = wrap32(addr_iv[0]) & _U32
                if addr in tracked:
                    mem = dict(mem)
                    mem[addr] = value
                return (regs, mem)
            # Weak update over every tracked cell the address may alias.
            # Negative signed addresses map above 2**31 unsigned, where
            # no tracked cell lives, so the overlap window is
            # [max(lo, 0), hi] (empty when hi < 0).
            lo = max(addr_iv[0], 0)
            hi = addr_iv[1]
            if hi < lo:
                return (regs, mem)
            mem = {
                addr: iv if not (lo <= addr <= hi) else hull(iv, value)
                for addr, iv in mem.items()
                if not (lo <= addr <= hi) or hull(iv, value) != TOP
            }
            return (regs, mem)
        if dest is None:
            return state
        value_iv: Interval
        if op in _ALU_RRR:
            value_iv = _interval_rrr(op, regs[instr.rs1], regs[instr.rs2])
        elif op in _ALU_RRI:
            value_iv = _interval_rri(op, regs[instr.rs1], instr.imm)
        elif op in (Opcode.DIV, Opcode.REM):
            value_iv = _interval_divrem(op, regs[instr.rs1], regs[instr.rs2])
        elif op is Opcode.LUI:
            v = wrap32(instr.imm << 16)
            value_iv = (v, v)
        elif op in (Opcode.JAL, Opcode.JALR):
            v = program.pc_of(i) + WORD
            value_iv = (v, v)
        elif op is Opcode.LW:
            base = regs[instr.rs1]
            addr_iv = _rng(base[0] + instr.imm, base[1] + instr.imm)
            if is_const(addr_iv):
                addr = wrap32(addr_iv[0]) & _U32
                value_iv = mem.get(addr, TOP) if addr in tracked else TOP
            else:
                value_iv = TOP
        else:
            value_iv = TOP
        new_regs = list(regs)
        new_regs[dest] = value_iv
        new_regs[0] = ZERO
        return (tuple(new_regs), mem)

    def edge_states(i: int, out: State) -> List[Tuple[int, State]]:
        """Successor states, refined along branch / resolved-jalr edges."""
        instr = instrs[i]
        succs = cfg.instr_succs[i]
        if not succs:
            return []
        if instr.is_branch:
            regs, mem = out
            a, b = regs[instr.rs1], regs[instr.rs2]
            target = program.index_of(instr.target)
            results: Dict[int, State] = {}
            degenerate = target == i + 1  # both outcomes land on the same succ
            for succ in dict.fromkeys(succs):
                refined = (
                    (a, b)
                    if degenerate
                    else _refine_branch(instr.opcode, a, b, succ == target)
                )
                if refined is None:
                    continue
                ra, rb = refined
                new_regs = list(regs)
                if instr.rs1:
                    new_regs[instr.rs1] = ra
                if instr.rs2:
                    new_regs[instr.rs2] = rb
                st = (tuple(new_regs), mem)
                results[succ] = (
                    st if succ not in results else _join_state(results[succ], st)
                )
            return list(results.items())
        if instr.opcode is Opcode.JALR:
            # env_out already has the link value; the *incoming* rs1
            # decides the target, so read it from env_in via out unless
            # rs1 was the link register itself.
            in_env = env_in[i]
            assert in_env is not None
            t_iv = in_env[0][instr.rs1]
            if is_const(t_iv):
                addr = wrap32(t_iv[0]) & _U32
                if program.contains_pc(addr):
                    idx = program.index_of(addr)
                    if idx in succs:
                        return [(idx, out)]
            return [(s, out) for s in succs]
        return [(s, out) for s in succs]

    entry_mem = {addr: (program.data.get(addr, 0),) * 2 for addr in tracked}
    entry_state: State = ((ZERO,) * REG_COUNT, entry_mem)
    entry = cfg.entry_index
    env_in[entry] = entry_state
    join_counts = [0] * n
    worklist: List[int] = [entry]
    on_list = [False] * n
    on_list[entry] = True
    while worklist:
        i = worklist.pop()
        on_list[i] = False
        state = env_in[i]
        assert state is not None
        out = transfer(i, state)
        env_out[i] = out
        for succ, st in edge_states(i, out):
            current = env_in[succ]
            if current is None:
                env_in[succ] = st
            else:
                joined = _join_state(current, st)
                if joined == current:
                    continue
                join_counts[succ] += 1
                if join_counts[succ] >= hard_widen_threshold:
                    joined = _widen_state(current, joined)
                elif (
                    succ in widen_points
                    and join_counts[succ] >= loop_widen_threshold
                ) or join_counts[succ] >= global_widen_threshold:
                    joined = _widen_state(current, joined, landmarks)
                if joined == current:
                    continue
                env_in[succ] = joined
            if not on_list[succ]:
                on_list[succ] = True
                worklist.append(succ)

    # Jacobi narrowing sweeps: recompute every in-state from the old
    # environment.  Starting from a post-fixpoint of a monotone global
    # transfer, each sweep stays a post-fixpoint, so this only tightens.
    for _ in range(narrow_passes):
        incoming: List[Optional[State]] = [None] * n
        incoming[entry] = entry_state
        for i in range(n):
            state = env_in[i]
            if state is None:
                continue
            out = transfer(i, state)
            env_out[i] = out
            for succ, st in edge_states(i, out):
                incoming[succ] = (
                    st if incoming[succ] is None else _join_state(incoming[succ], st)
                )
        env_in = incoming
        # A final out-state recompute keeps env_out consistent.
        for i in range(n):
            state = env_in[i]
            env_out[i] = None if state is None else transfer(i, state)

    return AbsintResult(cfg, env_in, env_out, tracked, widen_points, loops)


# -- derived analyses -------------------------------------------------


def classify_branches(result: AbsintResult) -> Dict[int, str]:
    """Per reachable conditional branch: ``"always"``, ``"never"`` or
    ``"mixed"`` (undecided) from the operand intervals."""
    program = result.cfg.program
    out: Dict[int, str] = {}
    for i, instr in enumerate(program.instructions):
        if not instr.is_branch:
            continue
        env = result.env_in[i]
        if env is None:
            continue
        a, b = env[0][instr.rs1], env[0][instr.rs2]
        out[i] = _decide_branch(instr.opcode, a, b)
    return out


def _decide_branch(op: Opcode, a: Interval, b: Interval) -> str:
    if is_const(a) and is_const(b):
        return "always" if _BRANCH_COND[op](a[0], b[0]) else "never"
    if op in (Opcode.BLTU, Opcode.BGEU):
        if a[0] >= 0 and b[0] >= 0:
            op = Opcode.BLT if op is Opcode.BLTU else Opcode.BGE
        else:
            return "mixed"
    if op is Opcode.BEQ:
        if a[1] < b[0] or b[1] < a[0]:
            return "never"
    elif op is Opcode.BNE:
        if a[1] < b[0] or b[1] < a[0]:
            return "always"
    elif op is Opcode.BLT:
        if a[1] < b[0]:
            return "always"
        if a[0] >= b[1]:
            return "never"
    elif op is Opcode.BGE:
        if a[0] >= b[1]:
            return "always"
        if a[1] < b[0]:
            return "never"
    return "mixed"


def silent_store_indices(result: AbsintResult) -> Tuple[int, ...]:
    """Stores proven silent: the stored interval and the target cell's
    interval are the *same singleton*, so every executed instance
    rewrites the value already in memory."""
    program = result.cfg.program
    out: List[int] = []
    for i, instr in enumerate(program.instructions):
        if not instr.is_store:
            continue
        env = result.env_in[i]
        if env is None:
            continue
        regs, mem = env
        base = regs[instr.rs1]
        addr_iv = _rng(base[0] + instr.imm, base[1] + instr.imm)
        if not is_const(addr_iv):
            continue
        addr = wrap32(addr_iv[0]) & _U32
        if addr not in result.tracked_cells:
            continue
        value = regs[instr.rs2]
        cell = mem.get(addr, TOP)
        if is_const(value) and value == cell:
            out.append(i)
    return tuple(out)


def resolved_jalr_targets(result: AbsintResult) -> Dict[int, int]:
    """``jalr`` instruction index -> unique target instruction index,
    for every indirect jump whose register interval is a singleton
    landing on a text address."""
    program = result.cfg.program
    out: Dict[int, int] = {}
    for i, instr in enumerate(program.instructions):
        if instr.opcode is not Opcode.JALR:
            continue
        env = result.env_in[i]
        if env is None:
            continue
        t_iv = env[0][instr.rs1]
        if is_const(t_iv):
            addr = wrap32(t_iv[0]) & _U32
            if program.contains_pc(addr):
                out[i] = program.index_of(addr)
    return out


@dataclass(frozen=True)
class LoopBound:
    """A derived per-entry trip-count bound for one natural loop.

    ``counter`` is the single-increment induction register, ``step``
    its per-execution delta, and ``bound`` the maximum number of
    iterations per loop entry (the counter moves monotonically through
    a proven-bounded interval).
    """

    header_index: int
    header_pc: int
    counter: int
    step: int
    bound: int


def loop_bounds(result: AbsintResult) -> Tuple[LoopBound, ...]:
    """Trip-count bounds for counted loops: a register incremented by a
    single in-loop ``addi`` that dominates every latch, whose interval
    at the increment is bounded."""
    cfg = result.cfg
    program = cfg.program
    idom = cfg.dominators()
    bounds: List[LoopBound] = []
    for loop in result.loops:
        indices = loop.instr_indices(cfg)
        writes: Dict[int, List[int]] = {}
        for i in indices:
            dest = program.instructions[i].dest
            if dest is not None:
                writes.setdefault(dest, []).append(i)
        best: Optional[LoopBound] = None
        for reg, sites in writes.items():
            if len(sites) != 1:
                continue
            i = sites[0]
            instr = program.instructions[i]
            if instr.opcode is not Opcode.ADDI or instr.rs1 != reg or instr.imm == 0:
                continue
            block = cfg.block_of[i]
            if not all(_dominates_block(idom, block, la) for la in loop.latches):
                continue
            iv = result.reg_interval(i, reg)
            if iv is None or iv[0] <= INT_MIN or iv[1] >= INT_MAX:
                continue
            bound = (iv[1] - iv[0]) // abs(instr.imm) + 1
            if best is None or bound < best.bound:
                best = LoopBound(
                    header_index=loop.header_index,
                    header_pc=program.pc_of(loop.header_index),
                    counter=reg,
                    step=instr.imm,
                    bound=bound,
                )
        if best is not None:
            bounds.append(best)
    return tuple(bounds)


def _dominates_block(idom: Dict[int, Optional[int]], a: int, b: int) -> bool:
    node: Optional[int] = b
    while node is not None:
        if node == a:
            return True
        parent = idom.get(node)
        if parent == node:
            return a == node
        node = parent
    return False


def monotone_exit_indices(result: AbsintResult) -> Tuple[int, ...]:
    """Exit branches of bounded counted loops that test the loop's
    induction register: not constant-direction, but guaranteed to flip
    within the derived trip bound ("monotone exit")."""
    program = result.cfg.program
    bounded = {b.header_index: b for b in loop_bounds(result)}
    out: List[int] = []
    for loop in result.loops:
        bound = bounded.get(loop.header_index)
        if bound is None:
            continue
        for i in loop.exit_branches:
            if bound.counter in program.instructions[i].srcs:
                out.append(i)
    return tuple(sorted(set(out)))
