"""The static ineffectuality ceiling: per-PC removal facts + profile.

This module packages every *proven* static-removability fact the
analysis stack can derive about a program into a
:class:`StaticRemovalReport`:

* **dead writes / dead stores** — reaching-defs + liveness
  (:mod:`repro.analysis.dataflow`), run both on the plain CFG and on
  the interval-refined CFG (constant-direction branch edges and
  resolved ``jalr`` edges pruned), so the value-range-strengthened
  class subsumes the original classification;
* **silent stores** — must-equal value analysis from the interval
  interpreter (:func:`repro.analysis.absint.silent_store_indices`);
* **branch outcomes** — always/never-taken classification plus
  monotone-exit branches of bounded counted loops;
* **loop structure** — natural-loop headers and derivable trip-count
  bounds.

Weighting the facts by a per-PC dynamic execution profile yields the
:class:`CeilingReport`: the *proven floor* (instances at
statically-proven-ineffectual PCs — removable by an oracle predictor
seeded with static facts alone) and the *structural upper ceiling*
(every instance except the never-removable classes ``jalr``/``out``/
``halt``).  The dynamic removal fraction of any slipstream
configuration must land between zero and the upper ceiling; the eval
layer asserts this invariant per workload.

Everything here is deterministic, so reports serve as golden CI
artifacts; every field is JSON-serializable via :func:`report_json`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.absint import (
    AbsintResult,
    classify_branches,
    interpret,
    loop_bounds,
    monotone_exit_indices,
    resolved_jalr_targets,
    silent_store_indices,
)
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import WriteClass, analyze
from repro.arch.functional import FunctionalSimulator, InstructionLimitExceeded
from repro.isa.instructions import InstrClass, Opcode
from repro.isa.program import Program

#: Instruction classes the removal machinery never elides (mirrors
#: ``repro.core.slipstream._NEVER_REMOVED``).
NEVER_REMOVABLE_CLASSES = (InstrClass.JUMP_INDIRECT, InstrClass.OUT, InstrClass.HALT)

#: Display/serialization order of proven-fact kinds.
FACT_KINDS = (
    "dead-write",
    "dead-store",
    "silent-store",
    "branch-always",
    "branch-never",
)


def refinement_overrides(
    program: Program, result: AbsintResult
) -> Tuple[Dict[int, Tuple[int, ...]], Dict[int, int]]:
    """Edge prunings proven by the interval analysis.

    Returns ``(succ_overrides, resolved_jalr)``: per-instruction
    successor restrictions for constant-direction branches and
    singleton-target ``jalr``\\ s.  Sound because a fact proven on an
    over-approximating CFG holds in every execution, so the pruned
    edges are traversed by none.
    """
    cfg = result.cfg
    overrides: Dict[int, Tuple[int, ...]] = {}
    outcomes = classify_branches(result)
    for i, outcome in outcomes.items():
        instr = cfg.program.instructions[i]
        target = cfg.program.index_of(instr.target)
        if target == i + 1:
            continue  # degenerate: both outcomes share the successor
        if outcome == "always":
            overrides[i] = (target,)
        elif outcome == "never":
            overrides[i] = tuple(s for s in cfg.instr_succs[i] if s != target)
    resolved = resolved_jalr_targets(result)
    for i, target in resolved.items():
        overrides[i] = (target,)
    return overrides, resolved


def refine_cfg(program: Program, result: AbsintResult) -> CFG:
    """Rebuild the CFG with interval-proven edge prunings applied.

    ``indirect_exact`` is promoted to True when every ``jalr`` still
    reachable after pruning has a unique resolved target — the
    must-style write classification then applies to programs with
    indirect jumps too.
    """
    overrides, resolved = refinement_overrides(program, result)
    refined = build_cfg(program, succ_overrides=overrides)
    jalr_indices = [
        i
        for i, instr in enumerate(program.instructions)
        if instr.klass is InstrClass.JUMP_INDIRECT
    ]
    if jalr_indices:
        reachable = refined.reachable_instrs()
        exact = all(i in resolved or i not in reachable for i in jalr_indices)
        if exact:
            refined = build_cfg(program, succ_overrides=overrides, indirect_exact=True)
    return refined


@dataclass(frozen=True)
class StaticRemovalReport:
    """Per-PC statically-proven removal facts for one program.

    PC tuples are sorted byte addresses.  ``range_refined_dead_pcs``
    is the strengthening delta: dead writes/stores provable only on
    the interval-refined CFG.
    """

    name: str
    instructions: int
    reachable: int
    unreachable_refined: int
    indirect_exact: bool
    jalr_total: int
    jalr_resolved: int
    pruned_edges: int
    dead_write_pcs: Tuple[int, ...]
    dead_store_pcs: Tuple[int, ...]
    silent_store_pcs: Tuple[int, ...]
    branch_always_pcs: Tuple[int, ...]
    branch_never_pcs: Tuple[int, ...]
    monotone_exit_pcs: Tuple[int, ...]
    range_refined_dead_pcs: Tuple[int, ...]
    loop_header_pcs: Tuple[int, ...]
    loop_trip_bounds: Tuple[Tuple[int, int], ...]

    @property
    def proven_pcs(self) -> Tuple[int, ...]:
        """Every PC with at least one proven-ineffectual fact."""
        return tuple(
            sorted(
                set(self.dead_write_pcs)
                | set(self.dead_store_pcs)
                | set(self.silent_store_pcs)
                | set(self.branch_always_pcs)
                | set(self.branch_never_pcs)
            )
        )

    def fact_kinds(self) -> Dict[int, Tuple[str, ...]]:
        """PC -> proven fact kinds (in :data:`FACT_KINDS` order)."""
        by_pc: Dict[int, list] = {}
        for kind, pcs in zip(
            FACT_KINDS,
            (
                self.dead_write_pcs,
                self.dead_store_pcs,
                self.silent_store_pcs,
                self.branch_always_pcs,
                self.branch_never_pcs,
            ),
        ):
            for pc in pcs:
                by_pc.setdefault(pc, []).append(kind)
        return {pc: tuple(kinds) for pc, kinds in by_pc.items()}


def static_removal_report(program: Program) -> StaticRemovalReport:
    """Run the full static stack (dataflow, interval interpretation,
    CFG refinement, re-analysis) and bundle every proven fact."""
    cfg0 = build_cfg(program)
    df0 = analyze(cfg0)
    res0 = interpret(program, cfg0)
    cfg1 = refine_cfg(program, res0)
    res1 = interpret(program, cfg1)
    df1 = analyze(cfg1)

    def dead_indices(df) -> set:
        return {
            i for i, cls in df.write_classes.items() if cls is WriteClass.DEAD
        }

    dead0 = dead_indices(df0)
    dead1 = dead_indices(df1)
    dead_stores0 = set(df0.dead_stores)
    dead_stores1 = set(df1.dead_stores)
    # Facts from either CFG are sound (pruning only removes infeasible
    # paths); the refined-only ones are the range-strengthening delta.
    dead_writes = dead0 | dead1
    dead_stores = dead_stores0 | dead_stores1
    refined_only = (dead1 - dead0) | (dead_stores1 - dead_stores0)

    outcomes = classify_branches(res1)
    always = sorted(i for i, o in outcomes.items() if o == "always")
    never = sorted(i for i, o in outcomes.items() if o == "never")
    silent = silent_store_indices(res1)
    monotone = monotone_exit_indices(res1)
    bounds = loop_bounds(res1)

    reachable0 = cfg0.reachable_instrs()
    reachable1 = cfg1.reachable_instrs()
    pruned = sum(
        len(cfg0.instr_succs[i]) - len(cfg1.instr_succs[i])
        for i in range(len(program.instructions))
    )
    jalr_indices = [
        i
        for i, instr in enumerate(program.instructions)
        if instr.klass is InstrClass.JUMP_INDIRECT
    ]
    resolved = resolved_jalr_targets(res0)

    pc = program.pc_of
    return StaticRemovalReport(
        name=program.name,
        instructions=len(program.instructions),
        reachable=len(reachable0),
        unreachable_refined=len(reachable0) - len(reachable1),
        indirect_exact=cfg1.indirect_exact,
        jalr_total=len(jalr_indices),
        jalr_resolved=len(resolved),
        pruned_edges=pruned,
        dead_write_pcs=tuple(sorted(pc(i) for i in dead_writes)),
        dead_store_pcs=tuple(sorted(pc(i) for i in dead_stores)),
        silent_store_pcs=tuple(sorted(pc(i) for i in silent)),
        branch_always_pcs=tuple(pc(i) for i in always),
        branch_never_pcs=tuple(pc(i) for i in never),
        monotone_exit_pcs=tuple(pc(i) for i in monotone),
        range_refined_dead_pcs=tuple(sorted(pc(i) for i in refined_only)),
        loop_header_pcs=tuple(sorted(pc(loop.header_index) for loop in res1.loops)),
        loop_trip_bounds=tuple(
            sorted((b.header_pc, b.bound) for b in bounds)
        ),
    )


@dataclass(frozen=True)
class CeilingReport:
    """A static removal report weighted by a dynamic execution profile."""

    static: StaticRemovalReport
    retired: int
    truncated: bool
    #: Dynamic instances at statically-proven-ineffectual PCs.
    proven_instances: int
    #: Per-kind instance counts, in :data:`FACT_KINDS` order.
    proven_by_kind: Tuple[Tuple[str, int], ...]
    #: Instances of the never-removable classes (jalr/out/halt).
    never_removable_instances: int

    @property
    def proven_fraction(self) -> float:
        """Floor: fraction of the stream proven removable statically."""
        return self.proven_instances / self.retired if self.retired else 0.0

    @property
    def ceiling_fraction(self) -> float:
        """Upper bound on any dynamic removal fraction: everything but
        the classes the machinery never elides."""
        if not self.retired:
            return 0.0
        return 1.0 - self.never_removable_instances / self.retired


def ceiling_report(
    program: Program,
    max_instructions: int = 5_000_000,
    static: Optional[StaticRemovalReport] = None,
) -> CeilingReport:
    """Profile one run and weight the static facts by instance counts."""
    if static is None:
        static = static_removal_report(program)
    executed: Counter = Counter()
    never = 0
    retired = 0
    truncated = False
    sim = FunctionalSimulator(program, max_instructions=max_instructions)
    try:
        for dyn in sim.steps():
            retired += 1
            executed[dyn.pc] += 1
            if dyn.instr.klass in NEVER_REMOVABLE_CLASSES:
                never += 1
    except InstructionLimitExceeded:
        truncated = True

    kinds = static.fact_kinds()
    by_kind = {kind: 0 for kind in FACT_KINDS}
    proven = 0
    for pc, pc_kinds in kinds.items():
        count = executed.get(pc, 0)
        proven += count
        for kind in pc_kinds:
            by_kind[kind] += count
    return CeilingReport(
        static=static,
        retired=retired,
        truncated=truncated,
        proven_instances=proven,
        proven_by_kind=tuple((k, by_kind[k]) for k in FACT_KINDS),
        never_removable_instances=never,
    )


def report_json(report: CeilingReport) -> dict:
    """Deterministic JSON form (golden-artifact friendly)."""
    static = report.static
    return {
        "name": static.name,
        "instructions": static.instructions,
        "reachable": static.reachable,
        "unreachable_refined": static.unreachable_refined,
        "indirect_exact": static.indirect_exact,
        "jalr": {"total": static.jalr_total, "resolved": static.jalr_resolved},
        "pruned_edges": static.pruned_edges,
        "facts": {
            "dead_write_pcs": list(static.dead_write_pcs),
            "dead_store_pcs": list(static.dead_store_pcs),
            "silent_store_pcs": list(static.silent_store_pcs),
            "branch_always_pcs": list(static.branch_always_pcs),
            "branch_never_pcs": list(static.branch_never_pcs),
            "monotone_exit_pcs": list(static.monotone_exit_pcs),
            "range_refined_dead_pcs": list(static.range_refined_dead_pcs),
        },
        "loops": {
            "header_pcs": list(static.loop_header_pcs),
            "trip_bounds": [list(b) for b in static.loop_trip_bounds],
        },
        "profile": {
            "retired": report.retired,
            "truncated": report.truncated,
            "proven_instances": report.proven_instances,
            "proven_by_kind": {k: v for k, v in report.proven_by_kind},
            "never_removable_instances": report.never_removable_instances,
            "proven_fraction": round(report.proven_fraction, 6),
            "ceiling_fraction": round(report.ceiling_fraction, 6),
        },
    }
