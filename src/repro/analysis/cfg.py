"""Control-flow graph construction over assembled :class:`Program`\\ s.

The CFG is the substrate of every static analysis in this package: the
linter, the dataflow passes and the static ineffectuality oracle that
cross-checks the dynamic IR-detector.

Granularity: the graph is built over *basic blocks* (maximal
straight-line runs), but an instruction-level successor relation is kept
alongside because the dataflow passes refine block facts down to single
instructions (traces, removal and the IR-detector all reason per
instruction).

Indirect jumps (``jalr``) are the one statically-unresolvable edge.
Their successor set is over-approximated by

* every *return site* (the instruction after each ``jal``/``jalr`` —
  the only addresses a link register legitimately holds), plus
* every *address-taken* text label (labels materialised as plain
  immediates, recorded by the assembler in ``Program.source``).

For assembler-produced programs that do not forge code pointers with
arithmetic this covers all realisable targets.  ``CFG.indirect_exact``
is True when the program contains no ``jalr`` at all — only then do the
must-style analyses (``must-live`` write classification) make claims,
so the over-approximation can never produce an unsound *must* fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.isa.instructions import InstrClass, Opcode, WORD
from repro.isa.program import Program, TEXT_BASE


@dataclass
class BasicBlock:
    """A maximal single-entry straight-line run of instructions.

    ``start``/``end`` are instruction *indices* (``end`` exclusive).
    """

    id: int
    start: int
    end: int
    succs: Tuple[int, ...] = ()
    preds: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return self.end - self.start

    def indices(self) -> range:
        return range(self.start, self.end)


@dataclass
class CFG:
    """The control-flow graph of one program.

    Attributes:
        program: the analysed program.
        blocks: basic blocks in text order.
        block_of: instruction index -> owning block id.
        instr_succs: instruction index -> successor instruction indices
            (the per-instruction refinement of the block graph).
        falls_off: instruction indices whose fall-through leaves the
            text segment (no successor exists there).
        entry_index: index of the entry instruction (``main`` or text
            base); None for an empty program.
        indirect_exact: True when no ``jalr`` exists, i.e. the successor
            relation is exact rather than over-approximated.
        indirect_targets: the over-approximated ``jalr`` target set
            (instruction indices), empty when no ``jalr`` exists.
    """

    program: Program
    blocks: List[BasicBlock] = field(default_factory=list)
    block_of: List[int] = field(default_factory=list)
    instr_succs: List[Tuple[int, ...]] = field(default_factory=list)
    falls_off: FrozenSet[int] = frozenset()
    entry_index: Optional[int] = None
    indirect_exact: bool = True
    indirect_targets: Tuple[int, ...] = ()

    # -- reachability -------------------------------------------------

    def reachable_instrs(self) -> FrozenSet[int]:
        """Instruction indices reachable from the entry."""
        if self.entry_index is None:
            return frozenset()
        seen: Set[int] = set()
        stack = [self.entry_index]
        while stack:
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            stack.extend(s for s in self.instr_succs[i] if s not in seen)
        return frozenset(seen)

    def reachable_blocks(self) -> FrozenSet[int]:
        reach = self.reachable_instrs()
        return frozenset(b.id for b in self.blocks if b.start in reach)

    def can_reach(self, targets: Set[int]) -> FrozenSet[int]:
        """Instruction indices from which any index in ``targets`` is
        reachable (backwards closure over the successor relation)."""
        preds: Dict[int, List[int]] = {i: [] for i in range(len(self.instr_succs))}
        for i, succs in enumerate(self.instr_succs):
            for s in succs:
                preds[s].append(i)
        seen: Set[int] = set()
        stack = [t for t in targets if 0 <= t < len(self.instr_succs)]
        while stack:
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            stack.extend(p for p in preds[i] if p not in seen)
        return frozenset(seen)

    # -- dominators ---------------------------------------------------

    def dominators(self) -> Dict[int, Optional[int]]:
        """Immediate dominator of every reachable block (by block id).

        The entry block's idom is itself.  Unreachable blocks are absent.
        Uses the Cooper-Harvey-Kennedy iterative algorithm over a
        reverse-postorder numbering.
        """
        if self.entry_index is None:
            return {}
        entry = self.block_of[self.entry_index]
        # Reverse postorder over reachable blocks.
        order: List[int] = []
        seen: Set[int] = set()

        def dfs(b: int) -> None:
            stack = [(b, iter(self.blocks[b].succs))]
            seen.add(b)
            while stack:
                node, it = stack[-1]
                advanced = False
                for s in it:
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, iter(self.blocks[s].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        dfs(entry)
        rpo = list(reversed(order))
        rpo_num = {b: n for n, b in enumerate(rpo)}
        idom: Dict[int, Optional[int]] = {entry: entry}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while rpo_num[a] > rpo_num[b]:
                    a = idom[a]  # type: ignore[assignment]
                while rpo_num[b] > rpo_num[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for b in rpo:
                if b == entry:
                    continue
                preds = [p for p in self.blocks[b].preds if p in idom]
                if not preds:
                    continue
                new = preds[0]
                for p in preds[1:]:
                    new = intersect(new, p)
                if idom.get(b) != new:
                    idom[b] = new
                    changed = True
        return idom

    def dominates(self, a: int, b: int) -> bool:
        """Does block ``a`` dominate block ``b``?"""
        idom = self.dominators()
        if a not in idom or b not in idom:
            return False
        node = b
        while True:
            if node == a:
                return True
            parent = idom[node]
            if parent is None or parent == node:
                return a == node
            node = parent


def _return_sites(program: Program) -> Set[int]:
    sites: Set[int] = set()
    for i, instr in enumerate(program.instructions):
        if instr.opcode in (Opcode.JAL, Opcode.JALR) and i + 1 < len(program):
            sites.add(i + 1)
    return sites


def indirect_target_indices(program: Program) -> Tuple[int, ...]:
    """Over-approximated ``jalr`` target set, as instruction indices."""
    targets: Set[int] = _return_sites(program)
    if program.source is not None:
        for addr in program.source.address_taken:
            if program.contains_pc(addr):
                targets.add(program.index_of(addr))
    else:
        # No provenance: fall back to every labelled text address.
        for addr in program.labels.values():
            if program.contains_pc(addr):
                targets.add(program.index_of(addr))
    return tuple(sorted(targets))


def build_cfg(
    program: Program,
    succ_overrides: Optional[Dict[int, Tuple[int, ...]]] = None,
    indirect_exact: Optional[bool] = None,
) -> CFG:
    """Construct the CFG (blocks, edges, per-instruction successors).

    ``succ_overrides`` replaces the successor set of individual
    instructions — used by :mod:`repro.analysis.absint` to prune edges
    proven infeasible (constant-direction branches, ``jalr`` with a
    singleton target).  Overrides must be a *subset refinement*: they
    may only remove statically-infeasible edges, never invent new ones.
    ``indirect_exact`` overrides the exactness flag when every ``jalr``
    was resolved to a unique target.
    """
    n = len(program.instructions)
    if n == 0:
        return CFG(program)

    has_jalr = any(
        instr.klass is InstrClass.JUMP_INDIRECT for instr in program.instructions
    )
    indirect = indirect_target_indices(program) if has_jalr else ()

    # Per-instruction successors and fall-off detection.
    succs: List[Tuple[int, ...]] = []
    falls_off: Set[int] = set()
    for i, instr in enumerate(program.instructions):
        klass = instr.klass
        out: List[int] = []
        if klass is InstrClass.HALT:
            pass
        elif klass is InstrClass.JUMP:
            out.append(program.index_of(instr.target))
        elif klass is InstrClass.JUMP_INDIRECT:
            out.extend(indirect)
        elif instr.is_branch:
            out.append(program.index_of(instr.target))
            if i + 1 < n:
                out.append(i + 1)
            else:
                falls_off.add(i)
        else:
            if i + 1 < n:
                out.append(i + 1)
            else:
                falls_off.add(i)
        if succ_overrides and i in succ_overrides:
            out = [s for s in succ_overrides[i] if s in out]
        succs.append(tuple(dict.fromkeys(out)))

    # Leaders: entry, every control-transfer target, every instruction
    # after a control transfer or halt, every labelled address, every
    # indirect target.
    entry_index = program.index_of(program.entry) if program.contains_pc(
        program.entry) else 0
    leaders: Set[int] = {0, entry_index}
    for i, instr in enumerate(program.instructions):
        if instr.is_control or instr.klass is InstrClass.HALT:
            if i + 1 < n:
                leaders.add(i + 1)
        if instr.is_control and instr.opcode is not Opcode.JALR:
            if program.contains_pc(instr.target):
                leaders.add(program.index_of(instr.target))
    for addr in program.labels.values():
        if program.contains_pc(addr):
            leaders.add(program.index_of(addr))
    leaders.update(indirect)

    starts = sorted(leaders)
    blocks: List[BasicBlock] = []
    block_of = [0] * n
    for bid, start in enumerate(starts):
        end = starts[bid + 1] if bid + 1 < len(starts) else n
        blocks.append(BasicBlock(bid, start, end))
        for i in range(start, end):
            block_of[i] = bid

    # Block edges from the last instruction's successors.
    preds: List[Set[int]] = [set() for _ in blocks]
    for block in blocks:
        last = block.end - 1
        out_blocks = tuple(dict.fromkeys(block_of[s] for s in succs[last]))
        block.succs = out_blocks
        for s in out_blocks:
            preds[s].add(block.id)
    for block in blocks:
        block.preds = tuple(sorted(preds[block.id]))

    return CFG(
        program=program,
        blocks=blocks,
        block_of=block_of,
        instr_succs=succs,
        falls_off=frozenset(falls_off),
        entry_index=entry_index,
        indirect_exact=not has_jalr if indirect_exact is None else indirect_exact,
        indirect_targets=indirect,
    )


def pc_of(program: Program, index: int) -> int:
    """Byte PC of an instruction index (convenience re-export)."""
    return TEXT_BASE + index * WORD
