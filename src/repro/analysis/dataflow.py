"""Classic dataflow analyses over the instruction-level CFG.

All analyses operate on the per-instruction successor relation of a
:class:`repro.analysis.cfg.CFG` (programs are a few hundred to a few
thousand instructions, so instruction granularity is both simpler and
plenty fast).  Sets are represented as Python-int bitsets.

Analyses:

* **constant propagation** (forward, may) — registers start
  architecturally at zero, so the entry state is all-zeros; this
  resolves most workload memory references to absolute addresses and
  exposes statically-certain division by zero.
* **liveness** (backward, may) — over *locations*: registers ``r1..r63``
  plus every memory word whose address constant propagation resolved.
  A load with an unresolved address conservatively reads every tracked
  memory location; a store with an unresolved address kills nothing.
  Memory is dead at ``halt`` (program output escapes only via ``out``).
* **reaching definitions** (forward, may) — register definitions only;
  yields def-use / use-def chains.
* **must-use** (backward, all-paths least fixpoint) — "from this point,
  every maximal path uses register r before any redefinition"; the
  basis of the ``must-live`` write class that the dynamic IR-detector
  is cross-checked against.  A statically-possible infinite loop that
  never uses r correctly fails the must-use property (least fixpoint),
  so *must* claims stay sound.

Write classification (per register-writing instruction):

* ``DEAD`` — the destination is not live-out: no path references the
  value before it is overwritten or the program ends.  Sound w.r.t. any
  execution because liveness over-approximates uses and the CFG
  over-approximates paths.
* ``MUST_LIVE`` — every path from the write uses the value before any
  redefinition.  Claimed only when the CFG is exact (no ``jalr``).
* ``PARTIAL`` — everything else (live on some paths).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.arch.executor import _ALU_RRI, _ALU_RRR, wrap32
from repro.isa.instructions import Opcode, REG_COUNT

_U32 = 0xFFFFFFFF

#: Location ids: registers r1..r63 occupy ids 0..62; memory words are
#: appended per-program.
_NUM_REG_LOCS = REG_COUNT - 1


def _reg_loc(reg: int) -> int:
    """Location id of a register (reg must be 1..63)."""
    return reg - 1


class WriteClass(enum.Enum):
    """Static classification of one register-writing instruction."""

    DEAD = "dead"
    MUST_LIVE = "must-live"
    PARTIAL = "partial"


@dataclass
class ConstProp:
    """Constant-propagation results.

    ``env_in[i]`` is the register environment before instruction ``i``:
    a 64-entry list, ``None`` meaning unknown, or the whole entry is
    ``None`` when ``i`` is unreachable.  ``mem_addr[i]`` is the resolved
    effective address of a load/store (None when unknown or not a
    memory instruction).  ``div_zero`` lists reachable ``div``/``rem``
    indices whose divisor is statically the constant zero.
    """

    env_in: List[Optional[List[Optional[int]]]]
    mem_addr: List[Optional[int]]
    div_zero: Tuple[int, ...]


def constant_propagation(cfg: CFG) -> ConstProp:
    """Forward constant propagation from the all-zero entry state."""
    program = cfg.program
    n = len(program.instructions)
    env_in: List[Optional[List[Optional[int]]]] = [None] * n
    if cfg.entry_index is None:
        return ConstProp(env_in, [None] * n, ())

    def transfer(i: int, env: List[Optional[int]]) -> List[Optional[int]]:
        instr = program.instructions[i]
        dest = instr.dest
        if dest is None:
            return env
        op = instr.opcode
        out = list(env)
        value: Optional[int] = None
        alu = _ALU_RRR.get(op)
        if alu is not None:
            a, b = env[instr.rs1], env[instr.rs2]
            if a is not None and b is not None:
                value = wrap32(alu(a, b))
        elif (alui := _ALU_RRI.get(op)) is not None:
            a = env[instr.rs1]
            if a is not None:
                value = wrap32(alui(a, instr.imm))
        elif op is Opcode.LUI:
            value = wrap32(instr.imm << 16)
        elif op in (Opcode.JAL, Opcode.JALR):
            value = program.pc_of(i) + 4
        elif op in (Opcode.DIV, Opcode.REM):
            a, b = env[instr.rs1], env[instr.rs2]
            if a is not None and b not in (None, 0):
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
                value = wrap32(quotient if op is Opcode.DIV else a - quotient * b)
        # Loads: value unknown (memory contents are dynamic).
        out[dest] = value
        out[0] = 0
        return out

    entry = cfg.entry_index
    env_in[entry] = [0] * REG_COUNT
    worklist = [entry]
    while worklist:
        i = worklist.pop()
        env = env_in[i]
        assert env is not None
        out = transfer(i, env)
        for s in cfg.instr_succs[i]:
            current = env_in[s]
            if current is None:
                env_in[s] = list(out)
                worklist.append(s)
            else:
                changed = False
                for r in range(REG_COUNT):
                    if current[r] is not None and current[r] != out[r]:
                        current[r] = None
                        changed = True
                if changed:
                    worklist.append(s)

    mem_addr: List[Optional[int]] = [None] * n
    div_zero: List[int] = []
    for i, instr in enumerate(program.instructions):
        env = env_in[i]
        if env is None:
            continue
        if instr.opcode in (Opcode.LW, Opcode.SW):
            base = env[instr.rs1]
            if base is not None:
                mem_addr[i] = wrap32(base + instr.imm) & _U32
        elif instr.opcode in (Opcode.DIV, Opcode.REM) and env[instr.rs2] == 0:
            div_zero.append(i)
    return ConstProp(env_in, mem_addr, tuple(div_zero))


@dataclass
class Liveness:
    """Backward liveness over registers and resolved memory words.

    ``live_in``/``live_out`` are bitsets over location ids;
    ``mem_locs`` maps tracked memory addresses to their location ids.
    """

    live_in: List[int]
    live_out: List[int]
    mem_locs: Dict[int, int]

    def reg_live_out(self, index: int, reg: int) -> bool:
        if reg == 0:
            return False
        return bool(self.live_out[index] >> _reg_loc(reg) & 1)

    def mem_live_out(self, index: int, addr: int) -> bool:
        loc = self.mem_locs.get(addr)
        if loc is None:
            return True  # untracked: no claim, treat as live
        return bool(self.live_out[index] >> loc & 1)


def liveness(cfg: CFG, consts: Optional[ConstProp] = None) -> Liveness:
    """Backward may-liveness; see the module docstring for the memory
    model (unknown loads read everything, unknown stores kill nothing)."""
    program = cfg.program
    n = len(program.instructions)
    if consts is None:
        consts = constant_propagation(cfg)

    mem_locs: Dict[int, int] = {}
    for i, instr in enumerate(program.instructions):
        addr = consts.mem_addr[i]
        if addr is not None and addr not in mem_locs:
            mem_locs[addr] = _NUM_REG_LOCS + len(mem_locs)
    all_mem_mask = 0
    for loc in mem_locs.values():
        all_mem_mask |= 1 << loc

    gen = [0] * n
    kill = [0] * n
    for i, instr in enumerate(program.instructions):
        g = 0
        for reg in instr.srcs:
            if reg:
                g |= 1 << _reg_loc(reg)
        if instr.is_load:
            addr = consts.mem_addr[i]
            g |= (1 << mem_locs[addr]) if addr is not None else all_mem_mask
        k = 0
        if instr.dest is not None:
            k = 1 << _reg_loc(instr.dest)
        elif instr.is_store:
            addr = consts.mem_addr[i]
            if addr is not None:
                k = 1 << mem_locs[addr]
        gen[i] = g
        kill[i] = k

    live_in = [0] * n
    live_out = [0] * n
    # Backward worklist; iterate in reverse text order for fast
    # convergence on reducible graphs.
    preds: List[List[int]] = [[] for _ in range(n)]
    for i, succs in enumerate(cfg.instr_succs):
        for s in succs:
            preds[s].append(i)
    worklist = list(range(n))
    in_worklist = [True] * n
    while worklist:
        i = worklist.pop()
        in_worklist[i] = False
        out = 0
        for s in cfg.instr_succs[i]:
            out |= live_in[s]
        live_out[i] = out
        new_in = gen[i] | (out & ~kill[i])
        if new_in != live_in[i]:
            live_in[i] = new_in
            for p in preds[i]:
                if not in_worklist[p]:
                    in_worklist[p] = True
                    worklist.append(p)
    return Liveness(live_in, live_out, mem_locs)


@dataclass
class ReachingDefs:
    """Reaching definitions (register defs only) and the derived
    def-use / use-def chains.

    ``defs`` lists definition sites as ``(index, reg)``;
    ``use_defs[(index, reg)]`` gives the def ids reaching that use;
    ``def_use[def_id]`` gives the use sites ``(index, reg)`` the def
    reaches.  A use with an empty def set reads the architectural zero
    initial value (never explicitly written on any path).
    """

    defs: List[Tuple[int, int]]
    use_defs: Dict[Tuple[int, int], Tuple[int, ...]]
    def_use: Dict[int, Tuple[Tuple[int, int], ...]]


def reaching_definitions(cfg: CFG) -> ReachingDefs:
    program = cfg.program
    n = len(program.instructions)
    defs: List[Tuple[int, int]] = []
    def_id_of: Dict[int, int] = {}  # instruction index -> def id
    defs_of_reg_mask: Dict[int, int] = {}
    for i, instr in enumerate(program.instructions):
        if instr.dest is not None:
            def_id = len(defs)
            def_id_of[i] = def_id
            defs.append((i, instr.dest))
            defs_of_reg_mask[instr.dest] = (
                defs_of_reg_mask.get(instr.dest, 0) | 1 << def_id
            )

    rd_in = [0] * n
    preds: List[List[int]] = [[] for _ in range(n)]
    for i, succs in enumerate(cfg.instr_succs):
        for s in succs:
            preds[s].append(i)

    def out_of(i: int) -> int:
        instr = program.instructions[i]
        out = rd_in[i]
        if instr.dest is not None:
            out &= ~defs_of_reg_mask[instr.dest]
            out |= 1 << def_id_of[i]
        return out

    worklist = list(range(n))
    in_worklist = [True] * n
    while worklist:
        i = worklist.pop(0)
        in_worklist[i] = False
        new_in = 0
        for p in preds[i]:
            new_in |= out_of(p)
        if new_in != rd_in[i] or i == cfg.entry_index:
            if new_in != rd_in[i]:
                rd_in[i] = new_in
                for s in cfg.instr_succs[i]:
                    if not in_worklist[s]:
                        in_worklist[s] = True
                        worklist.append(s)

    use_defs: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    def_use: Dict[int, List[Tuple[int, int]]] = {d: [] for d in range(len(defs))}
    for i, instr in enumerate(program.instructions):
        for reg in sorted(set(instr.srcs)):
            if not reg:
                continue
            mask = rd_in[i] & defs_of_reg_mask.get(reg, 0)
            ids = []
            while mask:
                low = mask & -mask
                ids.append(low.bit_length() - 1)
                mask ^= low
            use_defs[(i, reg)] = tuple(ids)
            for d in ids:
                def_use[d].append((i, reg))
    return ReachingDefs(
        defs, use_defs, {d: tuple(u) for d, u in def_use.items()}
    )


def must_use_before_kill(cfg: CFG, reg: int) -> List[bool]:
    """``result[i]``: starting *at* instruction ``i``, every maximal
    path uses register ``reg`` before any instruction redefines it (or
    the program halts / falls off).  Least fixpoint — statically
    possible non-terminating paths that never use ``reg`` yield False.
    """
    program = cfg.program
    n = len(program.instructions)
    uses = [reg in instr.srcs for instr in program.instructions]
    kills = [instr.dest == reg for instr in program.instructions]
    val = [False] * n
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            if val[i]:
                continue
            if uses[i]:
                new = True
            elif kills[i]:
                new = False
            else:
                succs = cfg.instr_succs[i]
                new = bool(succs) and all(val[s] for s in succs)
            if new and not val[i]:
                val[i] = True
                changed = True
    return val


@dataclass
class Dataflow:
    """Bundled dataflow facts for one program."""

    cfg: CFG
    consts: ConstProp
    live: Liveness
    reaching: ReachingDefs
    #: Register-writing instruction index -> static write class.
    write_classes: Dict[int, WriteClass] = field(default_factory=dict)
    #: Reachable constant-address stores whose location is dead-out.
    dead_stores: Tuple[int, ...] = ()


def classify_writes(cfg: CFG, live: Liveness) -> Dict[int, WriteClass]:
    program = cfg.program
    reachable = cfg.reachable_instrs()
    must_cache: Dict[int, List[bool]] = {}
    classes: Dict[int, WriteClass] = {}
    for i, instr in enumerate(program.instructions):
        dest = instr.dest
        if dest is None or i not in reachable:
            continue
        if not live.reg_live_out(i, dest):
            classes[i] = WriteClass.DEAD
        elif cfg.indirect_exact:
            if dest not in must_cache:
                must_cache[dest] = must_use_before_kill(cfg, dest)
            must = must_cache[dest]
            succs = cfg.instr_succs[i]
            if succs and all(must[s] for s in succs):
                classes[i] = WriteClass.MUST_LIVE
            else:
                classes[i] = WriteClass.PARTIAL
        else:
            classes[i] = WriteClass.PARTIAL
    return classes


def analyze(cfg: CFG) -> Dataflow:
    """Run every pass and bundle the results."""
    consts = constant_propagation(cfg)
    live = liveness(cfg, consts)
    reaching = reaching_definitions(cfg)
    classes = classify_writes(cfg, live)
    reachable = cfg.reachable_instrs()
    dead_stores = tuple(
        i
        for i, instr in enumerate(cfg.program.instructions)
        if instr.is_store
        and i in reachable
        and consts.mem_addr[i] is not None
        and not live.mem_live_out(i, consts.mem_addr[i])
    )
    return Dataflow(cfg, consts, live, reaching, classes, dead_stores)
