"""Static ineffectuality oracle and the static/dynamic cross-check.

The IR-detector (:mod:`repro.core.ir_detector`) discovers ineffectual
instructions *dynamically*: an unreferenced write (WW) is one whose
value is overwritten, within the detector's trace scope, with its
reference bit still clear.  The static write classification
(:mod:`repro.analysis.dataflow`) provides an independent ground truth,
and the two must relate:

* A statically **dead** write (``WriteClass.DEAD``) is never referenced
  on *any* static path, hence never referenced in *any* execution.  The
  run-time shadow tracker here verifies that directly — a referenced
  instance of a statically-dead write (``static_unsound_pcs``) would be
  a bug in the static analysis.  Every executed instance *should* also
  eventually be classified ineffectual by the detector; the detector's
  finite scope makes this a rate (``instance_agreement``), not an
  invariant — a dead value overwritten only after its trace leaves the
  8-trace scope is legitimately missed.
* A statically **must-live** write (``WriteClass.MUST_LIVE``; claimed
  only when the CFG is exact) is referenced before being overwritten on
  *every* path, so a *direct* WW verdict (not back-propagation) from
  the detector contradicts it: the rename-table entry's reference bit
  is set by the intervening read, and scope eviction only ever
  suppresses WW claims, never forges them.  Any such contradiction
  (``detector_contradiction_pcs``) is a detector soundness bug.

Statically-dead *stores* (resolved address never re-read) participate
too, via a memory shadow keyed on effective address.

The interval layer (:mod:`repro.analysis.absint`, packaged by
:mod:`repro.analysis.ceiling`) adds three more must-fact families, each
validated per executed instance:

* **silent stores** — the stored value must equal the value already in
  memory (checked against a concrete memory image maintained here);
* **pinned branches** — an always-taken (never-taken) branch must
  retire taken (not taken) every time;
* **range-refined dead writes** — dead only on the interval-refined
  CFG; they join ``dead_pcs`` and are validated by the same shadow
  reference tracker.

Violations land in ``silent_violation_pcs`` / ``branch_violation_pcs``
/ ``static_unsound_pcs`` and break :attr:`CrossCheckResult.sound`.

This module deliberately does not import :mod:`repro.workloads`
(workload builders lint through :mod:`repro.analysis`, so an import
here would be circular); callers hand in an assembled ``Program``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.ceiling import StaticRemovalReport, static_removal_report
from repro.analysis.dataflow import Dataflow, WriteClass, analyze
from repro.arch.functional import FunctionalSimulator, InstructionLimitExceeded
from repro.core.ir_detector import ALL_TRIGGERS, DEFAULT_SCOPE_TRACES, IRDetector
from repro.core.removal import RemovalKind
from repro.isa.program import Program
from repro.trace.selection import TRACE_LENGTH, TraceSelector


@dataclass(frozen=True)
class StaticSummary:
    """Static write classification of one program, keyed by byte PC."""

    name: str
    indirect_exact: bool
    dead_pcs: Tuple[int, ...]
    must_live_pcs: Tuple[int, ...]
    partial_pcs: Tuple[int, ...]
    dead_store_pcs: Tuple[int, ...]

    @property
    def classified_writes(self) -> int:
        return len(self.dead_pcs) + len(self.must_live_pcs) + len(self.partial_pcs)


def analyze_static(program: Program, dataflow: Optional[Dataflow] = None) -> StaticSummary:
    """Classify every reachable register write (and constant-address
    store) of a program; see :class:`StaticSummary`."""
    if dataflow is None:
        dataflow = analyze(build_cfg(program))
    by_class: Dict[WriteClass, List[int]] = {c: [] for c in WriteClass}
    for index, cls in dataflow.write_classes.items():
        by_class[cls].append(program.pc_of(index))
    return StaticSummary(
        name=program.name,
        indirect_exact=dataflow.cfg.indirect_exact,
        dead_pcs=tuple(sorted(by_class[WriteClass.DEAD])),
        must_live_pcs=tuple(sorted(by_class[WriteClass.MUST_LIVE])),
        partial_pcs=tuple(sorted(by_class[WriteClass.PARTIAL])),
        dead_store_pcs=tuple(sorted(program.pc_of(i) for i in dataflow.dead_stores)),
    )


@dataclass(frozen=True)
class DeadPCStat:
    """Per-PC dynamic observations for one statically-dead write."""

    pc: int
    executed: int
    selected: int
    referenced: int


@dataclass(frozen=True)
class CrossCheckResult:
    """Outcome of one static/dynamic cross-check run.

    Soundness invariants (must both be empty for a green run):

    * ``static_unsound_pcs`` — statically-dead writes whose value was
      observed referenced at run time (static analysis bug);
    * ``detector_contradiction_pcs`` — direct WW verdicts on
      statically must-live writes (IR-detector soundness bug).
    """

    name: str
    retired: int
    truncated: bool
    static: StaticSummary
    dead_instances_executed: int
    dead_instances_selected: int
    dead_pc_stats: Tuple[DeadPCStat, ...]
    static_unsound_pcs: Tuple[int, ...]
    detector_contradiction_pcs: Tuple[int, ...]
    #: Interval-layer facts (None when the absint pass was skipped).
    removal_report: Optional[StaticRemovalReport] = None
    silent_instances_executed: int = 0
    silent_instances_selected: int = 0
    #: Proven-silent stores observed writing a *different* value.
    silent_violation_pcs: Tuple[int, ...] = ()
    pinned_branch_instances: int = 0
    pinned_branch_selected: int = 0
    #: Proven-direction branches observed going the other way.
    branch_violation_pcs: Tuple[int, ...] = ()

    @property
    def sound(self) -> bool:
        return (
            not self.static_unsound_pcs
            and not self.detector_contradiction_pcs
            and not self.silent_violation_pcs
            and not self.branch_violation_pcs
        )

    @property
    def instance_agreement(self) -> float:
        """Fraction of executed statically-dead instances the detector
        classified ineffectual (1.0 when none executed)."""
        if not self.dead_instances_executed:
            return 1.0
        return self.dead_instances_selected / self.dead_instances_executed

    @property
    def pc_coverage(self) -> float:
        """Fraction of executed statically-dead PCs with at least one
        detector-selected instance (1.0 when none executed)."""
        hit = sum(1 for s in self.dead_pc_stats if s.executed and s.selected)
        total = sum(1 for s in self.dead_pc_stats if s.executed)
        return hit / total if total else 1.0

    @property
    def silent_agreement(self) -> float:
        """Fraction of executed proven-silent-store instances the
        detector classified ineffectual (1.0 when none executed)."""
        if not self.silent_instances_executed:
            return 1.0
        return self.silent_instances_selected / self.silent_instances_executed


def cross_check(
    program: Program,
    trace_length: int = TRACE_LENGTH,
    scope_traces: int = DEFAULT_SCOPE_TRACES,
    triggers: Iterable[str] = ALL_TRIGGERS,
    max_instructions: int = 5_000_000,
    dataflow: Optional[Dataflow] = None,
    removal_report: Optional[StaticRemovalReport] = None,
    include_absint: bool = True,
) -> CrossCheckResult:
    """Run a program once, feeding the IR-detector, while a shadow
    tracker records ground-truth reference behaviour; compare both
    against the static classification (dataflow and, unless
    ``include_absint`` is off, the interval layer's proven facts)."""
    if dataflow is None:
        dataflow = analyze(build_cfg(program))
    static = analyze_static(program, dataflow)
    if removal_report is None and include_absint:
        removal_report = static_removal_report(program)
    dead_pcs = frozenset(static.dead_pcs) | frozenset(static.dead_store_pcs)
    silent_pcs: frozenset = frozenset()
    always_pcs: frozenset = frozenset()
    never_pcs: frozenset = frozenset()
    if removal_report is not None:
        dead_pcs |= frozenset(removal_report.dead_write_pcs)
        dead_pcs |= frozenset(removal_report.dead_store_pcs)
        silent_pcs = frozenset(removal_report.silent_store_pcs)
        always_pcs = frozenset(removal_report.branch_always_pcs)
        never_pcs = frozenset(removal_report.branch_never_pcs)
    must_live = frozenset(static.must_live_pcs)

    executed: Counter = Counter()
    selected: Counter = Counter()
    referenced: Counter = Counter()
    contradictions: set = set()
    silent_executed = 0
    silent_selected = 0
    silent_violations: set = set()
    pinned_instances = 0
    pinned_selected = 0
    branch_violations: set = set()

    # Shadow trackers: location -> [writer_pc, instance_referenced].
    reg_shadow: Dict[int, List] = {}
    mem_shadow: Dict[int, List] = {}
    # Concrete memory image for silent-store validation.
    mem_image: Dict[int, int] = dict(program.data)

    def reference(entry: Optional[List]) -> None:
        if entry is not None and not entry[1]:
            entry[1] = True
            referenced[entry[0]] += 1

    def consume(analysis) -> None:
        nonlocal silent_selected, pinned_selected
        for i, pc in enumerate(analysis.pcs):
            if analysis.ir_vec[i]:
                if pc in dead_pcs:
                    selected[pc] += 1
                if pc in silent_pcs:
                    silent_selected += 1
                if pc in always_pcs or pc in never_pcs:
                    pinned_selected += 1
            kind = analysis.kinds[i]
            if (
                kind & RemovalKind.WW
                and not kind & RemovalKind.PROPAGATED
                and pc in must_live
            ):
                contradictions.add(pc)

    selector = TraceSelector(trace_length)
    detector = IRDetector(scope_traces=scope_traces, triggers=triggers)
    sim = FunctionalSimulator(program, max_instructions=max_instructions)
    retired = 0
    truncated = False
    try:
        for dyn in sim.steps():
            retired += 1
            instr = dyn.instr
            # Reads happen before the write of the same instruction.
            for reg in instr.srcs:
                if reg:
                    reference(reg_shadow.get(reg))
            if instr.is_load and dyn.mem_addr is not None:
                reference(mem_shadow.get(dyn.mem_addr))
            if instr.is_branch and (dyn.pc in always_pcs or dyn.pc in never_pcs):
                pinned_instances += 1
                if dyn.taken != (dyn.pc in always_pcs):
                    branch_violations.add(dyn.pc)
            if instr.is_store and dyn.mem_addr is not None:
                if dyn.pc in dead_pcs:
                    executed[dyn.pc] += 1
                if dyn.pc in silent_pcs:
                    silent_executed += 1
                    if mem_image.get(dyn.mem_addr, 0) != dyn.value:
                        silent_violations.add(dyn.pc)
                mem_image[dyn.mem_addr] = dyn.value
                mem_shadow[dyn.mem_addr] = [dyn.pc, False]
            elif dyn.dest_reg is not None:
                if dyn.pc in dead_pcs:
                    executed[dyn.pc] += 1
                reg_shadow[dyn.dest_reg] = [dyn.pc, False]
            trace = selector.feed(dyn)
            if trace is not None:
                for analysis in detector.feed_trace(trace):
                    consume(analysis)
    except InstructionLimitExceeded:
        truncated = True
    tail = selector.flush()
    if tail is not None:
        for analysis in detector.feed_trace(tail):
            consume(analysis)
    for analysis in detector.drain():
        consume(analysis)

    stats = tuple(
        DeadPCStat(pc, executed[pc], selected[pc], referenced[pc])
        for pc in sorted(dead_pcs)
    )
    return CrossCheckResult(
        name=program.name,
        retired=retired,
        truncated=truncated,
        static=static,
        dead_instances_executed=sum(executed[pc] for pc in sorted(dead_pcs)),
        dead_instances_selected=sum(selected[pc] for pc in sorted(dead_pcs)),
        dead_pc_stats=stats,
        static_unsound_pcs=tuple(pc for pc in sorted(dead_pcs) if referenced[pc]),
        detector_contradiction_pcs=tuple(sorted(contradictions)),
        removal_report=removal_report,
        silent_instances_executed=silent_executed,
        silent_instances_selected=silent_selected,
        silent_violation_pcs=tuple(sorted(silent_violations)),
        pinned_branch_instances=pinned_instances,
        pinned_branch_selected=pinned_selected,
        branch_violation_pcs=tuple(sorted(branch_violations)),
    )
