"""Static program linter for mini-RISC workloads.

Rules (severity in brackets):

* ``fall-off-end`` [error] — a reachable instruction can fall through
  past the end of the text segment.
* ``missing-halt`` [error] — no ``halt`` is reachable from the entry.
* ``oob-data`` [error] — a statically-resolved load/store address lies
  outside the laid-out data segment.
* ``unaligned-data`` [error] — a statically-resolved load/store address
  is not word-aligned.
* ``div-zero`` [error] — a reachable ``div``/``rem`` whose divisor is
  statically the constant zero.
* ``unreachable-code`` [warning] — basic block unreachable from entry.
* ``undef-read`` [warning] — a read with no reaching definition on any
  path (the register still holds its architectural zero).
* ``dead-write`` [warning] — register write never referenced on any
  path before being overwritten (statically ineffectual; the dynamic
  IR-detector should eventually classify every executed instance).
* ``dead-store`` [warning] — store to a statically-resolved address
  that no path reads before it is overwritten or the program halts.
* ``r0-write`` [warning] — value-producing instruction targeting the
  hardwired-zero register (``jal``/``jalr`` discarding the link via
  ``r0`` are exempt).
* ``halt-unreachable`` [warning] — reachable code from which no
  ``halt`` can be reached (statically-guaranteed infinite loop).
* ``conv-link`` [warning] — DSL convention: ``jal``/``jalr`` must link
  through ``r31`` (or discard via ``r0``).
* ``lcg-low-bits`` [warning] — DSL convention: masking low bits of the
  LCG state register ``r29`` (low bits are short-period and must not
  drive "random" branches; use the high bits, cf. ``workloads/dsl.py``).

Suppression: a source-line comment ``lint: ok`` (or ``allow``/
``ignore``) suppresses all rules on that line; ``lint: ok(rule-a,
rule-b)`` suppresses just those rules.  Suppressed diagnostics are
still returned, flagged, so tooling can report suppression counts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import Dataflow, WriteClass, analyze
from repro.isa.instructions import InstrClass, Opcode, RRI_OPS, RRR_OPS, WORD
from repro.isa.program import DATA_BASE, Program

ERROR = "error"
WARNING = "warning"

#: Every rule name, for validation of allow-lists and suppressions.
ALL_RULES = frozenset(
    {
        "fall-off-end",
        "missing-halt",
        "oob-data",
        "unaligned-data",
        "div-zero",
        "unreachable-code",
        "undef-read",
        "dead-write",
        "dead-store",
        "r0-write",
        "halt-unreachable",
        "conv-link",
        "lcg-low-bits",
    }
)

_LINK_REG = 31
_LCG_REG = 29

_SUPPRESS_RE = re.compile(
    r"lint:\s*(?:ok|allow|ignore)\s*(?:\(\s*(?P<rules>[a-z0-9\-,\s]*)\s*\))?"
)


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, with source location when available."""

    rule: str
    severity: str
    message: str
    index: Optional[int] = None  # instruction index, when applicable
    pc: Optional[int] = None
    line_no: Optional[int] = None
    line_text: Optional[str] = None
    suppressed: bool = False

    def render(self, program_name: str = "") -> str:
        where = ""
        if self.line_no is not None:
            where = f"line {self.line_no}: "
        elif self.pc is not None:
            where = f"pc {self.pc:#x}: "
        prefix = f"{program_name}: " if program_name else ""
        sup = " [suppressed]" if self.suppressed else ""
        return f"{prefix}{where}{self.severity}: {self.rule}: {self.message}{sup}"


class LintError(Exception):
    """Raised (e.g. at workload build time) when lint errors remain."""

    def __init__(self, program_name: str, diagnostics: Sequence[Diagnostic]):
        self.program_name = program_name
        self.diagnostics = list(diagnostics)
        lines = [d.render(program_name) for d in diagnostics]
        super().__init__(
            f"{len(diagnostics)} lint error(s) in {program_name}:\n"
            + "\n".join(lines)
        )


def suppressed_rules(line_text: Optional[str]) -> Optional[frozenset]:
    """Rules a source line suppresses: ``None`` when there is no
    suppression comment, an empty frozenset meaning *all* rules, or the
    explicit rule set."""
    if not line_text:
        return None
    match = _SUPPRESS_RE.search(line_text)
    if not match:
        return None
    rules = match.group("rules")
    if rules is None or not rules.strip():
        return frozenset()
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


def active(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Diagnostics not suppressed at source level."""
    return [d for d in diagnostics if not d.suppressed]


def errors(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    return [d for d in active(diagnostics) if d.severity == ERROR]


def lint_program(
    program: Program,
    allow: Iterable[str] = (),
    dataflow: Optional[Dataflow] = None,
) -> List[Diagnostic]:
    """Lint one program; returns all diagnostics (suppressed included,
    flagged).  ``allow`` globally disables the named rules."""
    allow_set = frozenset(allow)
    unknown = allow_set - ALL_RULES
    if unknown:
        raise ValueError(f"unknown lint rule(s): {sorted(unknown)}")
    if dataflow is None:
        dataflow = analyze(build_cfg(program))
    cfg = dataflow.cfg
    raw = list(_collect(program, cfg, dataflow))
    out: List[Diagnostic] = []
    for diag in raw:
        if diag.rule in allow_set:
            continue
        out.append(replace(diag, suppressed=_is_suppressed(diag)))
    out.sort(key=lambda d: (d.index if d.index is not None else -1, d.rule))
    return out


def _is_suppressed(diag: Diagnostic) -> bool:
    rules = suppressed_rules(diag.line_text)
    if rules is None:
        return False
    return not rules or diag.rule in rules


def _locate(program: Program, index: int) -> Tuple[int, Optional[int], Optional[str]]:
    pc = program.pc_of(index)
    if program.source is not None:
        loc = program.source.loc_of(index)
        if loc is not None:
            return pc, loc.line_no, loc.text
    return pc, None, None


def _diag(
    program: Program, rule: str, severity: str, index: int, message: str
) -> Diagnostic:
    pc, line_no, line_text = _locate(program, index)
    return Diagnostic(rule, severity, message, index, pc, line_no, line_text)


def _collect(program: Program, cfg: CFG, df: Dataflow) -> Iterable[Diagnostic]:
    instrs = program.instructions
    if not instrs:
        yield Diagnostic("missing-halt", ERROR, "program has no instructions")
        return
    reachable = cfg.reachable_instrs()
    halts = {i for i in reachable if instrs[i].klass is InstrClass.HALT}

    # -- control-flow shape -------------------------------------------
    if not halts:
        yield Diagnostic(
            "missing-halt", ERROR, "no halt instruction is reachable from entry"
        )
    else:
        reaches_halt = cfg.can_reach(set(halts))
        for block in cfg.blocks:
            i = block.start
            if i in reachable and i not in reaches_halt:
                yield _diag(
                    program,
                    "halt-unreachable",
                    WARNING,
                    i,
                    f"no halt reachable from {instrs[i].format()!r}: "
                    "statically-guaranteed infinite loop",
                )
    for i in sorted(cfg.falls_off & reachable):
        yield _diag(
            program,
            "fall-off-end",
            ERROR,
            i,
            f"execution can fall off the end of the text segment after "
            f"{instrs[i].format()!r}",
        )
    for block in cfg.blocks:
        if block.start not in reachable and len(block):
            yield _diag(
                program,
                "unreachable-code",
                WARNING,
                block.start,
                f"unreachable block of {len(block)} instruction(s) starting at "
                f"{instrs[block.start].format()!r}",
            )

    # -- memory references --------------------------------------------
    data_end = program.data_end()
    for i in sorted(reachable):
        addr = df.consts.mem_addr[i]
        if addr is None:
            continue
        if addr % WORD:
            yield _diag(
                program,
                "unaligned-data",
                ERROR,
                i,
                f"{instrs[i].format()!r} addresses {addr:#x}, "
                f"not {WORD}-byte aligned",
            )
        if not DATA_BASE <= addr < max(data_end, DATA_BASE + WORD):
            yield _diag(
                program,
                "oob-data",
                ERROR,
                i,
                f"{instrs[i].format()!r} addresses {addr:#x}, outside the "
                f"data segment [{DATA_BASE:#x}, {data_end:#x})",
            )

    # -- arithmetic ----------------------------------------------------
    for i in df.consts.div_zero:
        if i in reachable:
            yield _diag(
                program,
                "div-zero",
                ERROR,
                i,
                f"{instrs[i].format()!r} divides by the constant zero",
            )

    # -- dataflow ------------------------------------------------------
    for i in sorted(reachable):
        instr = instrs[i]
        for reg in sorted(set(instr.srcs)):
            if reg and not df.reaching.use_defs.get((i, reg)):
                yield _diag(
                    program,
                    "undef-read",
                    WARNING,
                    i,
                    f"{instr.format()!r} reads r{reg}, which is never "
                    "written on any path (architectural zero)",
                )
        cls = df.write_classes.get(i)
        if cls is WriteClass.DEAD:
            yield _diag(
                program,
                "dead-write",
                WARNING,
                i,
                f"{instr.format()!r}: r{instr.dest} is never referenced "
                "before being overwritten (statically dead write)",
            )
    for i in df.dead_stores:
        addr = df.consts.mem_addr[i]
        yield _diag(
            program,
            "dead-store",
            WARNING,
            i,
            f"{instrs[i].format()!r}: word at {addr:#x} is never read "
            "before being overwritten (statically dead store)",
        )

    # -- conventions ---------------------------------------------------
    for i in sorted(reachable):
        instr = instrs[i]
        op = instr.opcode
        value_producing = (
            op in RRR_OPS or op in RRI_OPS or op in (Opcode.LUI, Opcode.LW)
        )
        if value_producing and instr.rd == 0:
            yield _diag(
                program,
                "r0-write",
                WARNING,
                i,
                f"{instr.format()!r} writes r0; the result is discarded",
            )
        if op in (Opcode.JAL, Opcode.JALR) and instr.rd not in (0, _LINK_REG):
            yield _diag(
                program,
                "conv-link",
                WARNING,
                i,
                f"{instr.format()!r} links through r{instr.rd}; convention "
                f"is r{_LINK_REG} (or r0 to discard)",
            )
        if (
            op is Opcode.ANDI
            and instr.rs1 == _LCG_REG
            and 0 < instr.imm <= 0xFF
        ):
            yield _diag(
                program,
                "lcg-low-bits",
                WARNING,
                i,
                f"{instr.format()!r} masks low bits of the LCG state r{_LCG_REG}; "
                "low bits are short-period — shift high bits down instead",
            )
