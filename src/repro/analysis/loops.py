"""Natural-loop detection over the block-level CFG.

A *back edge* is a block edge ``latch -> header`` whose target
dominates its source; the *natural loop* of a header is the union, over
its back edges, of the header plus every block that reaches the latch
without passing through the header.  Loops sharing a header are merged
(standard treatment of multi-latch loops).

The abstract interpreter (:mod:`repro.analysis.absint`) widens at loop
header instructions, and derives per-loop trip-count bounds from the
counter intervals at the loop's unique-increment instruction.  Note
that irreducible cycles (possible only through the over-approximated
``jalr`` edge set) have no back edge under this definition; the
interpreter therefore keeps a global widening backstop and does not
rely on loop detection for termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG


@dataclass(frozen=True)
class NaturalLoop:
    """One natural loop, identified by its header block.

    Attributes:
        header: header block id.
        header_index: first instruction index of the header block.
        blocks: ids of every block in the loop (header included).
        latches: back-edge source block ids.
        exit_branches: instruction indices of conditional branches
            inside the loop with at least one successor outside it.
    """

    header: int
    header_index: int
    blocks: FrozenSet[int]
    latches: Tuple[int, ...]
    exit_branches: Tuple[int, ...]

    def instr_indices(self, cfg: CFG) -> List[int]:
        """All instruction indices inside the loop, in text order."""
        out: List[int] = []
        for bid in sorted(self.blocks):
            out.extend(cfg.blocks[bid].indices())
        return out


def _dominates(idom: Dict[int, Optional[int]], a: int, b: int) -> bool:
    node: Optional[int] = b
    while node is not None:
        if node == a:
            return True
        parent = idom.get(node)
        if parent == node:
            return a == node
        node = parent
    return False


def natural_loops(cfg: CFG) -> Tuple[NaturalLoop, ...]:
    """Detect every natural loop; loops with the same header are merged."""
    idom = cfg.dominators()
    bodies: Dict[int, Set[int]] = {}
    latches: Dict[int, Set[int]] = {}
    for bid in idom:
        for succ in cfg.blocks[bid].succs:
            if succ in idom and _dominates(idom, succ, bid):
                header = succ
                latches.setdefault(header, set()).add(bid)
                body = bodies.setdefault(header, {header})
                # Backward closure from the latch, stopping at the header.
                stack = [bid]
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(p for p in cfg.blocks[node].preds if p not in body)

    loops: List[NaturalLoop] = []
    for header in sorted(bodies):
        body = bodies[header]
        exits: List[int] = []
        for bid in body:
            block = cfg.blocks[bid]
            last = block.end - 1
            instr = cfg.program.instructions[last]
            if instr.is_branch and any(
                cfg.block_of[s] not in body for s in cfg.instr_succs[last]
            ):
                exits.append(last)
        loops.append(
            NaturalLoop(
                header=header,
                header_index=cfg.blocks[header].start,
                blocks=frozenset(body),
                latches=tuple(sorted(latches[header])),
                exit_branches=tuple(sorted(exits)),
            )
        )
    return tuple(loops)


def loop_header_indices(cfg: CFG) -> FrozenSet[int]:
    """Instruction indices of every natural-loop header (widen points)."""
    return frozenset(loop.header_index for loop in natural_loops(cfg))
