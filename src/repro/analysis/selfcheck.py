"""Self-determinism lint: AST checks over the ``repro`` sources.

Every artifact this repository produces (golden suite results, bench
JSON, ceiling reports) is asserted byte-deterministic in CI, so the
*code* must avoid the classic Python nondeterminism hazards.  This
module lints ``src/repro`` itself (not mini-RISC programs — that is
:mod:`repro.analysis.lint`) for three of them:

========================  ==============================================
rule                      flags
========================  ==============================================
``unseeded-random``       module-level ``random.*`` draws (shared global
                          RNG) and ``random.Random()`` constructed with
                          no seed argument
``wall-clock``            ``time.time``/``time.time_ns`` and
                          ``datetime.now``/``utcnow``/``today`` calls —
                          wall-clock values leaking into result paths
                          (monotonic timers for *measuring* durations
                          are fine and not flagged)
``set-iteration``         ``for``/comprehension iteration directly over
                          a set literal, ``set()``/``frozenset()`` call,
                          set comprehension, or a same-scope variable
                          assigned from one — unordered iteration that
                          can leak into output ordering (wrap in
                          ``sorted(...)`` instead)
========================  ==============================================

These are heuristics with an escape hatch: append
``# selfcheck: ok(<rule>)`` to the flagged line to suppress a finding
that is genuinely harmless (e.g. a wall-clock provenance timestamp that
is deliberately excluded from golden comparisons).  Suppressed findings
are still reported, marked, so they stay auditable.

Run via ``python -m repro.analysis selfcheck`` (wired into the CI lint
job next to ruff/mypy); exit status 1 on any unsuppressed finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: All selfcheck rule names, in report order.
ALL_RULES = ("unseeded-random", "wall-clock", "set-iteration")

_SUPPRESS_RE = re.compile(r"#\s*selfcheck:\s*ok\(([a-z-]+)\)")

#: Module-level ``random`` functions that draw from the shared RNG.
_GLOBAL_RNG_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
    }
)

_WALL_CLOCK_TIME_FNS = frozenset({"time", "time_ns"})
_WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


@dataclass(frozen=True)
class SelfDiagnostic:
    """One selfcheck finding."""

    path: str
    line: int
    rule: str
    message: str
    suppressed: bool = False

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{mark}"


def active(diagnostics: Sequence[SelfDiagnostic]) -> List[SelfDiagnostic]:
    """The unsuppressed findings."""
    return [d for d in diagnostics if not d.suppressed]


class _Scope:
    """Tracks which local names are bound to set-valued expressions."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Tuple[int, str, str]] = []
        #: aliases of the ``random`` module / ``time`` module /
        #: ``datetime`` module or ``datetime.datetime`` class.
        self.random_mods: Set[str] = set()
        self.random_fns: Set[str] = set()
        self.random_class: Set[str] = set()
        self.time_mods: Set[str] = set()
        self.datetime_names: Set[str] = set()
        self.scopes: List[_Scope] = [_Scope()]

    # -- imports ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_mods.add(bound)
            elif alias.name == "time":
                self.time_mods.add(bound)
            elif alias.name == "datetime":
                self.datetime_names.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                bound = alias.asname or alias.name
                if alias.name in _GLOBAL_RNG_FNS:
                    self.random_fns.add(bound)
                elif alias.name == "Random":
                    self.random_class.add(bound)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- scope handling for set-typed locals --------------------------

    def _enter_scope(self) -> None:
        self.scopes.append(_Scope())

    def _exit_scope(self) -> None:
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.scopes[-1].set_names.add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.scopes[-1].set_names.discard(target.id)
        self.generic_visit(node)

    # -- rules --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner in self.random_mods:
                if func.attr in _GLOBAL_RNG_FNS:
                    self._flag(
                        node.lineno,
                        "unseeded-random",
                        f"random.{func.attr}() draws from the shared global "
                        "RNG; use a seeded random.Random instance",
                    )
                elif func.attr == "Random" and not node.args and not node.keywords:
                    self._flag(
                        node.lineno,
                        "unseeded-random",
                        "random.Random() without a seed argument is "
                        "OS-entropy seeded; pass an explicit seed",
                    )
            if owner in self.time_mods and func.attr in _WALL_CLOCK_TIME_FNS:
                self._flag(
                    node.lineno,
                    "wall-clock",
                    f"time.{func.attr}() reads the wall clock; keep it "
                    "out of result paths (monotonic timers are fine)",
                )
            if (
                owner in self.datetime_names
                and func.attr in _WALL_CLOCK_DATETIME_FNS
            ):
                self._flag(
                    node.lineno,
                    "wall-clock",
                    f"datetime {func.attr}() reads the wall clock; keep "
                    "it out of result paths",
                )
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Attribute
        ):
            # datetime.datetime.now() / datetime.date.today()
            inner = func.value
            if (
                isinstance(inner.value, ast.Name)
                and inner.value.id in self.datetime_names
                and func.attr in _WALL_CLOCK_DATETIME_FNS
            ):
                self._flag(
                    node.lineno,
                    "wall-clock",
                    f"datetime {func.attr}() reads the wall clock; keep "
                    "it out of result paths",
                )
        elif isinstance(func, ast.Name):
            if func.id in self.random_fns:
                self._flag(
                    node.lineno,
                    "unseeded-random",
                    f"{func.id}() draws from the shared global RNG; use "
                    "a seeded random.Random instance",
                )
            elif func.id in self.random_class and not node.args and not node.keywords:
                self._flag(
                    node.lineno,
                    "unseeded-random",
                    "Random() without a seed argument is OS-entropy "
                    "seeded; pass an explicit seed",
                )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _check_iter(self, expr: ast.expr) -> None:
        if self._is_set_expr(expr):
            self._flag(
                expr.lineno,
                "set-iteration",
                "iterating a set has no deterministic order; wrap in "
                "sorted(...) before it can affect output",
            )
        elif isinstance(expr, ast.Name) and any(
            expr.id in scope.set_names for scope in self.scopes
        ):
            self._flag(
                expr.lineno,
                "set-iteration",
                f"'{expr.id}' is set-valued here; iterate sorted"
                f"({expr.id}) so ordering cannot leak into output",
            )

    @staticmethod
    def _is_set_expr(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in ("set", "frozenset")
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)
        ):
            return _Checker._is_set_expr(expr.left) and _Checker._is_set_expr(
                expr.right
            )
        return False

    def _flag(self, line: int, rule: str, message: str) -> None:
        self.findings.append((line, rule, message))


def check_source(
    source: str, path: str = "<string>", allow: Sequence[str] = ()
) -> List[SelfDiagnostic]:
    """Lint one Python source string; see the module docstring."""
    tree = ast.parse(source, filename=path)
    checker = _Checker(path)
    checker.visit(tree)
    lines = source.splitlines()
    out: List[SelfDiagnostic] = []
    for line, rule, message in sorted(checker.findings):
        if rule in allow:
            continue
        text = lines[line - 1] if 0 < line <= len(lines) else ""
        suppressed = any(
            m.group(1) == rule for m in _SUPPRESS_RE.finditer(text)
        )
        out.append(SelfDiagnostic(path, line, rule, message, suppressed))
    return out


def check_file(path: Path, allow: Sequence[str] = ()) -> List[SelfDiagnostic]:
    return check_source(
        path.read_text(encoding="utf-8"), str(path), allow=allow
    )


def check_tree(
    root: Optional[Path] = None, allow: Sequence[str] = ()
) -> List[SelfDiagnostic]:
    """Lint every ``.py`` file under ``root`` (default: the installed
    ``repro`` package itself)."""
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    findings: List[SelfDiagnostic] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(check_file(path, allow=allow))
    return findings


def summarize(diagnostics: Sequence[SelfDiagnostic]) -> Dict[str, int]:
    """Unsuppressed finding count per rule (zero-filled)."""
    counts = {rule: 0 for rule in ALL_RULES}
    for diag in active(diagnostics):
        counts[diag.rule] += 1
    return counts
