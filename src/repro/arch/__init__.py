"""Architectural state and functional execution.

This is the "oracle" substrate: a register file, a sparse word-granular
memory, precise single-instruction semantics, and a functional simulator
used both to run programs directly and to validate the timing simulator's
retired control/data flow (paper, section 4).
"""

from repro.arch.state import ArchState, Memory, RegisterFile
from repro.arch.executor import DynInstr, execute_one, wrap32
from repro.arch.compiled import (
    CompiledProgram,
    compiled_enabled,
    compiled_for,
    resolve_engine,
)
from repro.arch.functional import FunctionalSimulator, RunResult

__all__ = [
    "ArchState",
    "Memory",
    "RegisterFile",
    "DynInstr",
    "execute_one",
    "wrap32",
    "CompiledProgram",
    "compiled_enabled",
    "compiled_for",
    "resolve_engine",
    "FunctionalSimulator",
    "RunResult",
]
