"""Compiled execution engine: threaded-code closures + block chaining.

The interpreter in :mod:`repro.arch.executor` re-decodes every dynamic
instruction: an ``Opcode`` dict probe, attribute-lookup chains on the
``Instruction``, generic source-tuple construction, and a ``wrap32``
call, all per retired instruction.  Static instructions are few and
dynamic instances are tens of millions, so this module moves the decode
to *program build time*:

* **Record closures** — every static instruction is pre-compiled into a
  specialized closure ``step(state, seq) -> DynInstr`` with its operand
  registers, ALU lambda, immediates, branch target, and both possible
  next-PC values bound as locals.  Immediate-only results (``lui``
  values, ``jal`` link addresses, fall-through PCs) are folded to
  constants.  Dispatch is one dict probe on the PC.

* **Apply closures + basic-block chain cache** — for consumers that
  only need architectural effects (functional reference runs, fault
  campaign references), each instruction also compiles to an
  effect-only closure, and straight-line runs execute whole basic
  blocks per dispatch: a lazily-built cache maps an entry PC to the
  tuple of body closures plus one terminator closure that computes the
  next block's entry PC.  No ``DynInstr`` is allocated at all on this
  path.

Bit-identity with the interpreter is preserved by construction:

* the ALU/branch semantics are the *same lambda objects*
  (``_ALU_RRR``/``_ALU_RRI``/``_BRANCH_COND`` imported from the
  interpreter), specialization only binds their operands earlier;
* effect order matches ``execute_one`` exactly (sources read before
  destination writes, memory checked before any state change), so
  faulting paths (division by zero, unaligned access, wild PCs) raise
  the same exception types with the same messages at the same
  architectural state;
* a PC with no compiled closure (misaligned / outside the text
  segment) falls back to ``execute_one``, which raises exactly what
  the interpreter would.

Engine selection is environmental (``REPRO_COMPILED=0`` opts out) or
explicit (``engine="interpreted"`` constructor arguments).  It is
deliberately *not* part of ``SlipstreamConfig``: both engines produce
identical results, so the choice must not perturb config fingerprints
or evaluation cache keys.
"""

from __future__ import annotations

import os
import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.executor import (
    _ALU_RRI,
    _ALU_RRR,
    _BRANCH_COND,
    DynInstr,
    ExecutionError,
    execute_one,
)
from repro.arch.state import ArchState
from repro.isa.instructions import (
    BRANCH_OPS,
    InstrClass,
    Instruction,
    Opcode,
    RRI_OPS,
    RRR_OPS,
    WORD,
)
from repro.isa.program import Program, TEXT_BASE

_U32 = 0xFFFFFFFF
_SIGN = 0x80000000
_WRAP = 0x100000000

#: Environment opt-out: ``REPRO_COMPILED=0`` selects the interpreter.
ENGINE_ENV = "REPRO_COMPILED"

#: ``step(state, seq) -> DynInstr`` — records one retired instruction.
StepFn = Callable[[ArchState, int], DynInstr]
#: ``apply(state) -> None`` — architectural effect only (block body).
ApplyFn = Callable[[ArchState], None]
#: ``term(state) -> int`` — effect plus the next block's entry PC.
TermFn = Callable[[ArchState], int]

_FALSY = frozenset({"0", "false", "off", "no"})


def compiled_enabled() -> bool:
    """True unless ``REPRO_COMPILED`` is set to a falsy value."""
    value = os.environ.get(ENGINE_ENV)
    if value is None:
        return True
    return value.strip().lower() not in _FALSY


def resolve_engine(engine: Optional[str]) -> str:
    """Normalize an engine request to ``"compiled"`` or ``"interpreted"``.

    ``None`` defers to the environment (compiled by default).
    """
    if engine is None:
        return "compiled" if compiled_enabled() else "interpreted"
    if engine not in ("compiled", "interpreted"):
        raise ValueError(f"unknown execution engine {engine!r}")
    return engine


# ======================================================================
# Record closures: step(state, seq) -> DynInstr.
# ======================================================================
#
# Every builder binds its constants as default arguments (the fastest
# locals CPython has) and inlines wrap32.  DynInstr fields are passed
# positionally: (seq, pc, instr, next_pc, taken, src_values, dest_reg,
# value, mem_addr, output).


def _rec_rrr(instr: Instruction, pc: int) -> StepFn:
    alu = _ALU_RRR[instr.opcode]
    npc = pc + WORD
    rd = instr.dest
    if rd is not None:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=npc,
                 _alu=alu, _ra=instr.rs1, _rb=instr.rs2, _rd=rd):
            regs = state.regs.regs
            a = regs[_ra]
            b = regs[_rb]
            v = _alu(a, b) & 0xFFFFFFFF
            if v & 0x80000000:
                v -= 0x100000000
            regs[_rd] = v
            return _D(seq, _pc, _i, _npc, False, (a, b), _rd, v, None, None)
    else:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=npc,
                 _alu=alu, _ra=instr.rs1, _rb=instr.rs2):
            regs = state.regs.regs
            a = regs[_ra]
            b = regs[_rb]
            v = _alu(a, b) & 0xFFFFFFFF
            if v & 0x80000000:
                v -= 0x100000000
            return _D(seq, _pc, _i, _npc, False, (a, b), None, v, None, None)

    return step


def _rec_rri(instr: Instruction, pc: int) -> StepFn:
    alu = _ALU_RRI[instr.opcode]
    npc = pc + WORD
    rd = instr.dest
    if rd is not None:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=npc,
                 _alu=alu, _ra=instr.rs1, _imm=instr.imm, _rd=rd):
            regs = state.regs.regs
            a = regs[_ra]
            v = _alu(a, _imm) & 0xFFFFFFFF
            if v & 0x80000000:
                v -= 0x100000000
            regs[_rd] = v
            return _D(seq, _pc, _i, _npc, False, (a,), _rd, v, None, None)
    else:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=npc,
                 _alu=alu, _ra=instr.rs1, _imm=instr.imm):
            regs = state.regs.regs
            a = regs[_ra]
            v = _alu(a, _imm) & 0xFFFFFFFF
            if v & 0x80000000:
                v -= 0x100000000
            return _D(seq, _pc, _i, _npc, False, (a,), None, v, None, None)

    return step


def _rec_branch(instr: Instruction, pc: int) -> StepFn:
    cond = _BRANCH_COND[instr.opcode]

    def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=pc + WORD,
             _t=instr.target, _cond=cond, _ra=instr.rs1, _rb=instr.rs2):
        regs = state.regs.regs
        a = regs[_ra]
        b = regs[_rb]
        taken = _cond(a, b)
        return _D(seq, _pc, _i, _t if taken else _npc, taken, (a, b),
                  None, None, None, None)

    return step


def _rec_lw(instr: Instruction, pc: int) -> StepFn:
    npc = pc + WORD
    rd = instr.dest
    if rd is not None:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=npc,
                 _ra=instr.rs1, _imm=instr.imm, _rd=rd):
            regs = state.regs.regs
            a = regs[_ra]
            addr = (a + _imm) & 0xFFFFFFFF
            v = state.mem.read(addr)
            regs[_rd] = v
            return _D(seq, _pc, _i, _npc, False, (a,), _rd, v, addr, None)
    else:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=npc,
                 _ra=instr.rs1, _imm=instr.imm):
            a = state.regs.regs[_ra]
            addr = (a + _imm) & 0xFFFFFFFF
            v = state.mem.read(addr)
            return _D(seq, _pc, _i, _npc, False, (a,), None, v, addr, None)

    return step


def _rec_sw(instr: Instruction, pc: int) -> StepFn:
    def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=pc + WORD,
             _ra=instr.rs1, _rb=instr.rs2, _imm=instr.imm):
        regs = state.regs.regs
        a = regs[_ra]
        b = regs[_rb]
        addr = (a + _imm) & 0xFFFFFFFF
        state.mem.write(addr, b)
        return _D(seq, _pc, _i, _npc, False, (a, b), None, b, addr, None)

    return step


def _rec_div(instr: Instruction, pc: int) -> StepFn:
    is_div = instr.opcode is Opcode.DIV
    message = f"division by zero at pc {pc:#x}"
    npc = pc + WORD
    rd = instr.dest

    def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=npc,
             _ra=instr.rs1, _rb=instr.rs2, _rd=rd, _div=is_div,
             _msg=message, _E=ExecutionError):
        regs = state.regs.regs
        a = regs[_ra]
        b = regs[_rb]
        if b == 0:
            raise _E(_msg)
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        v = (q if _div else a - q * b) & 0xFFFFFFFF
        if v & 0x80000000:
            v -= 0x100000000
        if _rd is not None:
            regs[_rd] = v
        return _D(seq, _pc, _i, _npc, False, (a, b), _rd, v, None, None)

    return step


def _rec_lui(instr: Instruction, pc: int) -> StepFn:
    value = instr.imm << 16 & _U32
    if value & _SIGN:
        value -= _WRAP
    npc = pc + WORD
    rd = instr.dest
    if rd is not None:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=npc,
                 _rd=rd, _v=value):
            state.regs.regs[_rd] = _v
            return _D(seq, _pc, _i, _npc, False, (), _rd, _v, None, None)
    else:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=npc,
                 _v=value):
            return _D(seq, _pc, _i, _npc, False, (), None, _v, None, None)

    return step


def _rec_j(instr: Instruction, pc: int) -> StepFn:
    def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _t=instr.target):
        return _D(seq, _pc, _i, _t, True, (), None, None, None, None)

    return step


def _rec_jal(instr: Instruction, pc: int) -> StepFn:
    link = pc + WORD
    rd = instr.dest
    if rd is not None:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _t=instr.target,
                 _rd=rd, _link=link):
            state.regs.regs[_rd] = _link
            return _D(seq, _pc, _i, _t, True, (), _rd, _link, None, None)
    else:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _t=instr.target,
                 _link=link):
            return _D(seq, _pc, _i, _t, True, (), None, _link, None, None)

    return step


def _rec_jalr(instr: Instruction, pc: int) -> StepFn:
    link = pc + WORD
    rd = instr.dest
    if rd is not None:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _ra=instr.rs1,
                 _rd=rd, _link=link):
            regs = state.regs.regs
            a = regs[_ra]
            regs[_rd] = _link
            return _D(seq, _pc, _i, a & 0xFFFFFFFF, True, (a,), _rd, _link,
                      None, None)
    else:

        def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _ra=instr.rs1,
                 _link=link):
            a = state.regs.regs[_ra]
            return _D(seq, _pc, _i, a & 0xFFFFFFFF, True, (a,), None, _link,
                      None, None)

    return step


def _rec_out(instr: Instruction, pc: int) -> StepFn:
    def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=pc + WORD,
             _ra=instr.rs1):
        a = state.regs.regs[_ra]
        state.output.append(a)
        return _D(seq, _pc, _i, _npc, False, (a,), None, None, None, a)

    return step


def _rec_halt(instr: Instruction, pc: int) -> StepFn:
    def step(state, seq, _D=DynInstr, _i=instr, _pc=pc):
        state.halted = True
        return _D(seq, _pc, _i, _pc, False, (), None, None, None, None)

    return step


def _rec_nop(instr: Instruction, pc: int) -> StepFn:
    def step(state, seq, _D=DynInstr, _i=instr, _pc=pc, _npc=pc + WORD):
        return _D(seq, _pc, _i, _npc, False, (), None, None, None, None)

    return step


def _compile_record(instr: Instruction, pc: int) -> StepFn:
    op = instr.opcode
    if op in (Opcode.DIV, Opcode.REM):
        return _rec_div(instr, pc)
    if op in RRR_OPS:
        return _rec_rrr(instr, pc)
    if op in RRI_OPS:
        return _rec_rri(instr, pc)
    if op in BRANCH_OPS:
        return _rec_branch(instr, pc)
    if op is Opcode.LW:
        return _rec_lw(instr, pc)
    if op is Opcode.SW:
        return _rec_sw(instr, pc)
    if op is Opcode.LUI:
        return _rec_lui(instr, pc)
    if op is Opcode.J:
        return _rec_j(instr, pc)
    if op is Opcode.JAL:
        return _rec_jal(instr, pc)
    if op is Opcode.JALR:
        return _rec_jalr(instr, pc)
    if op is Opcode.OUT:
        return _rec_out(instr, pc)
    if op is Opcode.HALT:
        return _rec_halt(instr, pc)
    return _rec_nop(instr, pc)


# ======================================================================
# Apply closures: effect-only bodies for the basic-block path.
# ======================================================================


def _noop(state: ArchState) -> None:
    return None


def _app_rrr(instr: Instruction, pc: int) -> ApplyFn:
    rd = instr.dest
    if rd is None:
        # Result discarded (rd == r0); non-div RRR ops cannot fault.
        return _noop
    alu = _ALU_RRR[instr.opcode]

    def apply(state, _alu=alu, _ra=instr.rs1, _rb=instr.rs2, _rd=rd):
        regs = state.regs.regs
        v = _alu(regs[_ra], regs[_rb]) & 0xFFFFFFFF
        if v & 0x80000000:
            v -= 0x100000000
        regs[_rd] = v

    return apply


def _app_rri(instr: Instruction, pc: int) -> ApplyFn:
    rd = instr.dest
    if rd is None:
        return _noop
    alu = _ALU_RRI[instr.opcode]

    def apply(state, _alu=alu, _ra=instr.rs1, _imm=instr.imm, _rd=rd):
        regs = state.regs.regs
        v = _alu(regs[_ra], _imm) & 0xFFFFFFFF
        if v & 0x80000000:
            v -= 0x100000000
        regs[_rd] = v

    return apply


def _app_lw(instr: Instruction, pc: int) -> ApplyFn:
    rd = instr.dest
    if rd is not None:

        def apply(state, _ra=instr.rs1, _imm=instr.imm, _rd=rd):
            regs = state.regs.regs
            addr = (regs[_ra] + _imm) & 0xFFFFFFFF
            regs[_rd] = state.mem.read(addr)
    else:

        # Loads to r0 still perform the access (alignment fault parity).
        def apply(state, _ra=instr.rs1, _imm=instr.imm):
            state.mem.read((state.regs.regs[_ra] + _imm) & 0xFFFFFFFF)

    return apply


def _app_sw(instr: Instruction, pc: int) -> ApplyFn:
    def apply(state, _ra=instr.rs1, _rb=instr.rs2, _imm=instr.imm):
        regs = state.regs.regs
        state.mem.write((regs[_ra] + _imm) & 0xFFFFFFFF, regs[_rb])

    return apply


def _app_div(instr: Instruction, pc: int) -> ApplyFn:
    is_div = instr.opcode is Opcode.DIV
    message = f"division by zero at pc {pc:#x}"
    rd = instr.dest

    def apply(state, _ra=instr.rs1, _rb=instr.rs2, _rd=rd, _div=is_div,
              _msg=message, _E=ExecutionError):
        regs = state.regs.regs
        a = regs[_ra]
        b = regs[_rb]
        if b == 0:
            raise _E(_msg)
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        v = (q if _div else a - q * b) & 0xFFFFFFFF
        if v & 0x80000000:
            v -= 0x100000000
        if _rd is not None:
            regs[_rd] = v

    return apply


def _app_lui(instr: Instruction, pc: int) -> ApplyFn:
    rd = instr.dest
    if rd is None:
        return _noop
    value = instr.imm << 16 & _U32
    if value & _SIGN:
        value -= _WRAP

    def apply(state, _rd=rd, _v=value):
        state.regs.regs[_rd] = _v

    return apply


def _app_out(instr: Instruction, pc: int) -> ApplyFn:
    def apply(state, _ra=instr.rs1):
        state.output.append(state.regs.regs[_ra])

    return apply


def _compile_apply(instr: Instruction, pc: int) -> ApplyFn:
    op = instr.opcode
    if op in (Opcode.DIV, Opcode.REM):
        return _app_div(instr, pc)
    if op in RRR_OPS:
        return _app_rrr(instr, pc)
    if op in RRI_OPS:
        return _app_rri(instr, pc)
    if op is Opcode.LW:
        return _app_lw(instr, pc)
    if op is Opcode.SW:
        return _app_sw(instr, pc)
    if op is Opcode.LUI:
        return _app_lui(instr, pc)
    if op is Opcode.OUT:
        return _app_out(instr, pc)
    if op is Opcode.NOP:
        return _noop
    raise AssertionError(f"{op} is a terminator, not a block body")


# Terminators: effect plus the next block's entry PC.


def _term_branch(instr: Instruction, pc: int) -> TermFn:
    cond = _BRANCH_COND[instr.opcode]

    def term(state, _cond=cond, _ra=instr.rs1, _rb=instr.rs2,
             _t=instr.target, _npc=pc + WORD):
        regs = state.regs.regs
        return _t if _cond(regs[_ra], regs[_rb]) else _npc

    return term


def _term_j(instr: Instruction, pc: int) -> TermFn:
    def term(state, _t=instr.target):
        return _t

    return term


def _term_jal(instr: Instruction, pc: int) -> TermFn:
    rd = instr.dest
    if rd is None:
        return _term_j(instr, pc)

    def term(state, _rd=rd, _link=pc + WORD, _t=instr.target):
        state.regs.regs[_rd] = _link
        return _t

    return term


def _term_jalr(instr: Instruction, pc: int) -> TermFn:
    rd = instr.dest
    if rd is not None:

        def term(state, _ra=instr.rs1, _rd=rd, _link=pc + WORD):
            regs = state.regs.regs
            a = regs[_ra]
            regs[_rd] = _link
            return a & 0xFFFFFFFF
    else:

        def term(state, _ra=instr.rs1):
            return state.regs.regs[_ra] & 0xFFFFFFFF

    return term


def _term_halt(instr: Instruction, pc: int) -> TermFn:
    def term(state, _pc=pc):
        state.halted = True
        return _pc

    return term


def _compile_term(instr: Instruction, pc: int) -> TermFn:
    op = instr.opcode
    if op in BRANCH_OPS:
        return _term_branch(instr, pc)
    if op is Opcode.J:
        return _term_j(instr, pc)
    if op is Opcode.JAL:
        return _term_jal(instr, pc)
    if op is Opcode.JALR:
        return _term_jalr(instr, pc)
    if op is Opcode.HALT:
        return _term_halt(instr, pc)
    raise AssertionError(f"{op} is not a terminator")


# ======================================================================
# The compiled program.
# ======================================================================

#: (body closures, terminator or None, instruction count, fall-through PC)
_Block = Tuple[Tuple[ApplyFn, ...], Optional[TermFn], int, int]


class CompiledProgram:
    """A program's static instructions compiled to specialized closures.

    ``step_funcs`` maps every valid instruction PC to its record closure;
    consumers dispatch with one dict probe and fall back to
    :func:`repro.arch.executor.execute_one` on a miss so invalid PCs
    raise exactly the interpreter's errors.  :meth:`run` executes
    effect-only basic blocks for complete functional runs.
    """

    __slots__ = ("program", "step_funcs", "_blocks", "__weakref__")

    def __init__(self, program: Program):
        self.program = program
        step_funcs: Dict[int, StepFn] = {}
        pc = TEXT_BASE
        for instr in program.instructions:
            step_funcs[pc] = _compile_record(instr, pc)
            pc += WORD
        self.step_funcs = step_funcs
        #: Basic-block chain cache, built lazily per executed entry PC.
        self._blocks: Dict[int, _Block] = {}

    @property
    def blocks_compiled(self) -> int:
        return len(self._blocks)

    def _build_block(self, pc: int) -> _Block:
        """Compile the basic block entered at ``pc``.

        Raises the interpreter's ``IndexError`` when ``pc`` is not a
        valid instruction address.  Blocks are keyed by entry PC and may
        overlap: a jump into the middle of an existing block simply
        compiles a new (shorter) block starting there.
        """
        program = self.program
        index = program.index_of(pc)
        instrs = program.instructions
        total = len(instrs)
        bodies: List[ApplyFn] = []
        term: Optional[TermFn] = None
        i = index
        while i < total:
            instr = instrs[i]
            if instr.is_control or instr.klass is InstrClass.HALT:
                term = _compile_term(instr, TEXT_BASE + i * WORD)
                i += 1
                break
            bodies.append(_compile_apply(instr, TEXT_BASE + i * WORD))
            i += 1
        block = (tuple(bodies), term, i - index, TEXT_BASE + i * WORD)
        self._blocks[pc] = block
        return block

    def run(self, state: ArchState, pc: int, budget: int) -> Tuple[int, bool]:
        """Execute until ``halt`` or ``budget`` instructions, block-wise.

        Returns ``(instructions_executed, halt_observed)``; the caller
        raises its budget-exceeded error when ``halt_observed`` is
        False.  Matches the interpreter loop exactly, including the
        degenerate cases (zero budget, a state already halted on entry —
        the interpreter still executes instructions until it observes
        ``state.halted`` after a step).
        """
        if budget <= 0:
            return 0, False
        step_funcs = self.step_funcs
        program = self.program
        if state.halted:
            # Pre-halted context: the interpreter executes exactly one
            # instruction before noticing.
            f = step_funcs.get(pc)
            if f is not None:
                f(state, 0)
            else:
                execute_one(program, state, pc, 0)
            return 1, True
        blocks = self._blocks
        blocks_get = blocks.get
        count = 0
        while count < budget:
            block = blocks_get(pc)
            if block is None:
                block = self._build_block(pc)
            bodies, term, n, fall = block
            if count + n > budget:
                # Budget lands inside this block: single-step the tail.
                while count < budget:
                    f = step_funcs.get(pc)
                    dyn = (f(state, count) if f is not None
                           else execute_one(program, state, pc, count))
                    count += 1
                    if state.halted:
                        return count, True
                    pc = dyn.next_pc
                return count, False
            for f in bodies:
                f(state)
            count += n
            if term is not None:
                pc = term(state)
                if state.halted:
                    return count, True
            else:
                pc = fall
        return count, False


# ``Program`` is an eq-comparing dataclass (unhashable), so per-program
# derived artifacts are memoized by object identity with a weakref
# finalizer for cleanup.  Artifacts are deliberately NOT stored on the
# Program instance: plain dataclasses pickle their __dict__, and
# closures are unpicklable.


def program_keyed_memo(build: Callable[[Program], object]) -> Callable[[Program], object]:
    """A per-process, identity-keyed memo of ``build(program)``.

    Programs are immutable after assembly, so anything derived purely
    from the static program (compiled step closures, timing metadata)
    stays valid for the program object's lifetime.  Entries are evicted
    by a weakref finalizer when the program is collected; a recycled
    ``id`` therefore never aliases a live entry (the stored weakref is
    re-checked against the argument anyway).

    Used by :func:`compiled_for` (functional engine) and
    :func:`repro.uarch.compiled_timing.timing_meta_for` (timing engine),
    so pool workers that simulate many jobs on one memoized program
    (:mod:`repro.eval.jobs`) pay each derivation once per process.
    """
    registry: Dict[int, Tuple["weakref.ref[Program]", object]] = {}

    def lookup(program: Program) -> object:
        key = id(program)
        entry = registry.get(key)
        if entry is not None and entry[0]() is program:
            return entry[1]
        value = build(program)

        # The dict is bound as a default so the finalizer still works
        # at interpreter shutdown, after module globals are cleared.
        def _evict(_ref: object, _key: int = key, _registry=registry) -> None:
            _registry.pop(_key, None)

        registry[key] = (weakref.ref(program, _evict), value)
        return value

    return lookup


#: The (memoized) compiled engine for a program.  Compilation is pure
#: pre-decoding: one engine per program instance is always valid.
compiled_for: Callable[[Program], CompiledProgram] = program_keyed_memo(CompiledProgram)
