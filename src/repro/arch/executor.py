"""Precise single-instruction semantics.

All arithmetic is 32-bit two's complement.  :func:`execute_one` advances
one architectural context by one instruction and returns a
:class:`DynInstr` record — the currency that flows through the entire
system (IR-detector analysis, delay buffer, timing model, fault
injection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.arch.state import ArchState
from repro.isa.instructions import Instruction, Opcode, WORD
from repro.isa.program import Program

_U32 = 0xFFFFFFFF


def wrap32(value: int) -> int:
    """Wrap to signed 32-bit two's complement."""
    value &= _U32
    return value - 0x100000000 if value & 0x80000000 else value


def _unsigned(value: int) -> int:
    return value & _U32


@dataclass(slots=True)
class DynInstr:
    """One retired dynamic instruction.

    Slotted: tens of millions are created per evaluation sweep, so the
    per-instance ``__dict__`` is worth eliminating.

    Attributes:
        seq: retirement sequence number within its stream.
        pc: byte PC of the instruction.
        instr: the static instruction.
        next_pc: PC of the next instruction in this stream's path.
        taken: branch/jump taken (False for non-control instructions).
        src_values: operand values read, in :meth:`Instruction.src_regs`
            order.
        dest_reg: destination register, or None.
        value: value written (register result or store value), or None.
        mem_addr: effective address for loads/stores, else None.
        output: value emitted by ``out``, else None.
    """

    seq: int
    pc: int
    instr: Instruction
    next_pc: int
    taken: bool = False
    src_values: Tuple[int, ...] = ()
    dest_reg: Optional[int] = None
    value: Optional[int] = None
    mem_addr: Optional[int] = None
    output: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return self.instr.is_branch

    @property
    def is_control(self) -> bool:
        return self.instr.is_control

    @property
    def is_load(self) -> bool:
        return self.instr.is_load

    @property
    def is_store(self) -> bool:
        return self.instr.is_store

    @property
    def writes_memory(self) -> bool:
        return self.instr.is_store

    @property
    def writes_register(self) -> bool:
        return self.dest_reg is not None


_ALU_RRR = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.NOR: lambda a, b: ~(a | b),
    Opcode.SLL: lambda a, b: a << (b & 31),
    Opcode.SRL: lambda a, b: _unsigned(a) >> (b & 31),
    Opcode.SRA: lambda a, b: a >> (b & 31),
    Opcode.SLT: lambda a, b: int(a < b),
    Opcode.SLTU: lambda a, b: int(_unsigned(a) < _unsigned(b)),
}

_ALU_RRI = {
    Opcode.ADDI: lambda a, imm: a + imm,
    Opcode.ANDI: lambda a, imm: a & imm,
    Opcode.ORI: lambda a, imm: a | imm,
    Opcode.XORI: lambda a, imm: a ^ imm,
    Opcode.SLLI: lambda a, imm: a << (imm & 31),
    Opcode.SRLI: lambda a, imm: _unsigned(a) >> (imm & 31),
    Opcode.SRAI: lambda a, imm: a >> (imm & 31),
    Opcode.SLTI: lambda a, imm: int(a < imm),
}

_BRANCH_COND = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
    Opcode.BLTU: lambda a, b: _unsigned(a) < _unsigned(b),
    Opcode.BGEU: lambda a, b: _unsigned(a) >= _unsigned(b),
}


class ExecutionError(Exception):
    """Raised on architecturally-invalid execution (bad PC, div by zero)."""


def execute_one(program: Program, state: ArchState, pc: int, seq: int = 0) -> DynInstr:
    """Execute the instruction at ``pc``, mutating ``state``.

    Returns the retired :class:`DynInstr`.  ``state.halted`` is set by
    ``halt``; the returned record's ``next_pc`` equals ``pc`` in that
    case so callers can treat it as a fixed point.
    """
    instr = program.at(pc)
    op = instr.opcode
    regs = state.regs
    regfile = regs.regs  # r0 is kept zero by every write path
    srcs = tuple(regfile[r] for r in instr.srcs)
    next_pc = pc + WORD
    taken = False
    dest_reg: Optional[int] = None
    value: Optional[int] = None
    mem_addr: Optional[int] = None
    output: Optional[int] = None

    alu = _ALU_RRR.get(op)
    if alu is not None:
        value = wrap32(alu(srcs[0], srcs[1]))
        dest_reg = instr.dest
    elif (alu := _ALU_RRI.get(op)) is not None:
        value = wrap32(alu(srcs[0], instr.imm))
        dest_reg = instr.dest
    elif (cond := _BRANCH_COND.get(op)) is not None:
        taken = cond(srcs[0], srcs[1])
        if taken:
            next_pc = instr.target
    elif op is Opcode.LW:
        mem_addr = wrap32(srcs[0] + instr.imm) & _U32
        value = state.mem.read(mem_addr)
        dest_reg = instr.dest
    elif op is Opcode.SW:
        mem_addr = wrap32(srcs[0] + instr.imm) & _U32
        value = srcs[1]
        state.mem.write(mem_addr, value)
    elif op in (Opcode.DIV, Opcode.REM):
        if srcs[1] == 0:
            raise ExecutionError(f"division by zero at pc {pc:#x}")
        quotient = abs(srcs[0]) // abs(srcs[1])
        if (srcs[0] < 0) != (srcs[1] < 0):
            quotient = -quotient
        remainder = srcs[0] - quotient * srcs[1]
        value = wrap32(quotient if op is Opcode.DIV else remainder)
        dest_reg = instr.dest
    elif op is Opcode.LUI:
        value = wrap32(instr.imm << 16)
        dest_reg = instr.dest
    elif op is Opcode.J:
        taken = True
        next_pc = instr.target
    elif op is Opcode.JAL:
        taken = True
        value = pc + WORD
        dest_reg = instr.dest
        next_pc = instr.target
    elif op is Opcode.JALR:
        taken = True
        value = pc + WORD
        dest_reg = instr.dest
        next_pc = srcs[0] & _U32
    elif op is Opcode.OUT:
        output = srcs[0]
        state.output.append(output)
    elif op is Opcode.HALT:
        state.halted = True
        next_pc = pc
    elif op is Opcode.NOP:
        pass
    else:  # pragma: no cover - exhaustive over Opcode
        raise ExecutionError(f"unimplemented opcode {op}")

    if dest_reg is not None and value is not None:
        regfile[dest_reg] = value
    return DynInstr(
        seq=seq,
        pc=pc,
        instr=instr,
        next_pc=next_pc,
        taken=taken,
        src_values=srcs,
        dest_reg=dest_reg,
        value=value,
        mem_addr=mem_addr,
        output=output,
    )
