"""Functional (architectural) simulator.

Runs a program to completion with precise semantics.  This is the oracle
used throughout the project:

* running workloads directly (examples, program-correctness tests);
* validating the timing simulator's retired control/data flow, exactly as
  the paper validates its detailed simulator against an independent
  functional simulator (section 4);
* providing the R-stream's authoritative execution in the slipstream
  co-simulation.

Two execution engines produce bit-identical results (asserted by
``tests/test_arch_compiled.py``):

* ``"compiled"`` (default) — pre-decoded closures from
  :mod:`repro.arch.compiled`; :meth:`FunctionalSimulator.run` executes
  whole basic blocks per dispatch and allocates no ``DynInstr`` at all.
* ``"interpreted"`` — the reference :func:`repro.arch.executor.execute_one`
  loop.  Select it globally with ``REPRO_COMPILED=0`` or per-instance
  with ``engine="interpreted"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.arch.compiled import CompiledProgram, compiled_for, resolve_engine
from repro.arch.executor import DynInstr, execute_one
from repro.arch.state import ArchState
from repro.isa.program import Program


class InstructionLimitExceeded(Exception):
    """The program did not halt within the allowed instruction budget."""


@dataclass
class RunResult:
    """Outcome of a complete functional run."""

    state: ArchState
    instruction_count: int
    output: List[int] = field(default_factory=list)

    @property
    def halted(self) -> bool:
        return self.state.halted


class FunctionalSimulator:
    """Architectural simulator for one program context.

    Use :meth:`run` for a complete run or :meth:`steps` to iterate
    retired instructions (the dynamic instruction stream).
    """

    def __init__(
        self,
        program: Program,
        max_instructions: int = 50_000_000,
        engine: Optional[str] = None,
    ):
        self.program = program
        self.max_instructions = max_instructions
        self.engine = resolve_engine(engine)
        self._compiled: Optional[CompiledProgram] = (
            compiled_for(program) if self.engine == "compiled" else None
        )

    def fresh_state(self) -> ArchState:
        return ArchState(image=self.program.data)

    def steps(self, state: Optional[ArchState] = None) -> Iterator[DynInstr]:
        """Yield retired instructions until ``halt`` or the budget runs out.

        The ``halt`` instruction itself is yielded last.
        """
        if state is None:
            state = self.fresh_state()
        pc = self.program.entry
        program = self.program
        compiled = self._compiled
        if compiled is not None:
            step_get = compiled.step_funcs.get
            for seq in range(self.max_instructions):
                f = step_get(pc)
                dyn = (f(state, seq) if f is not None
                       else execute_one(program, state, pc, seq=seq))
                yield dyn
                if state.halted:
                    return
                pc = dyn.next_pc
        else:
            for seq in range(self.max_instructions):
                dyn = execute_one(program, state, pc, seq=seq)
                yield dyn
                if state.halted:
                    return
                pc = dyn.next_pc
        raise InstructionLimitExceeded(
            f"{self.program.name} exceeded {self.max_instructions} instructions"
        )

    def run(self, state: Optional[ArchState] = None) -> RunResult:
        """Run to completion, returning final state and retire count."""
        if state is None:
            state = self.fresh_state()
        if self._compiled is not None:
            count, halted = self._compiled.run(
                state, self.program.entry, self.max_instructions
            )
            if not halted:
                raise InstructionLimitExceeded(
                    f"{self.program.name} exceeded "
                    f"{self.max_instructions} instructions"
                )
            return RunResult(
                state=state, instruction_count=count, output=state.output
            )
        count = 0
        for _ in self.steps(state):
            count += 1
        return RunResult(state=state, instruction_count=count, output=state.output)
