"""Architectural state: register file and sparse memory.

Each stream of a slipstream processor owns a full architectural context
(the OS instantiates the user program twice).  Both contexts start from
the same initial memory image; :class:`Memory` is a copy-on-write overlay
over that shared image so that instantiating the second context is free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.isa.instructions import REG_COUNT, ZERO_REG


class RegisterFile:
    """64 general-purpose registers; ``r0`` reads as zero."""

    __slots__ = ("regs",)

    def __init__(self, values: Optional[List[int]] = None):
        if values is None:
            self.regs = [0] * REG_COUNT
        else:
            if len(values) != REG_COUNT:
                raise ValueError(f"need {REG_COUNT} values, got {len(values)}")
            self.regs = list(values)
        self.regs[ZERO_REG] = 0

    def read(self, reg: int) -> int:
        return self.regs[reg]

    def write(self, reg: int, value: int) -> None:
        if reg != ZERO_REG:
            self.regs[reg] = value

    def copy(self) -> "RegisterFile":
        return RegisterFile(self.regs)

    def copy_from(self, other: "RegisterFile") -> None:
        """Overwrite all registers from another file (recovery)."""
        self.regs[:] = other.regs
        self.regs[ZERO_REG] = 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RegisterFile) and self.regs == other.regs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {i: v for i, v in enumerate(self.regs) if v}
        return f"RegisterFile({nonzero})"


class Memory:
    """Sparse, word-granular memory as a copy-on-write overlay.

    Reads consult the private write overlay first, then the shared
    read-only image, and default to zero.  Addresses are byte addresses
    and must be word-aligned.
    """

    __slots__ = ("image", "writes")

    def __init__(self, image: Optional[Dict[int, int]] = None):
        self.image: Dict[int, int] = image if image is not None else {}
        self.writes: Dict[int, int] = {}

    def read(self, addr: int) -> int:
        self._check(addr)
        if addr in self.writes:
            return self.writes[addr]
        return self.image.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self._check(addr)
        self.writes[addr] = value

    @staticmethod
    def _check(addr: int) -> None:
        if addr % 4:
            raise ValueError(f"unaligned memory access at {addr:#x}")
        if addr < 0:
            raise ValueError(f"negative memory address {addr:#x}")

    def fork(self) -> "Memory":
        """A new memory sharing this memory's image, with copied writes."""
        forked = Memory(self.image)
        forked.writes = dict(self.writes)
        return forked

    def touched(self) -> Set[int]:
        """Addresses ever written through this overlay."""
        return set(self.writes)

    def differing_addresses(self, other: "Memory") -> Set[int]:
        """Addresses at which this memory and ``other`` disagree.

        Only addresses written in either overlay can differ (the image is
        shared), so this is cheap.  Used by recovery-sufficiency audits.
        """
        candidates = sorted(set(self.writes) | set(other.writes))
        return {a for a in candidates if self.read(a) != other.read(a)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Memory({len(self.writes)} dirty words)"


class ArchState:
    """One architectural context: registers + memory + program output."""

    __slots__ = ("regs", "mem", "output", "halted")

    def __init__(self, image: Optional[Dict[int, int]] = None):
        self.regs = RegisterFile()
        self.mem = Memory(image)
        self.output: List[int] = []
        self.halted = False

    def fork(self) -> "ArchState":
        """Clone the context (second process instantiation)."""
        forked = ArchState.__new__(ArchState)
        forked.regs = self.regs.copy()
        forked.mem = self.mem.fork()
        forked.output = list(self.output)
        forked.halted = self.halted
        return forked
