"""The slipstream core: the paper's contribution.

Four new components wrap around two conventional cores (Figure 1):

* :mod:`repro.core.ir_predictor` — the instruction-removal predictor:
  the trace predictor extended with per-trace instruction-removal bit
  vectors (ir-vecs), removal-kind metadata, and a resetting confidence
  counter.
* :mod:`repro.core.ir_detector` — monitors the retired R-stream,
  builds per-trace reverse dataflow graphs (R-DFGs) over an operand
  rename table, detects unreferenced writes (WW), non-modifying writes
  (SV) and branches (BR), back-propagates removal through dependence
  chains, and emits {trace-id, ir-vec} training pairs.
* :mod:`repro.core.delay_buffer` — the FIFO that carries the A-stream's
  control and data flow outcomes to the R-stream, with finite capacity
  and timestamp-coupled backpressure.
* :mod:`repro.core.recovery` — the recovery controller tracking the
  memory addresses needed to repair the A-stream's context from the
  R-stream's after an IR-misprediction.

:mod:`repro.core.slipstream` co-simulates the A-stream and R-stream and
is the top-level model for the CMP(2x64x4) configuration.
"""

from repro.core.removal import RemovalKind, removal_category
from repro.core.ir_predictor import IRPredictor, IRPredictorConfig, RemovalPrediction
from repro.core.ir_detector import IRDetector, TraceAnalysis
from repro.core.delay_buffer import DelayBuffer
from repro.core.recovery import RecoveryController
from repro.core.slipstream import SlipstreamProcessor, SlipstreamConfig, SlipstreamResult
from repro.core.pc_ir_predictor import PCIRPredictor, PCIRPredictorConfig
from repro.core.modes import OperatingMode, run_mode, reliable_config
from repro.core.smt import smt_partition, smt_slipstream_config

__all__ = [
    "RemovalKind",
    "removal_category",
    "IRPredictor",
    "IRPredictorConfig",
    "RemovalPrediction",
    "IRDetector",
    "TraceAnalysis",
    "DelayBuffer",
    "RecoveryController",
    "SlipstreamProcessor",
    "SlipstreamConfig",
    "SlipstreamResult",
    "PCIRPredictor",
    "PCIRPredictorConfig",
    "OperatingMode",
    "run_mode",
    "reliable_config",
    "smt_partition",
    "smt_slipstream_config",
]
