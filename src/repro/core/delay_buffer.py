"""Delay buffer: the A-stream → R-stream outcome FIFO (paper, §2.2).

The buffer carries a complete control-flow history ({trace-id, ir-vec}
pairs) and a partial data-flow history (operand values and addresses of
the instructions the A-stream actually executed).  It is finite — 256
instruction entries in Table 2 — so a far-ahead A-stream stalls until
the R-stream consumes.

The co-simulation couples the two streams through *timestamps* instead
of a cycle-synchronous loop: a push records the A-stream cycle its
outcomes became available, and is delayed (backpressure) until enough
older entries have pop timestamps that free the required space.
Because a push only ever depends on strictly older pops, and the driver
interleaves trace-by-trace (push trace *i*, pop trace *i*, push trace
*i+1*, …), all timestamps resolve in one forward pass (DESIGN.md,
"Timestamp-coupled delay buffer").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class DelayBufferError(Exception):
    """Protocol misuse (pop without push, oversized trace, ...)."""


class _Group:
    """One pushed outcome group: entry count plus its pop timestamp."""

    __slots__ = ("count", "pop_cycle")

    def __init__(self, count: int):
        self.count = count
        #: None until the R-stream consumes the group.
        self.pop_cycle: Optional[int] = None


class DelayBuffer:
    """Timestamp-coupled bounded FIFO of per-trace outcome groups."""

    def __init__(self, capacity: int = 256, transfer_latency: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.transfer_latency = transfer_latency
        self._groups: Deque[_Group] = deque()
        #: The not-yet-popped suffix of ``_groups``, oldest first.  Pops
        #: are marked FIFO and :meth:`push` only ever drops groups that
        #: are already popped, so the head of this deque is exactly the
        #: oldest unpopped group — an O(1) :meth:`mark_popped` instead of
        #: a linear scan over all outstanding groups.
        self._unpopped: Deque[_Group] = deque()
        self._occupancy = 0
        self.pushes = 0
        self.backpressure_events = 0
        self.max_occupancy = 0

    @property
    def occupancy(self) -> int:
        return self._occupancy

    def push(self, entry_count: int, produce_cycle: int) -> int:
        """Push one trace's outcome group.

        ``entry_count`` is the number of instruction entries the group
        occupies (the A-stream's executed instructions; at least one
        slot for the control-flow record).  Returns the cycle at which
        the push completes — later than ``produce_cycle`` if the
        A-stream had to wait for the R-stream to drain.
        """
        if entry_count < 1:
            entry_count = 1
        if entry_count > self.capacity:
            raise DelayBufferError(
                f"group of {entry_count} exceeds capacity {self.capacity}"
            )
        cycle = produce_cycle
        stalled = False
        while self._occupancy + entry_count > self.capacity:
            group = self._groups[0]
            if group.pop_cycle is None:
                raise DelayBufferError(
                    "backpressure on a group the R-stream has not consumed; "
                    "the driver must interleave pushes and pops"
                )
            self._groups.popleft()
            self._occupancy -= group.count
            if group.pop_cycle > cycle:
                cycle = group.pop_cycle
                stalled = True
        if stalled:
            self.backpressure_events += 1
        group = _Group(entry_count)
        self._groups.append(group)
        self._unpopped.append(group)
        self._occupancy += entry_count
        if self._occupancy > self.max_occupancy:
            self.max_occupancy = self._occupancy
        self.pushes += 1
        return cycle

    def mark_popped(self, pop_cycle: int) -> None:
        """Record the R-stream's consumption of the oldest unpopped group."""
        if not self._unpopped:
            raise DelayBufferError("no unpopped group to mark")
        self._unpopped.popleft().pop_cycle = pop_cycle

    def flush(self) -> None:
        """Discard all contents (IR-misprediction recovery)."""
        self._groups.clear()
        self._unpopped.clear()
        self._occupancy = 0

    def snapshot(self) -> dict:
        """Observability tallies (:mod:`repro.obs`)."""
        return {
            "pushes": self.pushes,
            "backpressure_events": self.backpressure_events,
            "max_occupancy": self.max_occupancy,
        }
