"""Instruction-removal detector (paper, section 2.1.2, Figure 3).

The IR-detector monitors the R-stream as it retires instructions.
Retired instructions and values construct per-trace reverse dataflow
graphs over an operand rename table, and three triggering conditions
select instructions for removal:

* unreferenced writes (WW),
* non-modifying writes (SV),
* branch instructions (BR — all conditional branches are candidates;
  the IR-predictor's confidence counter makes the final decision).

Selection back-propagates to producers whose consumers are all known
(value killed) and all selected.  The analysis scope is
``scope_traces`` (8) traces: back-propagation is confined to a single
trace, but value-kill detection spans the whole scope.  When a trace
becomes the oldest in the scope it retires: its instruction-removal bit
vector (ir-vec) is formed from the selected nodes and handed to the
IR-predictor.

The in-stream analysis is exact — WW/SV/propagation facts are true of
the observed dynamic instance; the *speculation* lies in predicting
that future instances of the trace behave identically.

``triggers`` restricts the trigger set; passing ``{"BR"}`` reproduces
the paper's branch-only removal experiment (Figure 8, bottom), where
ineffectual writes are not candidates and propagation flows only from
branches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, FrozenSet, Iterable, List, Tuple

from repro.core.rdfg import RDFGNode, kill, select
from repro.core.removal import RemovalKind
from repro.core.rename_table import Entry, OperandRenameTable
from repro.isa.instructions import InstrClass
from repro.trace.selection import CompletedTrace
from repro.trace.trace_id import TraceId

DEFAULT_SCOPE_TRACES = 8
ALL_TRIGGERS = frozenset({"BR", "WW", "SV"})

#: The rename table accepts any hashable operand key.  The detector
#: encodes operands as ints — register number for registers, address
#: offset past 2^32 for memory — instead of ``("r", n)``/``("m", a)``
#: tuples: int keys allocate nothing for registers and hash in one
#: operation, and this loop touches every retired instruction's
#: operands.  Addresses are < 2^32 (wrap32), so the spaces are disjoint.
_MEM_BASE = 1 << 32

#: Instruction classes that must never be removed: indirect jumps steer
#: control through dynamic targets, OUT is architectural program output,
#: HALT terminates the program.
_NEVER_REMOVABLE = (InstrClass.JUMP_INDIRECT, InstrClass.OUT, InstrClass.HALT)


@dataclass
class TraceAnalysis:
    """The detector's verdict for one retired trace."""

    trace_seq: int
    trace_id: TraceId
    ir_vec: Tuple[bool, ...]
    kinds: Tuple[RemovalKind, ...]
    #: Per-instruction PCs (used by the per-instruction IR mechanism).
    pcs: Tuple[int, ...] = ()

    @property
    def removed_count(self) -> int:
        return sum(self.ir_vec)


class _ScopedTrace:
    __slots__ = ("seq", "trace_id", "nodes", "touched", "pcs")

    def __init__(self, seq: int, trace_id: TraceId, nodes: List[RDFGNode]):
        self.seq = seq
        self.trace_id = trace_id
        self.nodes = nodes
        self.touched: List[int] = []
        self.pcs: List[int] = []


class IRDetector:
    """Monitors retired R-stream traces and emits removal analyses."""

    def __init__(
        self,
        scope_traces: int = DEFAULT_SCOPE_TRACES,
        triggers: Iterable[str] = ALL_TRIGGERS,
    ):
        if scope_traces < 1:
            raise ValueError("scope must hold at least one trace")
        self.scope_traces = scope_traces
        self.triggers: FrozenSet[str] = frozenset(triggers)
        unknown = self.triggers - ALL_TRIGGERS
        if unknown:
            raise ValueError(f"unknown triggers: {sorted(unknown)}")
        self._table = OperandRenameTable()
        self._scope: Deque[_ScopedTrace] = deque()
        self._next_seq = 0
        #: Observability tallies (:mod:`repro.obs`): retired analyses
        #: and total instructions they selected for removal.
        self.analyses = 0
        self.selected_total = 0
        # Trigger membership hoisted out of the per-instruction path.
        self._br_trigger = "BR" in self.triggers
        self._ww_trigger = "WW" in self.triggers
        self._sv_trigger = "SV" in self.triggers

    # ------------------------------------------------------------------

    def feed_trace(self, trace: CompletedTrace) -> List[TraceAnalysis]:
        """Merge one retired trace; returns analyses of traces that left
        the scope as a result (usually zero or one).

        The per-instruction merge logic (formerly ``_merge``/``_write``
        helpers) is inlined with hoisted locals: this loop runs once per
        retired R-stream instruction and dominated the detector's
        profile as method calls.
        """
        seq = self._next_seq
        self._next_seq += 1
        scoped = _ScopedTrace(seq, trace.trace_id, [])
        self._scope.append(scoped)
        nodes_append = scoped.nodes.append
        pcs_append = scoped.pcs.append
        touched_append = scoped.touched.append
        # The rename-table read/write protocol is inlined against the
        # entry dict (same semantics as OperandRenameTable.read/write,
        # which documents it): per-operand method calls and
        # WriteOutcome allocations dominated this loop's profile.
        entries = self._table._entries
        entries_get = entries.get
        entry_cls = Entry
        br_trigger = self._br_trigger
        ww_trigger = self._ww_trigger
        sv_trigger = self._sv_trigger
        node_cls = RDFGNode
        never = _NEVER_REMOVABLE
        br_kind = RemovalKind.BR
        sv_kind = RemovalKind.SV
        mem_base = _MEM_BASE
        index = 0
        for dyn in trace.instructions:
            instr = dyn.instr
            node = node_cls(seq, index, removable=instr.klass not in never)
            index += 1
            nodes_append(node)
            pcs_append(dyn.pc)
            mem_addr = dyn.mem_addr
            # Source operands: establish producer connections and ref
            # bits (``connect`` inlined: same-trace edges only, else an
            # external reference disqualifying back-propagation).
            for reg in instr.srcs:
                if reg:
                    entry = entries_get(reg)
                    if entry is not None:
                        entry.ref = True
                        producer = entry.producer
                        if producer.trace_seq == seq:
                            producer.consumers.append(node)
                            node.producers.append(producer)
                        else:
                            producer.external_ref = True
            if instr.is_load and mem_addr is not None:
                entry = entries_get(mem_addr + mem_base)
                if entry is not None:
                    entry.ref = True
                    producer = entry.producer
                    if producer.trace_seq == seq:
                        producer.consumers.append(node)
                        node.producers.append(producer)
                    else:
                        producer.external_ref = True

            # Trigger: branch instructions are always selected at merge.
            if br_trigger and instr.is_branch:
                select(node, br_kind)

            # Destination operand: SV/WW detection and value kills.
            if instr.is_store and mem_addr is not None:
                operand = mem_addr + mem_base
            elif dyn.dest_reg is not None and dyn.value is not None:
                operand = dyn.dest_reg
            else:
                continue
            value = dyn.value
            entry = entries_get(operand)
            if entry is not None:
                if sv_trigger and entry.value == value:
                    # Non-modifying write: select; the old producer
                    # remains the live producer of the location (but the
                    # write refreshes the entry's scope lifetime).
                    entry.last_write_seq = seq
                    select(node, sv_kind)
                else:
                    killed = entry.producer
                    unreferenced = not entry.ref
                    entries[operand] = entry_cls(value, node)
                    kill(killed, unreferenced and ww_trigger)
            else:
                entries[operand] = entry_cls(value, node)
            touched_append(operand)
        retired: List[TraceAnalysis] = []
        while len(self._scope) > self.scope_traces:
            retired.append(self._retire_oldest())
        return retired

    def drain(self) -> List[TraceAnalysis]:
        """Retire every trace still in the scope (end of program)."""
        retired = []
        while self._scope:
            retired.append(self._retire_oldest())
        return retired

    # ------------------------------------------------------------------

    def _retire_oldest(self) -> TraceAnalysis:
        scoped = self._scope.popleft()
        for operand in scoped.touched:
            self._table.invalidate_if_stale(operand, scoped.seq)
        ir_vec = tuple(n.selected for n in scoped.nodes)
        kinds = tuple(n.kind for n in scoped.nodes)
        self.analyses += 1
        self.selected_total += sum(ir_vec)
        return TraceAnalysis(scoped.seq, scoped.trace_id, ir_vec, kinds,
                             tuple(scoped.pcs))

    def snapshot(self) -> dict:
        """Observability tallies (:mod:`repro.obs`)."""
        return {
            "analyses": self.analyses,
            "selected_total": self.selected_total,
        }
