"""Instruction-removal predictor (paper, section 2.1.1).

The IR-predictor is the trace predictor with three pieces of
information added to each prediction-table entry:

1. an instruction-removal bit vector (ir-vec) naming the instructions
   of the predicted trace to skip in the A-stream;
2. intermediate program-counter values — in this model the A-stream
   front end derives chunk-skip points from the surviving instructions'
   PC contiguity, so the information is implicit rather than stored
   (see :meth:`repro.core.slipstream.SlipstreamProcessor._schedule_a_trace`);
3. a single resetting confidence counter: incremented when a newly
   computed {trace-id, ir-vec} pair from the IR-detector matches the
   pair stored at the entry being updated, reset to zero (and the new
   pair stored) otherwise.  Removal applies only at or above
   ``confidence_threshold``.

Keeping this state *on the predictor entries* (rather than in a
side-table keyed by trace id) is essential to the paper's safety story:
an entry whose path context is unstable keeps flipping its stored
{trace-id, ir-vec} pair, so its confidence never saturates and no
instructions are removed along unreliable paths.  Conversely it also
reproduces the paper's §2.1.3 pathology — unrelated unstable patterns
dilute the single per-trace counter.

Training timing: the detector's analysis of trace *n* arrives when the
trace leaves the 8-trace scope, several traces after the predictor's
path update for *n*.  The IR-predictor therefore queues the table
entries touched by each path update and trains removal state on them
when the matching analysis arrives (FIFO — analyses retire in feed
order).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, NamedTuple, Optional, Tuple

from repro.core.ir_detector import TraceAnalysis
from repro.core.removal import RemovalKind
from repro.trace.predictor import Entry, TracePredictor, TracePredictorConfig
from repro.trace.trace_id import TraceId


@dataclass(frozen=True)
class IRPredictorConfig:
    """Sizing and policy knobs (paper, Table 2)."""

    confidence_threshold: int = 32
    trace_predictor: TracePredictorConfig = field(default_factory=TracePredictorConfig)


class RemovalPrediction(NamedTuple):
    """A confident removal decision for one predicted trace."""

    ir_vec: Tuple[bool, ...]
    kinds: Tuple[RemovalKind, ...]


class Prediction(NamedTuple):
    """One front-end prediction: the next trace and its removal info."""

    trace_id: Optional[TraceId]
    removal: Optional[RemovalPrediction]


class IRPredictor:
    """Trace predictor + per-entry instruction-removal state."""

    def __init__(self, config: Optional[IRPredictorConfig] = None):
        self.config = config or IRPredictorConfig()
        self.trace_predictor = TracePredictor(self.config.trace_predictor)
        #: Entries touched by each path update, awaiting their
        #: detector analysis (FIFO, aligned with detector feed order).
        self._pending: Deque[Tuple[TraceId, Entry, Entry]] = deque()
        self.trainings = 0
        self.confidence_resets = 0
        #: Observability tallies (:mod:`repro.obs`): predictions issued,
        #: and how many carried a confident removal decision.
        self.predictions = 0
        self.removal_predictions = 0

    # ------------------------------------------------------------------
    # Front-end interface (A-stream).
    # ------------------------------------------------------------------

    def predict(self) -> Prediction:
        """Predict the next trace id and its removal decision.

        The removal information comes from the *same table entry* that
        produced the trace prediction, and applies only when that
        entry's stored removal pair matches the predicted trace and has
        reached the confidence threshold.
        """
        self.predictions += 1
        lookup = self.trace_predictor.lookup()
        if lookup.trace_id is None or lookup.entry is None:
            return Prediction(None, None)
        entry = lookup.entry
        removal: Optional[RemovalPrediction] = None
        if (
            entry.removal_tid == lookup.trace_id
            and entry.ir_vec is not None
            and entry.confidence >= self.config.confidence_threshold
            and any(entry.ir_vec)
        ):
            removal = RemovalPrediction(entry.ir_vec, entry.kinds)
            self.removal_predictions += 1
        return Prediction(lookup.trace_id, removal)

    def update_path(self, actual: TraceId) -> None:
        """Shift the actual (verified) trace into the path history and
        queue the touched entries for removal training."""
        correlated, simple = self.trace_predictor.update(actual)
        self._pending.append((actual, correlated, simple))

    # ------------------------------------------------------------------
    # Training interface (IR-detector).
    # ------------------------------------------------------------------

    def train_removal(self, analysis: TraceAnalysis) -> None:
        """Feed one computed {trace-id, ir-vec} pair from the detector.

        Analyses arrive in feed order; each consumes the oldest queued
        path update, which must be for the same trace id.
        """
        self.trainings += 1
        if not self._pending:
            return
        tid, correlated, simple = self._pending.popleft()
        if tid != analysis.trace_id:
            # Should not happen (FIFO alignment); drop defensively.
            return
        for entry in (correlated, simple):
            self._train_entry(entry, analysis)

    def _train_entry(self, entry: Entry, analysis: TraceAnalysis) -> None:
        if (
            entry.removal_tid == analysis.trace_id
            and entry.ir_vec == analysis.ir_vec
        ):
            entry.confidence += 1
            return
        if entry.ir_vec is not None:
            self.confidence_resets += 1
        entry.removal_tid = analysis.trace_id
        entry.ir_vec = analysis.ir_vec
        entry.kinds = analysis.kinds
        entry.confidence = 0

    # ------------------------------------------------------------------
    # Recovery interface.
    # ------------------------------------------------------------------

    def history_snapshot(self):
        return self.trace_predictor.history_snapshot()

    def snapshot(self) -> dict:
        """Observability tallies (:mod:`repro.obs`)."""
        return {
            "predictions": self.predictions,
            "removal_predictions": self.removal_predictions,
            "trainings": self.trainings,
            "confidence_resets": self.confidence_resets,
        }

    def restore_history(self, snapshot) -> None:
        """Back the predictor up to a precise point (recovery)."""
        self.trace_predictor.restore_history(snapshot)
