"""Operating modes of the multi-context chip (paper, sections 1 and 7).

The paper's larger agenda is a CMP/SMT chip whose second context can be
flexibly redeployed: "high job throughput and parallel-program
performance (conventional SMT/CMP), improved single-program performance
and reliability (slipstreaming), or fully-reliable operation with
little or no impact on single-program performance (AR-SMT / SRT)."

This module generalizes those hardcoded two-context modes into a
declarative N-stream framework.  A mode is a :class:`RedundancyMode`
spec — stream count, per-stream config transform, comparison/vote
policy, recovery policy — and :func:`run_mode` dispatches on the spec
instead of on a hand-written if-ladder.  Registered modes:

* ``THROUGHPUT`` — independent programs on independent cores; maximum
  job throughput, no redundancy.
* ``SLIPSTREAM`` — the paper's A/R pair: partial redundancy,
  single-program speedup, partial fault coverage, rollback recovery.
* ``RELIABLE`` — AR-SMT-style full redundancy (removal disabled): every
  instruction redundantly executed and compared.
* ``TMR`` — Elzar-style triple modular redundancy
  (:class:`repro.core.nstream.TMRProcessor`): three full streams,
  majority voting at retirement, single-stream strikes masked at the
  voter with no rollback.  Accepts an ``n_streams`` override (any odd
  count >= 3).
* ``REPLAY`` — RepTFD-style replay-window detection
  (:class:`repro.core.nstream.ReplayWindowProcessor`): one primary
  stream plus a detector re-executing suspected windows against a
  trailing shadow context.
* ``DECORRELATED`` — the slipstream pair with DME-style shifted data
  address spaces and rotated register assignments, undone at
  comparison time (:func:`decorrelated_config`).  Functionally
  identical to slipstream on clean runs; under fault injection,
  layout-correlated strikes (``FaultSite.CORRELATED``) can no longer
  produce identically-wrong values that silently agree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.nstream import ReplayWindowProcessor, TMRProcessor
from repro.core.slipstream import (
    SlipstreamConfig,
    SlipstreamProcessor,
    SlipstreamResult,
)
from repro.isa.program import Program
from repro.uarch.config import CoreConfig, SS_64x4
from repro.uarch.core import CoreRunResult, SuperscalarCore


class OperatingMode(enum.Enum):
    THROUGHPUT = "throughput"
    SLIPSTREAM = "slipstream"
    RELIABLE = "reliable"
    TMR = "tmr"
    REPLAY = "replay"
    DECORRELATED = "decorrelated"


class ModeError(ValueError):
    """Structured mode-dispatch error.

    Carries the offending mode name, the number of programs supplied,
    and a human-oriented hint, so callers (CLI, serve codec) can build
    precise diagnostics instead of parsing message strings.
    """

    def __init__(self, mode: str, n_programs: int, hint: str):
        self.mode = mode
        self.n_programs = n_programs
        self.hint = hint
        super().__init__(f"mode {mode!r} with {n_programs} program(s): {hint}")


@dataclass
class ModeResult:
    """Outcome of running the chip in one mode."""

    mode: OperatingMode
    #: Total retired instructions across all program copies counted
    #: once per *distinct* program (redundant copies are not work).
    useful_instructions: int
    cycles: int
    #: Redundancy factor: fraction of useful instructions redundantly
    #: executed/validated (0..1 for the pairwise modes; ``n - 1`` for
    #: TMR, whose extra copies are full re-executions).
    redundancy: float
    core_results: List[object]

    @property
    def throughput_ipc(self) -> float:
        return self.useful_instructions / self.cycles if self.cycles else 0.0


def reliable_config(base: Optional[SlipstreamConfig] = None) -> SlipstreamConfig:
    """AR-SMT: the slipstream machine with instruction removal disabled."""
    return replace(base or SlipstreamConfig(), removal_triggers=())


def static_hint_config(base: Optional[SlipstreamConfig] = None) -> SlipstreamConfig:
    """Slipstream with the static-analysis hints enabled: the per-PC
    removal table is pre-warmed with the abstract interpreter's proven
    facts (:mod:`repro.analysis.ceiling`) before execution."""
    return replace(base or SlipstreamConfig(), static_hints=True)


def decorrelated_config(
    base: Optional[SlipstreamConfig] = None,
) -> SlipstreamConfig:
    """Slipstream with DME-style decorrelated contexts.

    The two streams use shifted data address spaces and rotated
    register assignments, undone by translation hardware at comparison
    time — clean-run behaviour is identical, but the translation adds
    one cycle to every delay-buffer transfer, and layout-correlated
    faults flip *different logical bits* in the two contexts (see
    ``FaultSite.CORRELATED`` in :mod:`repro.fault.injector`).
    """
    cfg = base or SlipstreamConfig()
    return replace(
        cfg,
        decorrelated=True,
        transfer_latency=cfg.transfer_latency + 1,
    )


@dataclass(frozen=True)
class RedundancyMode:
    """Declarative spec of one redundancy mode.

    ``compare`` names the result-validation policy (``pairwise`` delay
    buffer comparison, ``vote`` majority voting, ``replay`` window
    re-execution, ``none``); ``recover`` the repair policy
    (``rollback`` flush + context restore, ``mask`` in-place minority
    repair, ``replay`` rollback-to-shadow, ``none``).

    ``campaign_sites`` lists the :class:`repro.fault.injector.FaultSite`
    *values* this mode's fault campaign exercises (plain strings to
    keep the core layer free of a fault-layer import).

    ``config_transform`` maps a base :class:`SlipstreamConfig` to this
    mode's effective config; it is excluded from equality/fingerprints
    (callables are identity, not value) — mode identity is the name.
    """

    name: str
    n_streams: int
    compare: str
    recover: str
    description: str
    campaign_sites: Tuple[str, ...] = ()
    allows_n_override: bool = False
    config_transform: Optional[
        Callable[[Optional[SlipstreamConfig]], SlipstreamConfig]
    ] = field(default=None, compare=False, repr=False)

    def transformed_config(
        self, base: Optional[SlipstreamConfig] = None
    ) -> SlipstreamConfig:
        if self.config_transform is not None:
            return self.config_transform(base)
        return base or SlipstreamConfig()


REDUNDANCY_MODES: Dict[str, RedundancyMode] = {
    spec.name: spec
    for spec in (
        RedundancyMode(
            name="throughput",
            n_streams=1,
            compare="none",
            recover="none",
            description="independent programs, no redundancy",
        ),
        RedundancyMode(
            name="slipstream",
            n_streams=2,
            compare="pairwise",
            recover="rollback",
            description="A/R pair, partial redundancy, rollback recovery",
            campaign_sites=("a_result", "r_transient", "r_arch"),
        ),
        RedundancyMode(
            name="reliable",
            n_streams=2,
            compare="pairwise",
            recover="rollback",
            description="AR-SMT full redundancy (removal disabled)",
            campaign_sites=("a_result", "r_transient", "r_arch"),
            config_transform=reliable_config,
        ),
        RedundancyMode(
            name="tmr",
            n_streams=3,
            compare="vote",
            recover="mask",
            description="triple modular redundancy, majority vote, "
            "no-rollback masking",
            campaign_sites=("r_transient", "r_arch"),
            allows_n_override=True,
        ),
        RedundancyMode(
            name="replay",
            n_streams=1,
            compare="replay",
            recover="replay",
            description="primary stream + replay-window detector",
            campaign_sites=("r_transient", "r_arch"),
        ),
        RedundancyMode(
            name="decorrelated",
            n_streams=2,
            compare="pairwise",
            recover="rollback",
            description="slipstream with DME-decorrelated contexts",
            campaign_sites=("a_result", "r_transient", "r_arch", "correlated"),
            config_transform=decorrelated_config,
        ),
    )
}

#: Modes the fault campaign can sweep (`--modes all`).
CAMPAIGN_MODES: Tuple[str, ...] = ("slipstream", "tmr", "replay", "decorrelated")


def resolve_mode(mode: Union[OperatingMode, str]) -> RedundancyMode:
    """Look up the :class:`RedundancyMode` spec for a mode name/enum."""
    name = mode.value if isinstance(mode, OperatingMode) else str(mode)
    spec = REDUNDANCY_MODES.get(name)
    if spec is None:
        raise ModeError(
            name, 0, f"unknown mode; known modes: {sorted(REDUNDANCY_MODES)}"
        )
    return spec


def run_mode(
    mode: Union[OperatingMode, str],
    programs: Sequence[Program],
    core: CoreConfig = SS_64x4,
    config: Optional[SlipstreamConfig] = None,
    n_streams: Optional[int] = None,
) -> ModeResult:
    """Run the chip in the requested mode.

    ``THROUGHPUT`` takes one or two programs (two cores, one each); all
    redundancy modes take exactly one program (every context runs it).
    ``n_streams`` overrides the spec's stream count for modes that
    allow it (TMR: any odd count >= 3).
    """
    spec = resolve_mode(mode)
    op_mode = OperatingMode(spec.name)
    streams = spec.n_streams
    if n_streams is not None:
        if not spec.allows_n_override:
            raise ModeError(
                spec.name, len(programs),
                f"mode is fixed at {spec.n_streams} stream(s); "
                "n_streams override not supported",
            )
        if n_streams < 3 or n_streams % 2 == 0:
            raise ModeError(
                spec.name, len(programs),
                "n_streams must be an odd count of at least 3",
            )
        streams = n_streams

    if op_mode is OperatingMode.THROUGHPUT:
        if not 1 <= len(programs) <= 2:
            raise ModeError(
                spec.name, len(programs),
                "throughput mode takes one or two programs",
            )
        results: List[CoreRunResult] = [
            SuperscalarCore(core, program).run() for program in programs
        ]
        return ModeResult(
            mode=op_mode,
            useful_instructions=sum(r.retired for r in results),
            cycles=max(r.cycles for r in results),
            redundancy=0.0,
            core_results=results,
        )

    if len(programs) != 1:
        raise ModeError(
            spec.name, len(programs),
            f"{spec.name} mode takes exactly one program",
        )
    program = programs[0]

    if op_mode is OperatingMode.TMR:
        base = SuperscalarCore(core, program).run()
        tmr = TMRProcessor(
            program, n_streams=streams, base_cycles=base.cycles
        ).run()
        return ModeResult(
            mode=op_mode,
            useful_instructions=tmr.retired,
            cycles=tmr.cycles,
            redundancy=float(streams - 1),
            core_results=[base, tmr],
        )

    if op_mode is OperatingMode.REPLAY:
        base = SuperscalarCore(core, program).run()
        rep = ReplayWindowProcessor(program, base_cycles=base.cycles).run()
        redundancy = (
            rep.replayed_instructions / rep.retired if rep.retired else 0.0
        )
        return ModeResult(
            mode=op_mode,
            useful_instructions=rep.retired,
            cycles=rep.cycles,
            redundancy=min(redundancy, 1.0),
            core_results=[base, rep],
        )

    slip_config = spec.transformed_config(config)
    result: SlipstreamResult = SlipstreamProcessor(program, slip_config).run()
    redundancy = result.a_executed / result.retired if result.retired else 0.0
    return ModeResult(
        mode=op_mode,
        useful_instructions=result.retired,
        cycles=result.cycles,
        redundancy=min(redundancy, 1.0),
        core_results=[result],
    )
