"""Operating modes of the two-context chip (paper, sections 1 and 7).

The paper's larger agenda is a CMP/SMT chip whose second context can be
flexibly redeployed: "high job throughput and parallel-program
performance (conventional SMT/CMP), improved single-program performance
and reliability (slipstreaming), or fully-reliable operation with
little or no impact on single-program performance (AR-SMT / SRT)."

This module packages those three modes over the same two-core
substrate:

* ``THROUGHPUT`` — the two cores run two independent programs; the
  chip maximises job throughput and provides no redundancy.
* ``SLIPSTREAM`` — the default slipstream configuration: one program,
  partial redundancy, single-program speedup, partial fault coverage.
* ``RELIABLE`` — AR-SMT-style full redundancy: instruction removal is
  disabled (empty trigger set), so the A-stream executes the complete
  program and *every* instruction is redundantly executed and
  compared.  Fault coverage of pipeline transients is complete (at the
  cost of the slipstream speedup); the delay buffer still feeds the
  R-stream perfect predictions, so the overhead over a single core is
  small — the AR-SMT observation the paper builds on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.slipstream import (
    SlipstreamConfig,
    SlipstreamProcessor,
    SlipstreamResult,
)
from repro.isa.program import Program
from repro.uarch.config import CoreConfig, SS_64x4
from repro.uarch.core import CoreRunResult, SuperscalarCore


class OperatingMode(enum.Enum):
    THROUGHPUT = "throughput"
    SLIPSTREAM = "slipstream"
    RELIABLE = "reliable"


@dataclass
class ModeResult:
    """Outcome of running the chip in one mode."""

    mode: OperatingMode
    #: Total retired instructions across all program copies counted
    #: once per *distinct* program (redundant copies are not work).
    useful_instructions: int
    cycles: int
    #: Fraction of useful instructions redundantly executed/validated.
    redundancy: float
    core_results: List[object]

    @property
    def throughput_ipc(self) -> float:
        return self.useful_instructions / self.cycles if self.cycles else 0.0


def reliable_config(base: Optional[SlipstreamConfig] = None) -> SlipstreamConfig:
    """AR-SMT: the slipstream machine with instruction removal disabled."""
    return replace(base or SlipstreamConfig(), removal_triggers=())


def static_hint_config(base: Optional[SlipstreamConfig] = None) -> SlipstreamConfig:
    """Slipstream with the static-analysis hints enabled: the per-PC
    removal table is pre-warmed with the abstract interpreter's proven
    facts (:mod:`repro.analysis.ceiling`) before execution."""
    return replace(base or SlipstreamConfig(), static_hints=True)


def run_mode(
    mode: OperatingMode,
    programs: Sequence[Program],
    core: CoreConfig = SS_64x4,
    config: Optional[SlipstreamConfig] = None,
) -> ModeResult:
    """Run the two-context chip in the requested mode.

    ``THROUGHPUT`` takes one or two programs (two cores, one each);
    ``SLIPSTREAM`` and ``RELIABLE`` take exactly one program (both
    contexts run it).
    """
    if mode is OperatingMode.THROUGHPUT:
        if not 1 <= len(programs) <= 2:
            raise ValueError("throughput mode takes one or two programs")
        results: List[CoreRunResult] = [
            SuperscalarCore(core, program).run() for program in programs
        ]
        return ModeResult(
            mode=mode,
            useful_instructions=sum(r.retired for r in results),
            cycles=max(r.cycles for r in results),
            redundancy=0.0,
            core_results=results,
        )

    if len(programs) != 1:
        raise ValueError(f"{mode.value} mode takes exactly one program")
    program = programs[0]
    if mode is OperatingMode.RELIABLE:
        slip_config = reliable_config(config)
    else:
        slip_config = config or SlipstreamConfig()
    result: SlipstreamResult = SlipstreamProcessor(program, slip_config).run()
    redundancy = result.a_executed / result.retired if result.retired else 0.0
    return ModeResult(
        mode=mode,
        useful_instructions=result.retired,
        cycles=result.cycles,
        redundancy=min(redundancy, 1.0),
        core_results=[result],
    )
