"""N-stream redundancy engines beyond the paper's A/R pair.

The slipstream A/R pair is one point in the redundancy design space.
This module implements two other points over the same ISA/arch
substrate, both driven through the declarative
:class:`repro.core.modes.RedundancyMode` framework and the existing
fault campaign:

* :class:`TMRProcessor` — Elzar-style triple modular redundancy.
  ``n_streams`` full architectural contexts execute the program in
  lockstep; at each retirement the streams' results are majority-voted
  on ``(value, mem_addr, taken, next_pc, output)``.  A minority stream
  is *repaired in place* from a majority stream (register file copy +
  differing memory words), so a single-stream strike is masked at the
  voter without any rollback or re-execution — the defining TMR
  property the campaign classifies as ``MASKED_BY_VOTE``.

* :class:`ReplayWindowProcessor` — RepTFD-style replay checking.  A
  single primary stream runs at full speed, recording retired
  instructions per fixed-size window.  A detector keeps a *shadow
  context* one window behind; suspected windows (every
  ``scrub_interval``-th window, plus any window that traps) are
  re-executed from the shadow and compared instruction-by-instruction.
  A mismatch rolls the primary back to the replayed (clean)
  continuation; windows that are not replayed fast-forward the shadow
  by applying the recorded writes — which is exactly how a fault in an
  unchecked window *escapes*.  Replay drain and rollback latencies are
  charged on top of the baseline core's cycle count, giving the
  detection-latency/IPC-cost trade-off against the delay-buffer
  design.

Both engines accept the same ``fault_hook`` protocol as
:class:`repro.core.slipstream.SlipstreamProcessor` (the hook is only
ever offered stream label ``"R"``, on the first/primary stream — the
campaign's single-fault model strikes one replica).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.arch.executor import DynInstr, ExecutionError, execute_one
from repro.arch.state import ArchState
from repro.core.recovery import RecoveryCost
from repro.core.slipstream import FaultHook, SimulationError
from repro.isa.program import Program

#: Matches SlipstreamConfig.max_instructions' default budget.
DEFAULT_MAX_INSTRUCTIONS = 50_000_000

#: Cycles to drain/compare one replayed window (RepTFD's checker drain).
REPLAY_WINDOW_DRAIN = 8

#: Default replay-checking window geometry: 64-instruction windows,
#: every 4th window scrubbed (25% replay duty cycle).
REPLAY_WINDOW_LENGTH = 64
REPLAY_SCRUB_INTERVAL = 4

#: Sentinel vote signature for a stream whose execution trapped.
_TRAP = ("trap",)


@dataclass
class NStreamResult:
    """Outcome of one N-stream (TMR or replay-window) run.

    ``detections`` counts vote disagreements (TMR) or replay mismatches
    (replay-window); ``recoveries`` logs ``(retired_at, latency)`` per
    repair/rollback, in the same shape as
    :class:`repro.core.slipstream.SlipstreamResult` so the campaign's
    detection-latency accounting applies unchanged.
    """

    mode: str
    n_streams: int
    retired: int
    cycles: int
    output: List[int] = field(default_factory=list)
    detections: int = 0
    recoveries: List[Tuple[int, int]] = field(default_factory=list)
    #: Replay-window accounting (zero for TMR).
    windows: int = 0
    replayed_windows: int = 0
    replayed_instructions: int = 0

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0


def _signature(dyn: DynInstr) -> tuple:
    return (dyn.value, dyn.mem_addr, dyn.taken, dyn.next_pc, dyn.output)


def _repair_state(broken: ArchState, good: ArchState) -> int:
    """Overwrite ``broken`` from ``good``; returns the number of
    differing memory words (the repair's memory-restore cost)."""
    differing = broken.mem.differing_addresses(good.mem)
    broken.regs.copy_from(good.regs)
    for addr in differing:
        broken.mem.write(addr, good.mem.read(addr))
    broken.output[:] = good.output
    broken.halted = good.halted
    return len(differing)


class TMRProcessor:
    """Lockstep N-modular redundancy with majority voting at retirement.

    ``base_cycles`` anchors the timing model: the voted machine retires
    at the baseline superscalar core's rate (all replicas run the same
    schedule in lockstep), plus the latency of each minority repair.
    When omitted, one cycle per retirement is charged (functional-only
    callers).
    """

    def __init__(
        self,
        program: Program,
        n_streams: int = 3,
        fault_hook: Optional[FaultHook] = None,
        base_cycles: Optional[int] = None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ):
        if n_streams < 3 or n_streams % 2 == 0:
            raise ValueError("TMR needs an odd stream count of at least 3")
        self.program = program
        self.n_streams = n_streams
        self.fault_hook = fault_hook
        self.base_cycles = base_cycles
        self.max_instructions = max_instructions

    def run(self) -> NStreamResult:
        program = self.program
        hook = self.fault_hook
        majority_needed = self.n_streams // 2 + 1
        states = [ArchState(image=program.data) for _ in range(self.n_streams)]
        pc = program.entry
        retired = 0
        detections = 0
        recoveries: List[Tuple[int, int]] = []
        extra_cycles = 0
        output: List[int] = []
        halted = False
        while not halted:
            if retired >= self.max_instructions:
                raise SimulationError(
                    f"TMR run exceeded {self.max_instructions} instructions"
                )
            signatures: List[tuple] = []
            for index, state in enumerate(states):
                try:
                    dyn = execute_one(program, state, pc, seq=retired)
                except (ExecutionError, ValueError, IndexError):
                    signatures.append(_TRAP)
                    continue
                if index == 0 and hook is not None:
                    # The campaign's single-fault model strikes one
                    # replica; the voter sees every replica's result
                    # (compared=True) before retirement commits.
                    dyn = hook("R", dyn, state, True)
                signatures.append(_signature(dyn))
            tally: dict = {}
            for sig in signatures:
                tally[sig] = tally.get(sig, 0) + 1
            voted_sig, votes = max(tally.items(), key=lambda item: item[1])
            if votes < majority_needed or voted_sig is _TRAP:
                raise SimulationError(
                    f"no majority among {self.n_streams} streams at pc {pc:#x}"
                )
            voted_index = signatures.index(voted_sig)
            voted_state = states[voted_index]
            retired += 1
            minority = [
                i for i, sig in enumerate(signatures) if sig != voted_sig
            ]
            if minority:
                detections += 1
                for index in minority:
                    differing = _repair_state(states[index], voted_state)
                    latency = RecoveryCost(memory_locations=differing).latency
                    recoveries.append((retired, latency))
                    extra_cycles += latency
            if voted_sig[4] is not None:
                output.append(voted_sig[4])
            pc = voted_sig[3]
            halted = voted_state.halted
        base = self.base_cycles if self.base_cycles is not None else retired
        return NStreamResult(
            mode="tmr",
            n_streams=self.n_streams,
            retired=retired,
            cycles=base + extra_cycles,
            output=output,
            detections=detections,
            recoveries=recoveries,
        )


class ReplayWindowProcessor:
    """Single primary stream + replay-window detector (RepTFD).

    The primary executes windows of ``window_len`` instructions,
    recording each retirement.  A shadow context trails one window
    behind.  Every ``scrub_interval``-th window — and any window whose
    primary execution traps — is *replayed* from the shadow and
    compared against the recording; a mismatch is a detection, and the
    primary rolls back to the replay's (clean) continuation.  Windows
    that are not replayed fast-forward the shadow by applying the
    recorded architectural writes, corrupted or not — the coverage hole
    this mode trades for its low steady-state cost.
    """

    def __init__(
        self,
        program: Program,
        window_len: int = REPLAY_WINDOW_LENGTH,
        scrub_interval: int = REPLAY_SCRUB_INTERVAL,
        fault_hook: Optional[FaultHook] = None,
        base_cycles: Optional[int] = None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ):
        if window_len < 1:
            raise ValueError("window_len must be positive")
        if scrub_interval < 1:
            raise ValueError("scrub_interval must be positive")
        self.program = program
        self.window_len = window_len
        self.scrub_interval = scrub_interval
        self.fault_hook = fault_hook
        self.base_cycles = base_cycles
        self.max_instructions = max_instructions

    def run(self) -> NStreamResult:
        program = self.program
        hook = self.fault_hook
        primary = ArchState(image=program.data)
        shadow = primary.fork()
        pc = program.entry
        retired = 0
        seq = 0
        detections = 0
        recoveries: List[Tuple[int, int]] = []
        windows = 0
        replayed_windows = 0
        replayed_instructions = 0
        extra_cycles = 0
        last_trap: Optional[Tuple[int, int]] = None
        while not primary.halted:
            window_start_pc = pc
            recorded: List[DynInstr] = []
            trapped = False
            while len(recorded) < self.window_len and not primary.halted:
                if retired >= self.max_instructions:
                    raise SimulationError(
                        f"replay run exceeded {self.max_instructions} "
                        "instructions"
                    )
                try:
                    dyn = execute_one(program, primary, pc, seq=seq)
                except (ExecutionError, ValueError, IndexError):
                    trapped = True
                    break
                seq += 1
                retired += 1
                if hook is not None:
                    # compared=False: the primary retires unvalidated;
                    # only a later replay can catch the corruption.
                    dyn = hook("R", dyn, primary, False)
                recorded.append(dyn)
                pc = dyn.next_pc
            if trapped:
                # A trap with no retirement progress since the last trap
                # means the replayed continuation traps too: the machine
                # is wedged (possible only with an injected fault).
                if last_trap == (retired, pc):
                    raise SimulationError(
                        f"replay machine wedged at pc {pc:#x}"
                    )
                last_trap = (retired, pc)
            windows += 1
            replay_this = trapped or (windows - 1) % self.scrub_interval == 0
            if replay_this:
                replayed_windows += 1
                rstate, rpc, mismatch, executed = self._replay(
                    recorded, window_start_pc, shadow
                )
                replayed_instructions += executed
                if mismatch or trapped:
                    detections += 1
                    differing = primary.mem.differing_addresses(rstate.mem)
                    latency = (
                        RecoveryCost(memory_locations=len(differing)).latency
                        + REPLAY_WINDOW_DRAIN
                    )
                    recoveries.append((retired, latency))
                    extra_cycles += latency
                    primary = rstate
                    pc = rpc
                else:
                    extra_cycles += REPLAY_WINDOW_DRAIN
                shadow = primary.fork()
            elif recorded:
                self._fast_forward(shadow, recorded)
        base = self.base_cycles if self.base_cycles is not None else retired
        return NStreamResult(
            mode="replay",
            n_streams=1,
            retired=retired,
            cycles=base + extra_cycles,
            output=list(primary.output),
            detections=detections,
            recoveries=recoveries,
            windows=windows,
            replayed_windows=replayed_windows,
            replayed_instructions=replayed_instructions,
        )

    def _replay(
        self,
        recorded: List[DynInstr],
        start_pc: int,
        shadow: ArchState,
    ) -> Tuple[ArchState, int, bool, int]:
        """Re-execute one window from the shadow context.

        Compares each re-executed instruction against the recording
        until the first mismatch; after a divergence the replay simply
        follows its own (correct) path for the remaining instruction
        budget so the caller gets a clean continuation state.
        """
        rstate = shadow.fork()
        rpc = start_pc
        mismatch = False
        executed = 0
        for dyn in recorded:
            if rstate.halted:
                break
            try:
                rdyn = execute_one(self.program, rstate, rpc, seq=dyn.seq)
            except (ExecutionError, ValueError, IndexError):
                # The clean context cannot trap on a clean program; a
                # trap here means the recording led us astray.
                mismatch = True
                break
            executed += 1
            if not mismatch and _signature(rdyn) != _signature(dyn):
                mismatch = True
            rpc = rdyn.next_pc
        return rstate, rpc, mismatch, executed

    @staticmethod
    def _fast_forward(shadow: ArchState, recorded: List[DynInstr]) -> None:
        """Advance the shadow by applying the recorded writes verbatim
        (corrupted values included — unchecked windows are trusted)."""
        for dyn in recorded:
            if dyn.is_store and dyn.mem_addr is not None and dyn.value is not None:
                shadow.mem.write(dyn.mem_addr, dyn.value)
            elif dyn.dest_reg is not None and dyn.value is not None:
                shadow.regs.write(dyn.dest_reg, dyn.value)
            if dyn.output is not None:
                shadow.output.append(dyn.output)
            if dyn.next_pc == dyn.pc and not dyn.is_branch:
                shadow.halted = True
