"""Per-instruction (non-trace-based) instruction-removal predictor.

The paper's section 2.1.3 diagnoses two pathologies of trace-based
removal — unrelated unstable patterns dilute the single per-trace
confidence counter, and unstable traces never saturate it — and
sketches the mechanism the authors were "currently developing":

1. confidence is measured for instructions individually, so unrelated
   instructions do not dilute confidence;
2. traces are not used [for the removal decision], so trace stability
   is not an issue;
3. chains are not confined within a small region;
4. dependence chains tend to be removed together even though
   per-instruction confidence counters are used.

This module implements that mechanism: a PC-indexed table of resetting
confidence counters, trained from the IR-detector's per-instruction
verdicts.  An instruction's counter increments when its dynamic
instance was selected for removal (and, for branches, its predicted
outcome was also correct — otherwise per-instruction confidence would
happily saturate on *every* branch, since the detector selects all of
them); any non-selected or mispredicted instance resets the counter.

The risk the paper notes — removing a producer but not its consumer —
is real here: the per-PC counters of a chain usually saturate together
(point 4), but nothing *guarantees* it, so this mechanism trades a few
more IR-mispredictions for substantially more removal on benchmarks
with unstable traces (gcc is the paper's predicted beneficiary; the
``benchmarks/test_ext_pc_ir.py`` bench tests that prediction).

Select it with ``SlipstreamConfig(removal_mechanism="pc")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.removal import RemovalKind


class _PCEntry:
    __slots__ = ("confidence", "kind", "pinned")

    def __init__(self) -> None:
        self.confidence = 0
        self.kind = RemovalKind.NONE
        #: Statically-proven entries never reset (see :meth:`seed`).
        self.pinned = False


@dataclass(frozen=True)
class PCIRPredictorConfig:
    """Per-instruction mechanism knobs."""

    confidence_threshold: int = 32


class PCIRPredictor:
    """PC-indexed resetting confidence counters for removal decisions.

    The table is keyed by static PC; programs are finite, so no
    capacity management is needed (a hardware implementation would use
    a tagged, set-associative structure).
    """

    def __init__(self, config: PCIRPredictorConfig = PCIRPredictorConfig()):
        self.config = config
        self._table: Dict[int, _PCEntry] = {}
        self.trainings = 0
        self.resets = 0

    # ------------------------------------------------------------------
    # Front-end interface.
    # ------------------------------------------------------------------

    def removable(self, pc: int) -> bool:
        """True if this static instruction's removal is confident."""
        entry = self._table.get(pc)
        return (
            entry is not None
            and entry.confidence >= self.config.confidence_threshold
        )

    def kind_of(self, pc: int) -> RemovalKind:
        entry = self._table.get(pc)
        return entry.kind if entry is not None else RemovalKind.NONE

    # ------------------------------------------------------------------
    # Training interface (per retired R-stream instruction).
    # ------------------------------------------------------------------

    def train(self, pc: int, selected: bool, kind: RemovalKind,
              branch_ok: bool = True) -> None:
        """Feed one dynamic instance's detector verdict.

        ``branch_ok`` is False when the instance is a branch whose
        predicted outcome was wrong — such instances must reset the
        counter even though the detector nominally selects every
        branch.
        """
        self.trainings += 1
        entry = self._table.get(pc)
        if entry is None:
            entry = _PCEntry()
            self._table[pc] = entry
        if selected and branch_ok:
            entry.confidence += 1
            if kind != RemovalKind.NONE:
                entry.kind = kind
        elif not entry.pinned:
            if entry.confidence:
                self.resets += 1
            entry.confidence = 0

    def seed(self, pc: int, kind: RemovalKind) -> None:
        """Pre-warm a PC from a statically-proven fact.

        The entry starts at the confidence threshold (confident from the
        first dynamic instance) and is *pinned*: a static proof holds in
        every execution, so dynamic non-selection — which for a sound
        detector can only be a detector limitation, never a
        counter-example — must not reset it.
        """
        entry = self._table.get(pc)
        if entry is None:
            entry = _PCEntry()
            self._table[pc] = entry
        entry.confidence = max(entry.confidence,
                               self.config.confidence_threshold)
        if kind != RemovalKind.NONE:
            entry.kind = kind
        entry.pinned = True

    # ------------------------------------------------------------------

    @property
    def seeded_pcs(self) -> int:
        return sum(1 for e in self._table.values() if e.pinned)

    @property
    def confident_pcs(self) -> int:
        threshold = self.config.confidence_threshold
        return sum(1 for e in self._table.values() if e.confidence >= threshold)
