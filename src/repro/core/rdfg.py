"""Per-trace reverse dataflow graph (R-DFG) with back-propagation.

Each trace in the IR-detector's scope owns an R-DFG over its own
instructions.  Edges connect consumers to producers *within the same
trace only* (paper: "If the producer is not in the same trace, no
connection is made"); consumption from another trace merely marks the
producer as externally referenced, which disqualifies it from
back-propagated removal.

Selection rules:

* a node is selected directly by a trigger (BR at merge, SV at merge,
  WW at kill);
* a killed, unselected node with at least one consumer, all consumers
  in the same trace and all selected, is selected with
  ``PROPAGATED | union(consumer base flags)``.

Selection cascades: selecting a node may complete the conditions for
its producers.
"""

from __future__ import annotations

from typing import List

from repro.core.removal import RemovalKind

_BASE_FLAGS = RemovalKind.BR | RemovalKind.WW | RemovalKind.SV


class RDFGNode:
    """One instruction in a trace's R-DFG."""

    __slots__ = (
        "trace_seq",
        "index",
        "producers",
        "consumers",
        "killed",
        "selected",
        "kind",
        "external_ref",
        "removable",
    )

    def __init__(self, trace_seq: int, index: int, removable: bool = True):
        self.trace_seq = trace_seq
        self.index = index
        self.producers: List["RDFGNode"] = []
        self.consumers: List["RDFGNode"] = []
        self.killed = False
        self.selected = False
        self.kind = RemovalKind.NONE
        self.external_ref = False
        #: Instructions that must never be removed (indirect jumps,
        #: program output, halt) regardless of dataflow.
        self.removable = removable


def connect(producer: RDFGNode, consumer: RDFGNode) -> None:
    """Record a dependence; same-trace edges only, else external ref."""
    if producer.trace_seq == consumer.trace_seq:
        producer.consumers.append(consumer)
        consumer.producers.append(producer)
    else:
        producer.external_ref = True


def select(node: RDFGNode, kind: RemovalKind) -> bool:
    """Select a node for removal; cascades to its producers.

    Returns True if the node was newly selected.
    """
    if node.selected or not node.removable:
        return False
    node.selected = True
    node.kind = kind
    for producer in node.producers:
        try_propagate(producer)
    return True


def kill(node: RDFGNode, unreferenced: bool) -> None:
    """The node's value has been overwritten; all consumers are known.

    An unreferenced kill is the WW trigger; otherwise the node may now
    satisfy the back-propagation condition.
    """
    node.killed = True
    if unreferenced and not node.selected:
        select(node, RemovalKind.WW)
    else:
        try_propagate(node)


def try_propagate(node: RDFGNode) -> None:
    """Select the node if killed, unselected, and all consumers (same
    trace, at least one) are selected."""
    if node.selected or not node.killed or node.external_ref or not node.removable:
        return
    if not node.consumers:
        return
    inherited = RemovalKind.NONE
    for consumer in node.consumers:
        if not consumer.selected:
            return
        inherited |= consumer.kind & _BASE_FLAGS
    select(node, RemovalKind.PROPAGATED | inherited)
