"""Recovery controller (paper, sections 2 and 2.3, Figure 4).

Maintains the set of memory addresses at which the A-stream's context
may differ from the R-stream's, so that an IR-misprediction can be
repaired by copying only those locations (plus the whole register
file).  Two kinds of tracked stores:

* **undo** ("store 1") — a store retired by the A-stream whose
  companion has not yet retired in the R-stream.  If recovery strikes,
  the A-stream's store must be undone from the R-stream's value.
* **do** ("store 2") — a store skipped by the A-stream, tracked from
  its R-stream retirement until the IR-detector verifies the enclosing
  trace's ir-vec.  If recovery strikes first, the store must be done in
  the A-stream by copying from the R-stream.

Tracking is reference-counted per address (only unique addresses
matter, but multiple in-flight stores to one address must not untrack
it early).  The recovery latency model follows Table 2: 5 cycles of
pipeline start-up, then 4 register restores per cycle (all 64 general
registers), then 4 memory restores per cycle — a 21-cycle minimum.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set

RECOVERY_STARTUP_CYCLES = 5
REGISTER_COUNT_RESTORED = 64
RESTORES_PER_CYCLE = 4


@dataclass
class RecoveryCost:
    """Latency breakdown of one recovery/repair action.

    ``registers`` is the number of registers restored — the full
    64-entry file for the paper's A/R rollback, but N-stream repair
    policies (:mod:`repro.core.nstream`) may restore a different count.
    """

    memory_locations: int
    registers: int = REGISTER_COUNT_RESTORED

    @property
    def latency(self) -> int:
        register_cycles = -(-self.registers // RESTORES_PER_CYCLE)
        memory_cycles = -(-self.memory_locations // RESTORES_PER_CYCLE)
        return RECOVERY_STARTUP_CYCLES + register_cycles + memory_cycles


#: Minimum recovery latency: 5 + 64/4 = 21 cycles (paper, Table 2).
MIN_RECOVERY_LATENCY = RecoveryCost(0).latency


class RecoveryController:
    """Tracks potentially-divergent memory addresses."""

    def __init__(self) -> None:
        self._undo: Dict[int, int] = defaultdict(int)
        self._do: Dict[int, int] = defaultdict(int)
        #: do-tracked addresses grouped by the trace that skipped them,
        #: released when the IR-detector verifies that trace.
        self._do_by_trace: Dict[int, List[int]] = defaultdict(list)
        self.max_outstanding = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    # Normal-operation bookkeeping.
    # ------------------------------------------------------------------

    def track_undo(self, addr: int) -> None:
        """A-stream retired a store (Figure 4, "add store 1")."""
        self._undo[addr] += 1
        self._note_size()

    def untrack_undo(self, addr: int) -> None:
        """R-stream retired the companion store ("remove store 1")."""
        count = self._undo.get(addr, 0)
        if count <= 1:
            self._undo.pop(addr, None)
        else:
            self._undo[addr] = count - 1

    def track_do(self, addr: int, trace_seq: int) -> None:
        """R-stream retired a store the A-stream skipped ("add store 2")."""
        self._do[addr] += 1
        self._do_by_trace[trace_seq].append(addr)
        self._note_size()

    def release_verified_trace(self, trace_seq: int) -> None:
        """IR-detector verified a trace's ir-vec ("remove store 2")."""
        for addr in self._do_by_trace.pop(trace_seq, ()):
            count = self._do.get(addr, 0)
            if count <= 1:
                self._do.pop(addr, None)
            else:
                self._do[addr] = count - 1

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def tracked_addresses(self) -> Set[int]:
        """All addresses that must be restored on an IR-misprediction."""
        return set(self._undo) | set(self._do)

    def recover(self) -> RecoveryCost:
        """Perform the accounting side of a recovery: returns the cost
        and clears all tracking (the contexts are equal afterwards)."""
        cost = RecoveryCost(memory_locations=len(self.tracked_addresses()))
        self._undo.clear()
        self._do.clear()
        self._do_by_trace.clear()
        self.recoveries += 1
        return cost

    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._undo) + len(self._do)

    def _note_size(self) -> None:
        size = self.outstanding
        if size > self.max_outstanding:
            self.max_outstanding = size

    def snapshot(self) -> Dict[str, int]:
        """Observability tallies (:mod:`repro.obs`)."""
        return {
            "recoveries": self.recoveries,
            "max_outstanding": self.max_outstanding,
            "outstanding": self.outstanding,
        }
