"""Removal-kind taxonomy (paper, Figure 8).

Instructions are selected for removal by one of three *triggers* —

* ``BR`` — branch instructions (always candidates; the per-trace
  confidence counter makes the actual decision),
* ``WW`` — a write followed by a write to the same location with no
  intervening reference (dynamic dead code),
* ``SV`` — writing the same value a location already holds
  (non-modifying write),

— or by *back-propagation* (``P:`` categories): an instruction whose
value is killed, all of whose consumers are in the same trace and all
selected, inherits the union of its consumers' BR/WW/SV status.

Accounting follows the paper: WW and SV tend to occur simultaneously
and priority is given to SV.
"""

from __future__ import annotations

import enum


class RemovalKind(enum.IntFlag):
    """Bit flags describing why an instruction was selected."""

    NONE = 0
    BR = 1
    WW = 2
    SV = 4
    #: Set when the selection came from back-propagation rather than a
    #: direct trigger.
    PROPAGATED = 8


#: Display order of Figure 8's stack categories (bottom to top in the
#: paper's bars: BR, WW, SV, then propagated combinations).
CATEGORIES = (
    "BR",
    "WW",
    "SV",
    "P: BR",
    "P: WW",
    "P: SV",
    "P: WW,BR",
    "P: SV,BR",
    "P: SV,WW",
    "P: SV,WW,BR",
)


def _category_of(kind: RemovalKind) -> str:
    flags = []
    if kind & RemovalKind.SV:
        flags.append("SV")
    if kind & RemovalKind.WW:
        flags.append("WW")
    if kind & RemovalKind.BR:
        flags.append("BR")
    if kind & RemovalKind.PROPAGATED:
        return "P: " + ",".join(flags)
    # Direct triggers: single label, SV priority over WW.
    if "SV" in flags:
        return "SV"
    if "WW" in flags:
        return "WW"
    return "BR"


#: Precomputed category label for every flag combination (the mapping is
#: consulted once per removed dynamic instruction — a hot path).
_CATEGORY_LUT = {
    kind: _category_of(RemovalKind(kind))
    for kind in range(1, int(RemovalKind.BR | RemovalKind.WW
                             | RemovalKind.SV | RemovalKind.PROPAGATED) + 1)
}


def removal_category(kind: RemovalKind) -> str:
    """Map a kind bitmask onto its Figure 8 category label.

    Direct triggers report a single label with SV given priority over
    WW (paper, section 5); propagated selections report the full flag
    combination.
    """
    try:
        return _CATEGORY_LUT[int(kind)]
    except KeyError:
        raise ValueError("no removal flags set") from None
