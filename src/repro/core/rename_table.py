"""Operand rename table (paper, Figure 3).

Similar to a register renamer but tracking *both* registers and memory
addresses.  Each live entry records the most recent producer of a
location, the value it wrote, and whether the value has been referenced.
It performs the data-dependence checks needed to merge instructions
into R-DFGs and detects the two ineffectual-write triggers:

* **non-modifying write (SV)** — the new value equals the entry's value;
* **unreferenced write (WW)** — the old producer is overwritten with its
  ref bit still clear.

The table is agnostic to the operand encoding: any hashable key works,
as long as register and memory keys cannot collide.  The readable
``("r", reg)``/``("m", addr)`` tuples (the :func:`reg_operand` /
:func:`mem_operand` helpers) are one such encoding; the IR-detector's
hot path uses disjoint integer ranges instead, which allocate nothing
and hash faster.  Entries are invalidated when their producer's trace
leaves the IR-detector's analysis scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

Operand = Hashable


def reg_operand(reg: int) -> Tuple[str, int]:
    return ("r", reg)


def mem_operand(addr: int) -> Tuple[str, int]:
    return ("m", addr)


class Entry:
    """One rename-table entry: {valid, ref, value, producer}.

    Validity is represented by presence in the table.  ``producer`` is
    the R-DFG node of the live producer.  ``last_write_seq`` is the
    trace of the most recent write *including non-modifying writes*:
    an entry is invalidated only when its last writer leaves the
    analysis scope, so a location kept fresh by an ongoing stream of
    silent writes stays tracked (its live producer may be older than
    the scope — selection decisions for that producer have already been
    emitted, which is exactly the paper's scope limitation).
    """

    __slots__ = ("value", "producer", "ref", "last_write_seq")

    def __init__(self, value: int, producer) -> None:
        self.value = value
        self.producer = producer
        self.ref = False
        self.last_write_seq = producer.trace_seq if producer is not None else 0


@dataclass
class WriteOutcome:
    """Result of recording a write.

    ``silent`` — the write was non-modifying (SV trigger; the old
    producer remains live).
    ``killed`` — the old producer node whose value this write
    overwrote, or None.
    ``killed_unreferenced`` — the killed producer's ref bit was clear
    (WW trigger).
    """

    silent: bool = False
    killed: Optional[object] = None
    killed_unreferenced: bool = False


#: Shared immutable-by-convention outcomes for the two cases that carry
#: no per-write payload; one write per dynamic instruction makes the
#: allocation measurable.  Callers only ever read outcome fields.
_SILENT_OUTCOME = WriteOutcome(silent=True)
_FRESH_OUTCOME = WriteOutcome()


class OperandRenameTable:
    """Tracks the most recent producer of every live location."""

    def __init__(self) -> None:
        self._entries: Dict[Operand, Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def read(self, operand: Operand):
        """Record a read; returns the live producer node or None.

        Sets the entry's ref bit (the value has been used).
        """
        entry = self._entries.get(operand)
        if entry is None:
            return None
        entry.ref = True
        return entry.producer

    def peek_value(self, operand: Operand) -> Optional[int]:
        entry = self._entries.get(operand)
        return entry.value if entry is not None else None

    def write(
        self, operand: Operand, value: int, producer, detect_silent: bool = True
    ) -> WriteOutcome:
        """Record a write; detects SV/WW triggers and kills old values.

        On a non-modifying write the table is left unchanged — the old
        producer remains live (paper, section 2.1.2).  With
        ``detect_silent=False`` (branch-only removal mode) equal values
        still replace the producer.
        """
        entry = self._entries.get(operand)
        if entry is not None:
            if detect_silent and entry.value == value:
                entry.last_write_seq = producer.trace_seq
                return _SILENT_OUTCOME
            outcome = WriteOutcome(
                killed=entry.producer, killed_unreferenced=not entry.ref
            )
            self._entries[operand] = Entry(value, producer)
            return outcome
        self._entries[operand] = Entry(value, producer)
        return _FRESH_OUTCOME

    def invalidate_if_stale(self, operand: Operand, trace_seq: int) -> None:
        """Drop the entry if its most recent writer belongs to the trace
        leaving the analysis scope (no newer write refreshed it)."""
        entry = self._entries.get(operand)
        if entry is not None and entry.last_write_seq == trace_seq:
            del self._entries[operand]
