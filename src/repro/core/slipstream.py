"""The slipstream processor: A-stream / R-stream co-simulation.

Implements the CMP(2x64x4) model of Figure 1: two conventional cores,
the leading **A-stream** running the speculatively-reduced program and
the trailing **R-stream** running the full program, connected by the
delay buffer, IR-predictor, IR-detector and recovery controller.

Co-simulation proceeds trace by trace:

1.  **A-phase** — the IR-predictor predicts the next trace (the trace
    predictor supplies the id; the removal table supplies a confident
    ir-vec, if any).  The A-stream fetches along the predicted path,
    skipping removed instructions, executing the rest against its own
    architectural context, and detecting *conventional* mispredictions
    at branches it executes.  Executed instructions are scheduled on
    the A-core's timing model with chunk-skipping fetch; outcomes are
    pushed into the delay buffer (with capacity backpressure).

2.  **R-phase** — the R-stream pops the outcome group and executes its
    own, architecturally-correct path, using the A-stream's branch
    outcomes to direct fetch and its operand values as value
    predictions (delay-buffer arrival replaces producer-completion in
    the timing model).  Every redundantly-executed instruction is
    compared; every removed branch's presumed outcome is checked; any
    mismatch is an **IR-misprediction** (or a transient fault — the
    two are indistinguishable, section 3).  Retired R-stream traces
    feed the IR-detector, whose retiring analyses train the
    IR-predictor, verify predicted ir-vecs (early IR-misprediction
    detection) and release recovery-controller store tracking.

3.  **Recovery** — on an IR-misprediction the R-core flushes (a
    redirect), the A-stream's register file is copied from the
    R-stream's and the tracked memory locations restored, the delay
    buffer is flushed, and the A-stream restarts at the R-stream's PC
    after the paper's recovery latency (21-cycle minimum).

The model is honest about corruption: an erroneous removal really does
corrupt the A-stream's context, which then really does run down wrong
paths until the R-stream's redundant computation exposes it.  A
recovery *audit* (enabled by default) verifies the paper's claim that
the recovery controller's tracked address set suffices to repair the
A-stream's memory; any shortfall is repaired (keeping the simulation
sound) and counted, and tests assert the count is zero.

IPC is retired R-stream instructions (the full program, counted once)
divided by the cycles for **both** streams to complete (section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.compiled import compiled_for, resolve_engine
from repro.arch.executor import DynInstr, ExecutionError, execute_one
from repro.arch.state import ArchState
from repro.fingerprint import fingerprint as _config_fingerprint
from repro.core.delay_buffer import DelayBuffer
from repro.core.ir_detector import IRDetector, TraceAnalysis
from repro.core.ir_predictor import IRPredictor, IRPredictorConfig, RemovalPrediction
from repro.core.pc_ir_predictor import PCIRPredictor, PCIRPredictorConfig
from repro.core.recovery import RecoveryController
from repro.core.removal import RemovalKind, removal_category
from repro.isa.instructions import InstrClass, WORD
from repro.isa.program import Program, TEXT_BASE
from repro.obs.session import Observability
from repro.trace.predictor import TracePredictorConfig
from repro.trace.selection import (
    CompletedTrace,
    PredictedStep,
    StaticTraceWalker,
    TraceExpansionError,
    TRACE_LENGTH,
    trace_id_of,
)
from repro.trace.trace_id import TraceId
from repro.uarch.cache import Cache
from repro.uarch.compiled_timing import (
    TraceTimingEngine,
    compiled_timing_enabled,
    timing_meta_for,
)
from repro.uarch.config import CoreConfig, SS_64x4
from repro.uarch.latencies import latency_of
from repro.uarch.scheduler import OoOScheduler

#: Fault-injection hook: called for every retired instruction of either
#: stream.  ``stream`` is "A" or "R"; ``compared`` tells whether the
#: R-stream instruction is redundantly executed (validated against the
#: A-stream).  May mutate ``state`` (architectural fault) and/or return
#: a replacement record (fault visible to the comparison hardware).
FaultHook = Callable[[str, DynInstr, ArchState, bool], DynInstr]

_NEVER_REMOVED = (InstrClass.JUMP_INDIRECT, InstrClass.OUT, InstrClass.HALT)


class SimulationError(Exception):
    """The co-simulation failed to make forward progress."""


@dataclass(frozen=True)
class SlipstreamConfig:
    """Configuration of the full slipstream CMP (paper, Table 2)."""

    core: CoreConfig = SS_64x4
    #: Optional per-stream core overrides.  The default (None) gives
    #: both streams a full ``core`` each — the paper's CMP(2x64x4).
    #: Setting them to complementary slices of one big core models the
    #: SMT implementation the paper leaves as future work (section 5):
    #: a statically-partitioned 8-wide SMT, e.g. a 3-wide A-stream
    #: partition and a 5-wide R-stream partition sharing a 128-entry
    #: ROB (see ``repro.core.smt``).
    a_core: Optional[CoreConfig] = None
    r_core: Optional[CoreConfig] = None
    trace_length: int = TRACE_LENGTH
    ir_scope_traces: int = 8
    confidence_threshold: int = 32
    delay_buffer_capacity: int = 256
    transfer_latency: int = 1
    removal_triggers: Tuple[str, ...] = ("BR", "WW", "SV")
    #: Removal decision mechanism: "trace" (the paper's design —
    #: per-trace ir-vecs with a single confidence counter on the
    #: predictor entry) or "pc" (the paper's sketched future-work
    #: mechanism: per-instruction confidence, no trace confinement of
    #: the decision; see repro.core.pc_ir_predictor).
    removal_mechanism: str = "trace"
    #: Front-end overhead of merging delay-buffer records in the
    #: R-stream: extra cycles per fetch block as a rational
    #: (numerator, denominator).  See OoOScheduler.
    rstream_merge_overhead: Tuple[int, int] = (1, 2)
    #: Delay-buffer data-flow read ports: at most this many merged
    #: (value-predicted) instructions dispatch per cycle in the R-stream.
    delay_merge_width: int = 3
    #: Seed the per-PC removal table with the abstract interpreter's
    #: proven facts (:mod:`repro.analysis.ceiling`) before execution:
    #: proven-dead writes/stores arrive pinned at the confidence
    #: threshold as WW, proven-silent stores as SV, and proven-direction
    #: branches as BR (gated on ``removal_triggers``).  Statically
    #: proven facts hold in *every* execution, so hint-removed
    #: instructions skip the detector's ir-vec verification and the
    #: pinned entries never reset.  Off by default: the golden suite is
    #: bit-identical with this flag off.
    static_hints: bool = False
    #: DME-style structurally decorrelated contexts: the A- and
    #: R-stream use shifted data address spaces and rotated register
    #: assignments, undone by translation at delay-buffer/comparison
    #: boundaries.  Clean-run behaviour is identical (the translation is
    #: a bijection the comparison undoes), so the co-simulation itself
    #: is unchanged; the flag is consumed by the fault model
    #: (:class:`repro.fault.injector.FaultInjector`), where a
    #: layout-correlated strike flips *different logical bits* in the
    #: two contexts instead of silently agreeing.  The translation cost
    #: is modelled by the mode's +1 ``transfer_latency``
    #: (:func:`repro.core.modes.decorrelated_config`).
    decorrelated: bool = False
    predictor: TracePredictorConfig = field(default_factory=TracePredictorConfig)
    max_instructions: int = 50_000_000

    def fingerprint(self) -> str:
        """Stable content hash, used in experiment-cache keys.

        Two configurations fingerprint equal iff they compare equal, so
        runs under a caller-supplied config are cacheable
        (:mod:`repro.eval.models`)."""
        return _config_fingerprint(self)


@dataclass
class SlipstreamResult:
    """Results of one slipstream run."""

    benchmark: str
    retired: int
    a_cycles: int
    r_cycles: int
    a_executed: int
    a_removed: int
    removed_by_category: Dict[str, int]
    branch_mispredictions: int
    ir_mispredictions: int
    ir_penalty_total: int
    #: One entry per IR-misprediction recovery, in detection order:
    #: ``(retired_at_detection, latency_cycles)``.  Fault studies use
    #: this to measure detection latency (retired instructions between a
    #: strike and the deviation being flagged) and per-event recovery
    #: penalties; IR-misps are rare (paper: <0.05/1000), so the log
    #: stays small.
    recoveries: List[Tuple[int, int]]
    detections: Dict[str, int]
    recovery_max_outstanding: int
    recovery_audit_shortfalls: int
    delay_buffer_backpressure: int
    output: List[int]

    @property
    def cycles(self) -> int:
        """Total execution time: both streams must complete."""
        return max(self.a_cycles, self.r_cycles)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def removal_fraction(self) -> float:
        return self.a_removed / self.retired if self.retired else 0.0

    @property
    def mispredictions_per_1000(self) -> float:
        return 1000.0 * self.branch_mispredictions / self.retired if self.retired else 0.0

    @property
    def ir_mispredictions_per_1000(self) -> float:
        return 1000.0 * self.ir_mispredictions / self.retired if self.retired else 0.0

    @property
    def avg_ir_penalty(self) -> float:
        if not self.ir_mispredictions:
            return 0.0
        return self.ir_penalty_total / self.ir_mispredictions


class _FollowedStep:
    """One instruction along the path the A-stream actually followed."""

    __slots__ = ("pc", "instr", "executed", "kind", "dyn", "pred_taken",
                 "mispredicted", "a_retire")

    def __init__(self, pc, instr, executed, kind=RemovalKind.NONE, dyn=None,
                 pred_taken=False):
        self.pc = pc
        self.instr = instr
        self.executed = executed
        self.kind = kind
        self.dyn = dyn
        self.pred_taken = pred_taken
        #: A-stream-detected conventional misprediction at this branch.
        self.mispredicted = False
        #: A-core cycle at which this instruction retired (entered the
        #: delay buffer); 0 for removed instructions.
        self.a_retire = 0


class _ATraceRecord:
    """One delay-buffer outcome group: an A-stream trace's outcomes."""

    __slots__ = ("steps", "followed_tid", "applied_removal", "available_cycle",
                 "a_halted", "pushed")

    def __init__(self, steps, followed_tid, applied_removal, a_halted):
        self.steps: List[_FollowedStep] = steps
        self.followed_tid: TraceId = followed_tid
        self.applied_removal: bool = applied_removal
        self.available_cycle = 0
        self.a_halted = a_halted
        self.pushed = False


class SlipstreamProcessor:
    """Co-simulates the two streams of a slipstream CMP."""

    def __init__(
        self,
        program: Program,
        config: Optional[SlipstreamConfig] = None,
        fault_hook: Optional[FaultHook] = None,
        obs: Optional[Observability] = None,
        engine: Optional[str] = None,
    ):
        self.program = program
        self.config = config or SlipstreamConfig()
        self.fault_hook = fault_hook
        #: Execution engine ("compiled" | "interpreted").  Both produce
        #: bit-identical results, so the choice is a constructor/env
        #: concern (REPRO_COMPILED), never part of SlipstreamConfig —
        #: config fingerprints and eval cache keys must not depend on it.
        self.engine = resolve_engine(engine)
        self._step_funcs = (
            compiled_for(program).step_funcs if self.engine == "compiled" else None
        )
        # Static per-PC scheduling metadata, precomputed once regardless
        # of engine (it is a pure function of the static instruction):
        # (srcs, latency, is_load, is_store, is_control, is_branch).
        # Replaces the latency_of dict probe + attribute chain per
        # scheduled instruction in both streams.  Shared per program
        # object across processor instances (id-keyed weakref memo, like
        # repro.arch.compiled.compiled_for).
        self._sched_meta: Dict[int, Tuple] = timing_meta_for(program)
        #: Observability handle (:mod:`repro.obs`); None disables all
        #: instrumentation at the cost of one pointer test per trace.
        #: Instrumentation is behavior-neutral: results are bit-identical
        #: with it on or off (tests/test_obs.py).
        self._obs = obs

        cfg = self.config
        if cfg.removal_mechanism not in ("trace", "pc"):
            raise ValueError(
                f"unknown removal mechanism {cfg.removal_mechanism!r}"
            )
        self.ir_predictor = IRPredictor(
            IRPredictorConfig(
                confidence_threshold=cfg.confidence_threshold,
                trace_predictor=cfg.predictor,
            )
        )
        self.pc_ir = PCIRPredictor(
            PCIRPredictorConfig(confidence_threshold=cfg.confidence_threshold)
        )
        #: Static-hint state (empty when ``static_hints`` is off, so the
        #: hot paths below degrade to no-ops without a mode test).
        #: ``_hint_branch_taken`` maps a proven branch PC to its proven
        #: direction; ``_hint_pcs`` holds every seeded PC (their removal
        #: is exempt from ir-vec verification — a static proof cannot be
        #: contradicted by a sound detector, only missed by it).
        self._hint_branch_taken: Dict[int, bool] = {}
        self._hint_pcs: frozenset = frozenset()
        if cfg.static_hints:
            self._seed_static_hints()
        self.detector = IRDetector(cfg.ir_scope_traces, cfg.removal_triggers)
        self.delay_buffer = DelayBuffer(cfg.delay_buffer_capacity, cfg.transfer_latency)
        self.recovery = RecoveryController()
        self.walker = StaticTraceWalker(program, cfg.trace_length)
        self._expansion_cache: Dict[TraceId, List[PredictedStep]] = {}

        # Two cores (or two SMT partitions) with private caches and
        # schedulers.
        self.a_core = cfg.a_core or cfg.core
        self.r_core = cfg.r_core or cfg.core
        self.a_sched = OoOScheduler(self.a_core)
        self.r_sched = OoOScheduler(
            self.r_core,
            block_overhead=cfg.rstream_merge_overhead,
            merge_width=min(cfg.delay_merge_width, self.r_core.dispatch_width),
        )
        self.a_icache = Cache(self.a_core.icache)
        self.a_dcache = Cache(self.a_core.dcache)
        self.r_icache = Cache(self.r_core.icache)
        self.r_dcache = Cache(self.r_core.dcache)

        # Compiled-timing engines (repro.uarch.compiled_timing), one per
        # stream.  Disabled under fault injection: a hook may rewrite
        # dynamic records in ways the static trace plans must not assume
        # away, and fault campaigns are not the hot path anyway.
        self._timing_a: Optional[TraceTimingEngine] = None
        self._timing_r: Optional[TraceTimingEngine] = None
        if fault_hook is None and compiled_timing_enabled():
            self._timing_a = TraceTimingEngine(
                self.a_sched, self.a_icache, self.a_dcache,
                self._sched_meta, self.a_core,
            )
            self._timing_r = TraceTimingEngine(
                self.r_sched, self.r_icache, self.r_dcache,
                self._sched_meta, self.r_core,
            )

        # Architectural contexts: the OS instantiates the program twice.
        initial = ArchState(image=program.data)
        self.a_state = initial
        self.r_state = initial.fork()
        self.a_pc = program.entry
        self.r_pc = program.entry

        # Per-stream fetch-block state (blocks persist across traces).
        self._a_block_count = 0
        self._a_block_pending = True
        self._r_block_count = 0
        self._r_block_break = True

        # Statistics.
        self.retired = 0
        self.a_executed = 0
        self.a_removed = 0
        self.removed_by_category: Dict[str, int] = {}
        self.branch_mispredictions = 0
        self.ir_mispredictions = 0
        self.ir_penalty_total = 0
        #: (retired_at_detection, latency_cycles) per recovery event.
        self.recovery_log: List[Tuple[int, int]] = []
        self.detections: Dict[str, int] = {"value": 0, "control": 0, "ir_detector": 0}
        self.audit_shortfalls = 0

        self._a_seq = 0
        self._r_seq = 0
        self._a_last_complete = 0
        self._a_last_retire = 0
        #: detector trace seq -> applied removal bits, for the predicted
        #: vs computed ir-vec verification.
        self._pending_vec_checks: Dict[int, List[bool]] = {}
        #: per fed trace, whether each instruction's branch outcome
        #: matched the A-stream's prediction (FIFO aligned with the
        #: detector's analyses; trains the per-instruction mechanism).
        self._pending_branch_ok: List[List[bool]] = []
        self._detector_seq = 0
        #: Co-simulation iteration index, used only to tag trace events.
        self._obs_seq = 0

    def _seed_static_hints(self) -> None:
        """Pre-warm the per-PC removal table from statically-proven
        facts, gated on the configured removal triggers.  Imported
        lazily: the core layer depends on the analysis layer only under
        this opt-in mode."""
        from repro.analysis.ceiling import static_removal_report

        report = static_removal_report(self.program)
        triggers = self.config.removal_triggers
        seeded = set()
        if "WW" in triggers:
            for pc in report.dead_write_pcs + report.dead_store_pcs:
                self.pc_ir.seed(pc, RemovalKind.WW)
                seeded.add(pc)
        if "SV" in triggers:
            # Seeded after WW so a dead *and* silent store reports SV
            # (the paper's priority, repro.core.removal).
            for pc in report.silent_store_pcs:
                self.pc_ir.seed(pc, RemovalKind.SV)
                seeded.add(pc)
        if "BR" in triggers:
            for pc in report.branch_always_pcs:
                self.pc_ir.seed(pc, RemovalKind.BR)
                self._hint_branch_taken[pc] = True
                seeded.add(pc)
            for pc in report.branch_never_pcs:
                self.pc_ir.seed(pc, RemovalKind.BR)
                self._hint_branch_taken[pc] = False
                seeded.add(pc)
        self._hint_pcs = frozenset(seeded)

    def _apply_hints(
        self,
        steps_static: List[PredictedStep],
        removal: Optional[RemovalPrediction],
    ) -> Optional[RemovalPrediction]:
        """OR statically-proven removal bits into a trace prediction.

        A proven branch is only removed when the predicted path agrees
        with the proven direction — a contradicting path is already a
        guaranteed deviation, and presuming the wrong outcome would turn
        it into a recovery the static proof says is avoidable."""
        pc_ir = self.pc_ir
        directions = self._hint_branch_taken
        vec = kinds = None
        n_vec = len(removal.ir_vec) if removal is not None else 0
        for i, st in enumerate(steps_static):
            if i < n_vec and removal.ir_vec[i]:
                continue
            pc = st.pc
            if pc not in self._hint_pcs or not pc_ir.removable(pc):
                continue
            direction = directions.get(pc)
            if direction is not None and st.taken != direction:
                continue
            if vec is None:
                n = len(steps_static)
                vec = [False] * n
                kinds = [RemovalKind.NONE] * n
                for j in range(min(n_vec, n)):
                    vec[j] = removal.ir_vec[j]
                    kinds[j] = removal.kinds[j]
            vec[i] = True
            kinds[i] = pc_ir.kind_of(pc)
        if vec is None:
            return removal
        return RemovalPrediction(tuple(vec), tuple(kinds))

    # ==================================================================
    # Top level.
    # ==================================================================

    def run(self) -> SlipstreamResult:
        """Run the program to completion under slipstream execution."""
        obs = self._obs
        if obs is not None:
            obs.emit(
                "start",
                benchmark=self.program.name,
                model="cmp",
                trace_length=self.config.trace_length,
                delay_buffer_capacity=self.config.delay_buffer_capacity,
                confidence_threshold=self.config.confidence_threshold,
                removal_triggers=list(self.config.removal_triggers),
            )
        guard = 0
        limit = self.config.max_instructions
        while not self.r_state.halted:
            record = self._a_phase()
            self._r_phase(record)
            self._obs_seq += 1
            guard += 1
            if self.retired > limit:
                raise SimulationError(
                    f"{self.program.name}: exceeded {limit} retired instructions"
                )
            if guard > limit:
                raise SimulationError("no forward progress")
        # Final detector drain: train with the remaining traces.
        for analysis in self.detector.drain():
            self._handle_analysis(analysis)
        result = SlipstreamResult(
            benchmark=self.program.name,
            retired=self.retired,
            a_cycles=self.a_sched.total_cycles,
            r_cycles=self.r_sched.total_cycles,
            a_executed=self.a_executed,
            a_removed=self.a_removed,
            removed_by_category=dict(self.removed_by_category),
            branch_mispredictions=self.branch_mispredictions,
            ir_mispredictions=self.ir_mispredictions,
            ir_penalty_total=self.ir_penalty_total,
            recoveries=list(self.recovery_log),
            detections=dict(self.detections),
            recovery_max_outstanding=self.recovery.max_outstanding,
            recovery_audit_shortfalls=self.audit_shortfalls,
            delay_buffer_backpressure=self.delay_buffer.backpressure_events,
            output=list(self.r_state.output),
        )
        if obs is not None:
            self._finalize_obs(obs)
        return result

    # ==================================================================
    # A-phase: fetch/execute one trace in the A-stream.
    # ==================================================================

    def _a_phase(self) -> _ATraceRecord:
        if self.a_state.halted:
            # Defensive: the A-stream believes the program is over while
            # the R-stream is still running; emit an empty group so the
            # R-phase can expose the deviation.
            record = _ATraceRecord([], TraceId(self.a_pc, ()), False, True)
            record.available_cycle = self._a_last_retire + self.config.transfer_latency
            return record

        prediction = self.ir_predictor.predict()
        steps_static: Optional[List[PredictedStep]] = None
        removal: Optional[RemovalPrediction] = None
        charged = False
        if prediction.trace_id is not None:
            if prediction.trace_id.start_pc == self.a_pc:
                steps_static = self._expand(prediction.trace_id)
                if steps_static is not None:
                    if self.config.removal_mechanism == "pc":
                        directions = self._hint_branch_taken
                        vec = tuple(
                            self.pc_ir.removable(st.pc)
                            and directions.get(st.pc, st.taken) == st.taken
                            for st in steps_static
                        )
                        if any(vec):
                            removal = RemovalPrediction(
                                vec,
                                tuple(self.pc_ir.kind_of(st.pc)
                                      for st in steps_static),
                            )
                    else:
                        removal = prediction.removal
                        if self._hint_pcs:
                            removal = self._apply_hints(steps_static, removal)
            else:
                # Wrong next-trace start PC: a boundary misprediction,
                # resolved when the previous trace's last instruction
                # completes.
                self.branch_mispredictions += 1
                self.a_sched.redirect(self._a_last_complete)
                charged = True
                if self._obs is not None:
                    self._obs.emit("redirect", seq=self._obs_seq,
                                   stream="A", reason="boundary")

        steps, a_halted = self._follow(steps_static, removal, charged)
        applied = removal is not None

        obs = self._obs
        if obs is not None:
            obs.emit("predict", seq=self._obs_seq, pc=self.a_pc,
                     predicted=prediction.trace_id is not None,
                     removal=applied)
            if applied:
                by_kind: Dict[str, int] = {}
                removed = 0
                for s in steps:
                    if not s.executed and s.kind:
                        removed += 1
                        category = removal_category(s.kind)
                        by_kind[category] = by_kind.get(category, 0) + 1
                if removed:
                    obs.emit("removal", seq=self._obs_seq,
                             removed=removed, by_kind=by_kind)

        followed_tid = _trace_id_of_steps(steps, self.a_pc)
        self._schedule_a_trace(steps, followed_tid)
        record = _ATraceRecord(steps, followed_tid, applied, a_halted)

        # Advance the A-stream PC past the trace.
        if steps:
            self.a_pc = _next_pc_of(steps[-1])

        # Push outcomes into the delay buffer; backpressure stalls the
        # A-stream's subsequent fetch until the R-stream drains.
        # Entries stream into the FIFO as the A-stream retires them, so
        # the R-stream may start on the group as soon as its *first*
        # entry arrives (per-instruction availability comes from each
        # step's ``a_retire``); a backpressured push delays the whole
        # group conservatively.
        executed_count = sum(1 for s in steps if s.executed)
        push_cycle = self.delay_buffer.push(max(executed_count, 1), self._a_last_retire)
        record.pushed = True
        first_retire = next(
            (s.a_retire for s in steps if s.executed), self._a_last_retire
        )
        if push_cycle > self._a_last_retire:
            if obs is not None:
                obs.emit("backpressure", seq=self._obs_seq,
                         occupancy=self.delay_buffer.occupancy,
                         stall_cycles=push_cycle - self._a_last_retire)
            self.a_sched.stall_fetch_until(push_cycle)
            first_retire = push_cycle
        record.available_cycle = first_retire + self.config.transfer_latency
        return record

    def _expand(self, tid: TraceId) -> Optional[List[PredictedStep]]:
        steps = self._expansion_cache.get(tid)
        if steps is not None:
            return steps
        try:
            steps = self.walker.expand(tid)
        except TraceExpansionError:
            return None
        if len(self._expansion_cache) > (1 << 16):
            self._expansion_cache.clear()
        self._expansion_cache[tid] = steps
        return steps

    def _follow(
        self,
        steps_static: Optional[List[PredictedStep]],
        removal: Optional[RemovalPrediction],
        charged: bool,
    ) -> Tuple[List[_FollowedStep], bool]:
        """Fetch/execute one *canonical* A-stream trace.

        The trace always runs to the static selection policy's boundary
        (``trace_length`` instructions, or an indirect jump / halt), so
        the A-stream's trace stream stays aligned with the detector's
        and the predictor's — a conventional misprediction redirects
        fetch (one charge per trace) but does not shorten the trace.

        While the prediction holds, removed instructions are skipped
        and removed branches' outcomes presumed.  After the first
        divergence (or with no prediction at all) the A-stream executes
        directly with sequential/BTB fetch, charging at most one
        misprediction at the first point such fetch would lose.
        """
        steps: List[_FollowedStep] = []
        steps_append = steps.append
        pc = self.a_pc
        diverged = steps_static is None
        n_static = len(steps_static) if steps_static is not None else 0
        ir_vec = removal.ir_vec if removal is not None else None
        n_vec = len(ir_vec) if ir_vec is not None else 0
        # Execution is inlined (formerly ``_a_execute``) with stream
        # state hoisted into locals: this loop runs once per A-stream
        # instruction, second only to ``_r_phase``.
        a_state = self.a_state
        funcs = self._step_funcs
        funcs_get = funcs.get if funcs is not None else None
        program = self.program
        a_seq = self._a_seq
        a_executed = 0
        fault_hook = self.fault_hook
        track_undo = self.recovery.track_undo
        followed = _FollowedStep
        removed_by_category = self.removed_by_category
        halted = False
        for index in range(self.config.trace_length):
            st: Optional[PredictedStep] = None
            if not diverged and index < n_static:
                st = steps_static[index]
            if st is not None and ir_vec is not None \
                    and index < n_vec and ir_vec[index] \
                    and st.instr.klass not in _NEVER_REMOVED:
                kind = removal.kinds[index]
                step = followed(st.pc, st.instr, False, kind=kind,
                                pred_taken=st.taken)
                steps_append(step)
                self.a_removed += 1
                category = removal_category(kind)
                removed_by_category[category] = (
                    removed_by_category.get(category, 0) + 1
                )
                pc = _next_pc_of(step)
                continue
            # Execute one instruction in the A-stream's context; a fault
            # means corrupt state drove the A-stream onto an invalid
            # path, and it idles until the R-stream exposes the
            # deviation and recovery restarts it.
            try:
                if funcs_get is not None:
                    f = funcs_get(pc)
                    dyn = (f(a_state, a_seq) if f is not None
                           else execute_one(program, a_state, pc, seq=a_seq))
                else:
                    dyn = execute_one(program, a_state, pc, seq=a_seq)
            except (ExecutionError, ValueError, IndexError):
                break
            a_seq += 1
            a_executed += 1
            if fault_hook is not None:
                dyn = fault_hook("A", dyn, a_state, True)
            if dyn.is_store and dyn.mem_addr is not None:
                track_undo(dyn.mem_addr)
            step = followed(pc, dyn.instr, True, dyn=dyn,
                            pred_taken=st.taken if st is not None else dyn.taken)
            steps_append(step)
            if a_state.halted:
                halted = True
                break
            if st is not None:
                if dyn.instr.is_branch and dyn.taken != st.taken:
                    # Conventional misprediction, detected by the
                    # A-stream: fetch redirects; the trace continues to
                    # its canonical boundary without the prediction.
                    diverged = True
                    if not charged:
                        step.mispredicted = True
                        self.branch_mispredictions += 1
                        charged = True
                        if self._obs is not None:
                            self._obs.emit("redirect", seq=self._obs_seq,
                                           stream="A", reason="outcome")
            else:
                if not charged and (
                    (dyn.instr.is_branch and dyn.taken)
                    or dyn.instr.klass is InstrClass.JUMP_INDIRECT
                ):
                    step.mispredicted = True
                    self.branch_mispredictions += 1
                    charged = True
                    if self._obs is not None:
                        self._obs.emit("redirect", seq=self._obs_seq,
                                       stream="A", reason="unpredicted")
            if dyn.instr.klass in (InstrClass.JUMP_INDIRECT, InstrClass.HALT):
                break
            pc = dyn.next_pc
        self._a_seq = a_seq
        self.a_executed += a_executed
        return steps, halted

    def _schedule_a_trace(self, steps: List[_FollowedStep],
                          followed_tid: TraceId) -> None:
        """Schedule the A-stream's executed instructions with
        chunk-skipping fetch: blocks break at taken control transfers
        (executed or presumed) and at the fetch width, and continue
        across trace boundaries; removed instructions consume no fetch
        slots (the stored intermediate PCs let the front end skip the
        removed chunks entirely, Figure 2)."""
        engine = self._timing_a
        if engine is not None:
            # Compiled path: collect the executed substream and hand the
            # whole trace to the memoizing engine.  The key pins the
            # static schedule shape: the followed id plus step count
            # walk a unique PC sequence, the mask says which steps
            # executed (vs removed), and the misprediction index places
            # the one possible in-trace redirect.
            ex_steps: List[_FollowedStep] = []
            dyns: List[DynInstr] = []
            pre_breaks: List[bool] = []
            mask = 0
            bit = 1
            misp_idx = -1
            pending = False
            for step in steps:
                if step.executed:
                    if step.mispredicted:
                        misp_idx = len(dyns)
                    mask |= bit
                    pre_breaks.append(pending)
                    pending = False
                    ex_steps.append(step)
                    dyns.append(step.dyn)
                elif step.pred_taken and step.instr.is_control:
                    # A presumed-taken removed transfer still ends the
                    # fetch block (chunk-skipping fetch).
                    pending = True
                bit <<= 1
            n = len(dyns)
            if n:
                key = (followed_tid, len(steps), mask, misp_idx)
                last_complete, retires, count, block_pending, _nb = engine.schedule(
                    key, dyns, n, self._a_block_count, self._a_block_pending,
                    pre_breaks=pre_breaks, redirect_at=misp_idx,
                    want_retires=True,
                )
                for i in range(n):
                    ex_steps[i].a_retire = retires[i]
                self._a_block_count = count
                # Trailing removed-taken steps break the next block too.
                self._a_block_pending = block_pending or pending
                self._a_last_complete = last_complete
                self._a_last_retire = retires[-1]
            elif pending:
                self._a_block_pending = True
            return
        cfg = self.a_core
        icache_miss = cfg.icache.miss_penalty
        dcache_miss = cfg.dcache.miss_penalty
        fetch_width = cfg.fetch_width
        block_pending = self._a_block_pending
        block_count = self._a_block_count
        sched_meta = self._sched_meta
        # Scheduler pass inlined (same logic as OoOScheduler.add_args,
        # specialized: the A-stream never merges delay-buffer values and
        # never passes a fetch floor); scalar state in locals, written
        # back after the loop, as in _r_phase.
        asc = self.a_sched
        as_overhead_num, as_overhead_den = asc._overhead_num, asc._overhead_den
        as_overhead_acc = asc._overhead_acc
        as_dispatch_width = asc._dispatch_width
        as_issue_width = asc._issue_width
        as_retire_width = asc._retire_width
        as_rob_size = asc._rob_size
        as_frontend_depth = asc._frontend_depth
        as_reg_ready = asc._reg_ready
        as_store_ready = asc._store_ready
        as_store_get = as_store_ready.get
        as_rob = asc._rob_retire
        as_rob_append = as_rob.append
        as_rob_popleft = as_rob.popleft
        as_issue_count = asc._issue_count
        as_issue_get = as_issue_count.get
        as_next_block_cycle = asc._next_block_cycle
        as_cur_block_fetch = asc._cur_block_fetch
        as_last_dispatch = asc._last_dispatch
        as_dispatch_used = asc._dispatch_used
        as_retire_cycle = asc._retire_cycle
        as_retire_count = asc._retire_count
        as_retired = asc.retired
        as_redirects = asc.redirects
        redirect_penalty = asc.config.redirect_penalty
        a_last_complete = self._a_last_complete
        a_last_retire = self._a_last_retire
        # Cache probes inlined as in _r_phase; counters written back
        # after the loop.
        aic = self.a_icache
        aic_sets, aic_lb = aic._sets, aic._line_bytes
        aic_ns, aic_assoc = aic._num_sets, aic._assoc
        aic_stamp, aic_acc, aic_misses = aic._stamp, 0, 0
        adc = self.a_dcache
        adc_sets, adc_lb = adc._sets, adc._line_bytes
        adc_ns, adc_assoc = adc._num_sets, adc._assoc
        adc_stamp, adc_acc, adc_misses = adc._stamp, 0, 0
        for step in steps:
            if step.executed:
                dyn = step.dyn
                pc = dyn.pc
                meta = sched_meta.get(pc)
                if meta is None:
                    instr = dyn.instr
                    meta = (instr.srcs, latency_of(instr), instr.is_load,
                            instr.is_store, instr.is_control, instr.is_branch)
                srcs, latency, is_load, is_store, _, _ = meta
                icache_penalty = 0
                aic_acc += 1
                aic_stamp += 1
                line = pc // aic_lb
                cset = aic_sets[line % aic_ns]
                if line in cset:
                    cset[line] = aic_stamp
                else:
                    aic_misses += 1
                    if len(cset) >= aic_assoc:
                        del cset[min(cset, key=cset.get)]
                    cset[line] = aic_stamp
                    icache_penalty = icache_miss
                    block_pending = True
                new_block = block_pending or block_count >= fetch_width
                if new_block:
                    block_count = 0
                    block_pending = False
                block_count += 1
                mem_addr = dyn.mem_addr
                dcache_penalty = 0
                if mem_addr is not None:
                    adc_acc += 1
                    adc_stamp += 1
                    line = mem_addr // adc_lb
                    cset = adc_sets[line % adc_ns]
                    if line in cset:
                        cset[line] = adc_stamp
                    else:
                        adc_misses += 1
                        if len(cset) >= adc_assoc:
                            del cset[min(cset, key=cset.get)]
                        cset[line] = adc_stamp
                        dcache_penalty = dcache_miss
                # --- inlined OoOScheduler.add_args (A-stream) ---
                # Fetch.
                if new_block:
                    fetch = as_next_block_cycle + icache_penalty
                    as_cur_block_fetch = fetch
                    gap = 1
                    if as_overhead_num:
                        as_overhead_acc += as_overhead_num
                        if as_overhead_acc >= as_overhead_den:
                            as_overhead_acc -= as_overhead_den
                            gap += 1
                    as_next_block_cycle = fetch + gap
                else:
                    fetch = as_cur_block_fetch
                # Operand readiness.
                ready = 0
                for src in srcs:
                    t = as_reg_ready[src]
                    if t > ready:
                        ready = t
                if is_load and mem_addr is not None:
                    t = as_store_get(mem_addr, 0)
                    if t > ready:
                        ready = t
                # Dispatch: in order, width-limited, ROB-limited.
                dispatch = fetch + as_frontend_depth
                if dispatch < as_last_dispatch:
                    dispatch = as_last_dispatch
                if len(as_rob) >= as_rob_size:
                    rob_free = as_rob_popleft()
                    if dispatch < rob_free:
                        dispatch = rob_free
                if dispatch == as_last_dispatch \
                        and as_dispatch_used >= as_dispatch_width:
                    dispatch += 1
                if dispatch == as_last_dispatch:
                    as_dispatch_used += 1
                else:
                    as_last_dispatch = dispatch
                    as_dispatch_used = 1
                # Issue: width-limited slot search.
                issue = dispatch if dispatch > ready else ready
                while as_issue_get(issue, 0) >= as_issue_width:
                    issue += 1
                as_issue_count[issue] = as_issue_get(issue, 0) + 1
                # Complete.
                complete = issue + latency
                if is_load:
                    complete += dcache_penalty
                dest = dyn.dest_reg
                if dest is not None:
                    as_reg_ready[dest] = complete
                if is_store and mem_addr is not None:
                    as_store_ready[mem_addr] = complete
                # Retire: in order, width-limited.
                earliest = complete + 1
                if earliest > as_retire_cycle:
                    as_retire_cycle = earliest
                    as_retire_count = 1
                elif as_retire_count >= as_retire_width:
                    as_retire_cycle += 1
                    as_retire_count = 1
                else:
                    as_retire_count += 1
                as_rob_append(as_retire_cycle)
                as_retired += 1
                # --- end inlined scheduler ---
                a_last_complete = complete
                a_last_retire = as_retire_cycle
                step.a_retire = as_retire_cycle
                if step.mispredicted:
                    # Inlined OoOScheduler.redirect.
                    floor = complete + 1 + redirect_penalty
                    if floor > as_next_block_cycle:
                        as_next_block_cycle = floor
                    as_redirects += 1
                    block_pending = True
                taken = dyn.taken
            else:
                taken = step.pred_taken and step.instr.is_control
            if taken:
                block_pending = True
        self._a_block_pending = block_pending
        self._a_block_count = block_count
        asc._overhead_acc = as_overhead_acc
        asc._next_block_cycle = as_next_block_cycle
        asc._cur_block_fetch = as_cur_block_fetch
        asc._last_dispatch = as_last_dispatch
        asc._dispatch_used = as_dispatch_used
        asc._retire_cycle = as_retire_cycle
        asc._retire_count = as_retire_count
        asc.retired = as_retired
        asc.redirects = as_redirects
        self._a_last_complete = a_last_complete
        self._a_last_retire = a_last_retire
        aic._stamp = aic_stamp
        aic.accesses += aic_acc
        aic.misses += aic_misses
        adc._stamp = adc_stamp
        adc.accesses += adc_acc
        adc.misses += adc_misses

    # ==================================================================
    # R-phase: consume one delay-buffer group in the R-stream.
    # ==================================================================

    def _r_phase(self, record: _ATraceRecord) -> None:
        if self._timing_r is not None:
            self._r_phase_compiled(record)
            return
        available = record.available_cycle
        self.r_sched.stall_fetch_until(available)

        executed: List[DynInstr] = []
        branch_ok: List[bool] = []
        deviation: Optional[Tuple[str, int]] = None  # (kind, detect_cycle)
        last_complete = self.r_sched.total_cycles

        # Execute + schedule, fused and fully hoisted: this loop retires
        # every R-stream (architectural) instruction, making it the
        # single hottest region of the co-simulation.  Stream state is
        # kept in locals and written back after the loop.
        r_state = self.r_state
        r_pc = self.r_pc
        r_seq = self._r_seq
        retired = self.retired
        fault_hook = self.fault_hook
        funcs = self._step_funcs
        funcs_get = funcs.get if funcs is not None else None
        program = self.program
        sched_meta_get = self._sched_meta.get
        # Scheduler pass inlined (same logic as OoOScheduler.add_args,
        # which documents it, specialized: fetch_floor is always 0 and
        # merged == step.executed here).  Mutable containers are shared
        # in place; scalar state lives in locals until the writeback
        # after the loop.
        rsc = self.r_sched
        rs_overhead_num, rs_overhead_den = rsc._overhead_num, rsc._overhead_den
        rs_overhead_acc = rsc._overhead_acc
        rs_dispatch_width = rsc._dispatch_width
        rs_issue_width = rsc._issue_width
        rs_retire_width = rsc._retire_width
        rs_rob_size = rsc._rob_size
        rs_frontend_depth = rsc._frontend_depth
        rs_merge_width = rsc._merge_width
        rs_reg_ready = rsc._reg_ready
        rs_store_ready = rsc._store_ready
        rs_store_get = rs_store_ready.get
        rs_rob = rsc._rob_retire
        rs_rob_append = rs_rob.append
        rs_rob_popleft = rs_rob.popleft
        rs_issue_count = rsc._issue_count
        rs_issue_get = rs_issue_count.get
        rs_next_block_cycle = rsc._next_block_cycle
        rs_cur_block_fetch = rsc._cur_block_fetch
        rs_last_dispatch = rsc._last_dispatch
        rs_dispatch_used = rsc._dispatch_used
        rs_merge_cycle = rsc._merge_cycle
        rs_merge_used = rsc._merge_used
        rs_retire_cycle = rsc._retire_cycle
        rs_retire_count = rsc._retire_count
        rs_retired = rsc.retired
        rs_merge_stalls = rsc.merge_stalls
        # Cache probes are inlined below (same hit/miss/LRU logic as
        # Cache.probe); counters accumulate in locals and are written
        # back right after the loop.
        ric = self.r_icache
        ric_sets, ric_lb = ric._sets, ric._line_bytes
        ric_ns, ric_assoc = ric._num_sets, ric._assoc
        ric_stamp, ric_acc, ric_misses = ric._stamp, 0, 0
        rdc = self.r_dcache
        rdc_sets, rdc_lb = rdc._sets, rdc._line_bytes
        rdc_ns, rdc_assoc = rdc._num_sets, rdc._assoc
        rdc_stamp, rdc_acc, rdc_misses = rdc._stamp, 0, 0
        cfg = self.r_core
        icache_miss = cfg.icache.miss_penalty
        dcache_miss = cfg.dcache.miss_penalty
        fetch_width = cfg.fetch_width
        block_break = self._r_block_break
        block_count = self._r_block_count
        transfer_latency = self.config.transfer_latency
        recovery = self.recovery
        detector_seq = self._detector_seq
        executed_append = executed.append
        branch_ok_append = branch_ok.append

        for step in record.steps:
            if r_state.halted:
                break
            if r_pc != step.pc:
                # Control deviation the A-stream did not know about
                # (removed mispredicted branch, or corrupt A context).
                deviation = ("control", last_complete)
                break
            # Execute one architectural instruction (inlined _r_execute).
            if funcs_get is not None and (f := funcs_get(r_pc)) is not None:
                dyn = f(r_state, r_seq)
            else:
                dyn = execute_one(program, r_state, r_pc, seq=r_seq)
            r_seq += 1
            retired += 1
            step_executed = step.executed
            if fault_hook is not None:
                dyn = fault_hook("R", dyn, r_state, step_executed)

            # Schedule it (inlined _schedule_r_instr); the fault hook
            # never alters pc/instr, so static metadata stays valid.
            pc = dyn.pc
            meta = sched_meta_get(pc)
            if meta is None:
                instr = dyn.instr
                meta = (instr.srcs, latency_of(instr), instr.is_load,
                        instr.is_store, instr.is_control, instr.is_branch)
            srcs, latency, is_load, is_store, is_control, is_branch = meta
            icache_penalty = 0
            ric_acc += 1
            ric_stamp += 1
            line = pc // ric_lb
            cset = ric_sets[line % ric_ns]
            if line in cset:
                cset[line] = ric_stamp
            else:
                ric_misses += 1
                if len(cset) >= ric_assoc:
                    del cset[min(cset, key=cset.get)]
                cset[line] = ric_stamp
                icache_penalty = icache_miss
                block_break = True
            new_block = block_break or block_count >= fetch_width
            if new_block:
                block_count = 0
                block_break = False
            block_count += 1
            taken = dyn.taken
            if is_control and taken:
                block_break = True
            mem_addr = dyn.mem_addr
            dcache_penalty = 0
            if mem_addr is not None:
                rdc_acc += 1
                rdc_stamp += 1
                line = mem_addr // rdc_lb
                cset = rdc_sets[line % rdc_ns]
                if line in cset:
                    cset[line] = rdc_stamp
                else:
                    rdc_misses += 1
                    if len(cset) >= rdc_assoc:
                        del cset[min(cset, key=cset.get)]
                    cset[line] = rdc_stamp
                    dcache_penalty = dcache_miss
            # --- inlined OoOScheduler.add_args (R-stream) ---
            # Fetch.
            if new_block:
                fetch = rs_next_block_cycle + icache_penalty
                rs_cur_block_fetch = fetch
                gap = 1
                if rs_overhead_num:
                    rs_overhead_acc += rs_overhead_num
                    if rs_overhead_acc >= rs_overhead_den:
                        rs_overhead_acc -= rs_overhead_den
                        gap += 1
                rs_next_block_cycle = fetch + gap
            else:
                fetch = rs_cur_block_fetch
            # Operand readiness (delay-buffer override for redundantly
            # executed instructions only).
            ready = 0
            for src in srcs:
                t = rs_reg_ready[src]
                if t > ready:
                    ready = t
            if is_load and mem_addr is not None:
                t = rs_store_get(mem_addr, 0)
                if t > ready:
                    ready = t
            if step_executed:
                override = step.a_retire + transfer_latency
                if override < available:
                    override = available
                accelerated = override < ready
            else:
                accelerated = False
            if accelerated:
                local_ready = ready
                ready = override
            # Dispatch: in order, width-limited, ROB-limited.
            dispatch = fetch + rs_frontend_depth
            if dispatch < rs_last_dispatch:
                dispatch = rs_last_dispatch
            if len(rs_rob) >= rs_rob_size:
                rob_free = rs_rob_popleft()
                if dispatch < rob_free:
                    dispatch = rob_free
            if dispatch == rs_last_dispatch \
                    and rs_dispatch_used >= rs_dispatch_width:
                dispatch += 1
            if accelerated and local_ready > dispatch:
                if dispatch == rs_merge_cycle \
                        and rs_merge_used >= rs_merge_width:
                    dispatch += 1
                    rs_merge_stalls += 1
                if dispatch == rs_merge_cycle:
                    rs_merge_used += 1
                else:
                    rs_merge_cycle = dispatch
                    rs_merge_used = 1
            if dispatch == rs_last_dispatch:
                rs_dispatch_used += 1
            else:
                rs_last_dispatch = dispatch
                rs_dispatch_used = 1
            # Issue: width-limited slot search.
            issue = dispatch if dispatch > ready else ready
            while rs_issue_get(issue, 0) >= rs_issue_width:
                issue += 1
            rs_issue_count[issue] = rs_issue_get(issue, 0) + 1
            # Complete.
            complete = issue + latency
            if is_load:
                complete += dcache_penalty
            dest = dyn.dest_reg
            if dest is not None:
                rs_reg_ready[dest] = complete
            if is_store and mem_addr is not None:
                rs_store_ready[mem_addr] = complete
            # Retire: in order, width-limited.
            earliest = complete + 1
            if earliest > rs_retire_cycle:
                rs_retire_cycle = earliest
                rs_retire_count = 1
            elif rs_retire_count >= rs_retire_width:
                rs_retire_cycle += 1
                rs_retire_count = 1
            else:
                rs_retire_count += 1
            rs_rob_append(rs_retire_cycle)
            rs_retired += 1
            # --- end inlined scheduler ---
            last_complete = complete
            executed_append(dyn)
            branch_ok_append(not is_branch or taken == step.pred_taken)

            if step_executed:
                a_dyn = step.dyn
                # Redundant-instruction comparison, inlined _mismatch.
                if (a_dyn.value != dyn.value
                        or a_dyn.mem_addr != mem_addr
                        or a_dyn.taken != taken
                        or a_dyn.next_pc != dyn.next_pc):
                    deviation = ("value", last_complete)
                    r_pc = dyn.next_pc
                    break
                if is_store and a_dyn.mem_addr is not None:
                    recovery.untrack_undo(a_dyn.mem_addr)
            else:
                if is_branch and taken != step.pred_taken:
                    # A removed branch whose presumed outcome was wrong.
                    deviation = ("control", last_complete)
                    r_pc = dyn.next_pc
                    break
                if is_store and mem_addr is not None:
                    recovery.track_do(mem_addr, detector_seq)
            r_pc = dyn.next_pc

        self.r_pc = r_pc
        self._r_seq = r_seq
        self.retired = retired
        self._r_block_break = block_break
        self._r_block_count = block_count
        rsc._overhead_acc = rs_overhead_acc
        rsc._next_block_cycle = rs_next_block_cycle
        rsc._cur_block_fetch = rs_cur_block_fetch
        rsc._last_dispatch = rs_last_dispatch
        rsc._dispatch_used = rs_dispatch_used
        rsc._merge_cycle = rs_merge_cycle
        rsc._merge_used = rs_merge_used
        rsc._retire_cycle = rs_retire_cycle
        rsc._retire_count = rs_retire_count
        rsc.retired = rs_retired
        rsc.merge_stalls = rs_merge_stalls
        ric._stamp = ric_stamp
        ric.accesses += ric_acc
        ric.misses += ric_misses
        rdc._stamp = rdc_stamp
        rdc.accesses += rdc_acc
        rdc.misses += rdc_misses
        self._r_finish(record, executed, branch_ok, deviation, last_complete)

    def _r_phase_compiled(self, record: _ATraceRecord) -> None:
        """R-phase with the memoizing timing engine: one architectural
        pass (execution, redundant-instruction comparison, recovery
        tracking — none of which reads the timing model), then one
        engine call for the whole trace's schedule.  Bit-identical to
        the fused scalar loop in :meth:`_r_phase`: timing never feeds
        back into architecture within a trace, and the deviation
        detect-cycle is the last scheduled instruction's completion
        either way."""
        available = record.available_cycle
        rsc = self.r_sched
        rsc.stall_fetch_until(available)

        executed: List[DynInstr] = []
        branch_ok: List[bool] = []
        dev_kind: Optional[str] = None
        r_state = self.r_state
        r_pc = self.r_pc
        r_seq = self._r_seq
        retired = self.retired
        funcs = self._step_funcs
        funcs_get = funcs.get if funcs is not None else None
        program = self.program
        sched_meta_get = self._sched_meta.get
        transfer_latency = self.config.transfer_latency
        recovery = self.recovery
        detector_seq = self._detector_seq
        executed_append = executed.append
        branch_ok_append = branch_ok.append
        overrides: List[Optional[int]] = []
        overrides_append = overrides.append
        mask = 0
        bit = 1

        for step in record.steps:
            if r_state.halted:
                break
            if r_pc != step.pc:
                # Control deviation the A-stream did not know about
                # (removed mispredicted branch, or corrupt A context).
                dev_kind = "control"
                break
            # Execute one architectural instruction (inlined _r_execute).
            if funcs_get is not None and (f := funcs_get(r_pc)) is not None:
                dyn = f(r_state, r_seq)
            else:
                dyn = execute_one(program, r_state, r_pc, seq=r_seq)
            r_seq += 1
            retired += 1
            executed_append(dyn)
            meta = sched_meta_get(dyn.pc)
            if meta is None:
                instr = dyn.instr
                meta = (instr.srcs, latency_of(instr), instr.is_load,
                        instr.is_store, instr.is_control, instr.is_branch)
            is_store = meta[3]
            is_branch = meta[5]
            taken = dyn.taken
            branch_ok_append(not is_branch or taken == step.pred_taken)
            mem_addr = dyn.mem_addr
            if step.executed:
                mask |= bit
                ov = step.a_retire + transfer_latency
                overrides_append(ov if ov > available else available)
                a_dyn = step.dyn
                # Redundant-instruction comparison, inlined _mismatch.
                if (a_dyn.value != dyn.value
                        or a_dyn.mem_addr != mem_addr
                        or a_dyn.taken != taken
                        or a_dyn.next_pc != dyn.next_pc):
                    dev_kind = "value"
                    r_pc = dyn.next_pc
                    break
                if is_store and a_dyn.mem_addr is not None:
                    recovery.untrack_undo(a_dyn.mem_addr)
            else:
                overrides_append(None)
                if is_branch and taken != step.pred_taken:
                    # A removed branch whose presumed outcome was wrong.
                    dev_kind = "control"
                    r_pc = dyn.next_pc
                    break
                if is_store and mem_addr is not None:
                    recovery.track_do(mem_addr, detector_seq)
            bit <<= 1
            r_pc = dyn.next_pc

        self.r_pc = r_pc
        self._r_seq = r_seq
        self.retired = retired

        n = len(executed)
        last_complete = rsc.total_cycles
        if n:
            # The followed id plus scheduled count walk a unique PC
            # sequence (the R-stream breaks on any PC mismatch before
            # scheduling); the mask fixes which slots carry delay-buffer
            # value predictions.
            key = (record.followed_tid, n, mask)
            last_complete, _retires, count, block_break, _nb = (
                self._timing_r.schedule(
                    key, executed, n, self._r_block_count,
                    self._r_block_break, overrides=overrides,
                )
            )
            self._r_block_count = count
            self._r_block_break = block_break
        deviation = (dev_kind, last_complete) if dev_kind is not None else None
        self._r_finish(record, executed, branch_ok, deviation, last_complete)

    def _r_finish(
        self,
        record: _ATraceRecord,
        executed: List[DynInstr],
        branch_ok: List[bool],
        deviation: Optional[Tuple[str, int]],
        last_complete: int,
    ) -> None:
        """Post-schedule R-phase tail, shared by the scalar and compiled
        paths: detector feeding, predictor training, ir-vec bookkeeping,
        deviation resolution and recovery."""
        # Feed the IR-detector with what the R-stream actually retired,
        # train the IR-predictor, and verify outstanding ir-vecs.
        if executed:
            actual_tid = trace_id_of(executed)
            self.ir_predictor.update_path(actual_tid)
            if record.applied_removal and deviation is None:
                # Hint-removed instructions are exempt from the ir-vec
                # verification: the dynamic detector can *miss* a
                # statically-proven fact (bounded scope), never refute
                # it, and a removed branch's presumed outcome is still
                # checked architecturally in the R-phase.
                hint_pcs = self._hint_pcs
                self._pending_vec_checks[self._detector_seq] = [
                    not s.executed and s.pc not in hint_pcs
                    for s in record.steps
                ]
            analyses = self.detector.feed_trace(CompletedTrace(executed, actual_tid))
            self._detector_seq += 1
            self._pending_branch_ok.append(branch_ok)
            for analysis in analyses:
                if self._handle_analysis(analysis) and deviation is None:
                    deviation = ("ir_detector", last_complete)

        if deviation is None and not self.r_state.halted:
            if record.a_halted or not record.steps:
                # The A-stream halted or stalled on a wrong path.
                deviation = ("control", last_complete)

        if deviation is not None:
            self._recover(deviation[0], deviation[1])
        elif record.pushed:
            self.delay_buffer.mark_popped(self.r_sched.total_cycles)

        obs = self._obs
        if obs is not None:
            obs.histogram("slip.db_occupancy").observe(self.delay_buffer.occupancy)
            obs.emit("trace_retired", seq=self._obs_seq,
                     retired=self.retired,
                     a_cycle=self.a_sched.total_cycles,
                     r_cycle=self.r_sched.total_cycles,
                     occupancy=self.delay_buffer.occupancy,
                     merge_stalls=self.r_sched.merge_stalls)

    # ==================================================================
    # IR-detector analysis handling and recovery.
    # ==================================================================

    def _handle_analysis(self, analysis: TraceAnalysis) -> bool:
        """Train the predictor and verify the predicted ir-vec.

        Returns True if verification exposed an IR-misprediction: an
        instruction was removed that the detector's exact re-analysis
        says was not removable this time.
        """
        self.ir_predictor.train_removal(analysis)
        oks = self._pending_branch_ok.pop(0) if self._pending_branch_ok else []
        if self.config.removal_mechanism == "pc":
            for pc, selected, kind, ok in zip(
                analysis.pcs, analysis.ir_vec, analysis.kinds,
                oks or [True] * len(analysis.pcs),
            ):
                self.pc_ir.train(pc, selected, kind, ok)
        predicted = self._pending_vec_checks.pop(analysis.trace_seq, None)
        if predicted is not None:
            for removed, computed in zip(predicted, analysis.ir_vec):
                if removed and not computed:
                    return True
        self.recovery.release_verified_trace(analysis.trace_seq)
        return False

    def _recover(self, kind: str, detect_cycle: int) -> None:
        """IR-misprediction (or fault) recovery, section 2.3."""
        self.ir_mispredictions += 1
        self.detections[kind] = self.detections.get(kind, 0) + 1

        # The R-stream's ROB is flushed: timing redirect.
        self.r_sched.redirect(detect_cycle)
        self._r_block_break = True

        # Restore the A-stream context from the R-stream context: the
        # full register file, then the tracked memory locations.
        tracked = self.recovery.tracked_addresses()
        cost = self.recovery.recover()
        self.a_state.regs.copy_from(self.r_state.regs)
        self.a_state.halted = self.r_state.halted
        for addr in tracked:
            self.a_state.mem.write(addr, self.r_state.mem.read(addr))

        # Audit the sufficiency claim; repair (and count) any shortfall.
        remaining = self.a_state.mem.differing_addresses(self.r_state.mem)
        if remaining:
            self.audit_shortfalls += len(remaining)
            for addr in remaining:
                self.a_state.mem.write(addr, self.r_state.mem.read(addr))

        self.ir_penalty_total += cost.latency
        self.recovery_log.append((self.retired, cost.latency))
        resume = detect_cycle + cost.latency
        if self._obs is not None:
            self._obs.emit("recovery", seq=self._obs_seq, kind=kind,
                           detect_cycle=detect_cycle, latency=cost.latency,
                           resume_cycle=resume,
                           mem_restored=cost.memory_locations,
                           shortfall=len(remaining))
            self._obs.histogram("slip.recovery_latency").observe(cost.latency)
        self.a_sched.stall_fetch_until(resume)
        if resume > self._a_last_retire:
            self._a_last_retire = resume
        if resume > self._a_last_complete:
            self._a_last_complete = resume

        # Flush the delay buffer; restart the A-stream at the precise
        # R-stream point.  The predictor's history already reflects only
        # verified traces (it is trained on the R-stream's retirements).
        self.delay_buffer.flush()
        self.a_pc = self.r_pc
        self._a_block_pending = True
        self._pending_vec_checks.clear()

    # ==================================================================
    # Observability (behavior-neutral; see repro.obs).
    # ==================================================================

    def _finalize_obs(self, obs: Observability) -> None:
        """Fold every component's tallies into the metrics registry and
        close out the event trace with cache summaries and the final
        counter snapshot."""
        registry = obs.registry
        registry.set_counters(self.delay_buffer.snapshot(), "delay_buffer.")
        registry.set_counters(self.recovery.snapshot(), "recovery.")
        registry.set_counters(self.ir_predictor.snapshot(), "ir_predictor.")
        registry.set_counters(self.detector.snapshot(), "ir_detector.")
        registry.set_counters(self.a_sched.snapshot(), "a_sched.")
        registry.set_counters(self.r_sched.snapshot(), "r_sched.")
        registry.counter("slip.traces").set(self._obs_seq)
        for name, cache in (
            ("a_icache", self.a_icache), ("a_dcache", self.a_dcache),
            ("r_icache", self.r_icache), ("r_dcache", self.r_dcache),
        ):
            registry.set_counters(cache.snapshot(), f"{name}.")
            obs.emit("cache", cache=name, accesses=cache.accesses,
                     hits=cache.hits, misses=cache.misses)
        obs.emit("summary", counters=registry.snapshot())


def _trace_id_of_steps(steps: List[_FollowedStep], start_pc: int) -> TraceId:
    """Trace id of the path the A-stream followed — presumed outcomes of
    removed branches included (the delay buffer conveys the complete
    control history as determined by the A-stream, right or wrong)."""
    outcomes = []
    for step in steps:
        if step.instr.is_branch:
            outcomes.append(step.dyn.taken if step.executed else step.pred_taken)
    return TraceId(start_pc, tuple(outcomes))


def _next_pc_of(step: _FollowedStep) -> int:
    if step.executed:
        return step.dyn.next_pc
    if step.instr.is_branch:
        return step.instr.target if step.pred_taken else step.pc + WORD
    if step.instr.klass is InstrClass.JUMP:
        return step.instr.target
    return step.pc + WORD
