"""Slipstream on an SMT core (paper, section 5, future work).

The paper observes that CMP(2x64x4)'s peak bandwidth is only 4 IPC —
"this suggests implementing a slipstream processor using an 8-wide SMT
processor, which we leave for future work."  This module provides that
configuration under the simplest defensible resource model: a *static
partition* of one SS(128x8)-class core between the two streams.  (A
dynamically-shared SMT would let the streams steal each other's idle
slots; static partitioning is the conservative bound, and is also what
several contemporary SMT proposals shipped first.)

The default split gives the R-stream the wider partition — it retires
the whole program, so its width bounds the machine — and the A-stream
the remainder: 3-wide A + 5-wide R, each with half the 128-entry ROB
windows scaled to their share of in-flight work.

Because the partition is expressed purely as ``CoreConfig`` values fed
through :class:`~repro.core.slipstream.SlipstreamConfig`, the SMT model
inherits the fast paths transparently: the compiled execution engine
and the memoized timing model (:mod:`repro.uarch.compiled_timing`) key
their caches on the program and per-stream core config, never on which
topology (CMP or SMT) wraps them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.core.slipstream import SlipstreamConfig
from repro.uarch.config import SS_128x8, CoreConfig


def smt_partition(
    base: CoreConfig = SS_128x8,
    a_width: int = 3,
    rob_split: Tuple[int, int] = (48, 80),
) -> Tuple[CoreConfig, CoreConfig]:
    """Statically partition ``base`` between the A- and R-streams."""
    r_width = base.issue_width - a_width
    if a_width < 1 or r_width < 1:
        raise ValueError("both partitions need at least one issue slot")
    a_rob, r_rob = rob_split
    if a_rob + r_rob > base.rob_size:
        raise ValueError("ROB split exceeds the shared ROB")
    a_core = replace(
        base, name=f"SMT-A({a_rob}x{a_width})", rob_size=a_rob,
        dispatch_width=a_width, issue_width=a_width, retire_width=a_width,
    )
    r_core = replace(
        base, name=f"SMT-R({r_rob}x{r_width})", rob_size=r_rob,
        dispatch_width=r_width, issue_width=r_width, retire_width=r_width,
    )
    return a_core, r_core


def smt_slipstream_config(
    base: CoreConfig = SS_128x8,
    a_width: int = 3,
    rob_split: Tuple[int, int] = (48, 80),
    **overrides,
) -> SlipstreamConfig:
    """A SlipstreamConfig modelling the statically-partitioned SMT."""
    a_core, r_core = smt_partition(base, a_width, rob_split)
    return SlipstreamConfig(core=base, a_core=a_core, r_core=r_core,
                            **overrides)
