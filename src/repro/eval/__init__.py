"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.eval.models` — the three processor models of section 5
  (SS(64x4), SS(128x8), CMP(2x64x4)) with a per-process result cache so
  experiments sharing runs (Figure 6 / Figure 8 / Table 3) pay once.
* :mod:`repro.eval.experiments` — one function per paper artifact:
  ``table1`` … ``table3``, ``figure6`` … ``figure8``, plus the fault
  coverage study and the ablations called out in DESIGN.md.
* :mod:`repro.eval.reporting` — paper-style text rendering.
"""

from repro.eval.models import (
    ModelRuns,
    run_baseline,
    run_big_core,
    run_slipstream_model,
    clear_cache,
)
from repro.eval.experiments import (
    table1,
    table2,
    table3,
    figure6,
    figure7,
    figure8,
    fault_coverage_study,
)
from repro.eval.reporting import render_table, render_bar_series

__all__ = [
    "ModelRuns",
    "run_baseline",
    "run_big_core",
    "run_slipstream_model",
    "clear_cache",
    "table1",
    "table2",
    "table3",
    "figure6",
    "figure7",
    "figure8",
    "fault_coverage_study",
    "render_table",
    "render_bar_series",
]
