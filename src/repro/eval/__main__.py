"""Generate the full experiment report (EXPERIMENTS.md content).

Run:  python -m repro.eval [scale] [--jobs N] [--bench-out PATH]
Or:   python -m repro.eval serve [--port N] [--backend NAME] ...

Regenerates every table and figure of the paper's evaluation plus the
fault study and ablations, and prints a markdown report with
paper-vs-measured columns.

The underlying simulations are enumerated as jobs, deduplicated, fanned
out over ``--jobs`` workers and cached persistently under
``.cache/repro-eval/`` (see :mod:`repro.eval.runner`); a warm re-run
performs zero simulations.  Timing of each pass is written to
``BENCH_runner.json``.

The ``serve`` subcommand instead starts the eval-as-a-service daemon
(:mod:`repro.eval.serve`): a local HTTP/JSON API over the same job
machinery, sharing one cache root and one worker pool across many
concurrent clients.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.obs.session import ENV_ENABLE, ENV_TRACE_DIR

from repro.core.removal import CATEGORIES
from repro.eval import models
from repro.eval.backends import BACKENDS
from repro.eval.experiments import (
    ablation_confidence_threshold,
    ablation_delay_buffer,
    ablation_ir_scope,
    ablation_static_hints,
    fault_coverage_study,
    redundancy_frontier_study,
    figure6,
    ineffectuality_crosscheck,
    figure7,
    figure8,
    static_ceiling,
    table1,
    table2,
    table3,
)
from repro.eval.jobs import (
    ABLATION_BENCHMARK,
    ABLATION_CONFIDENCE_THRESHOLDS,
    ABLATION_DELAY_CAPACITIES,
    ABLATION_IR_SCOPES,
    FAULT_STUDY_BENCHMARK,
    FAULT_STUDY_POINTS,
    DiskCache,
    enumerate_artifact_jobs,
)
from repro.eval.metrics import arithmetic_mean
from repro.eval.profiling import DEFAULT_BENCH_PATH, write_bench
from repro.eval.resilience import RetryPolicy
from repro.eval.runner import ExperimentRunner


def _md_table(headers, rows):
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _backend_name(value: str) -> str:
    """Validate --backend: a registry name or remote[:HOST:PORT]."""
    if value in BACKENDS or value == "remote" or value.startswith("remote:"):
        return value
    raise argparse.ArgumentTypeError(
        f"unknown backend {value!r}; expected one of "
        f"{', '.join(sorted(BACKENDS))} or remote[:HOST:PORT]"
    )


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's evaluation artifacts.",
    )
    parser.add_argument("scale", nargs="?", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the simulation sweep "
                             "(default 1: inline)")
    parser.add_argument("--backend", type=_backend_name, default=None,
                        metavar="NAME",
                        help="worker backend for --jobs > 1: "
                             f"{', '.join(sorted(BACKENDS))}, or "
                             "remote[:HOST:PORT] to forward jobs to an "
                             "eval daemon (default spawn)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-job attempt wall-clock timeout; a stuck "
                             "job is killed and retried, not the pass")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retries per failing job, with exponential "
                             "backoff (default 2)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="delete the persistent cache before running")
    parser.add_argument("--bench-out", default=DEFAULT_BENCH_PATH,
                        metavar="PATH",
                        help="where to write the runner timing JSON "
                             f"(default {DEFAULT_BENCH_PATH}; '-' disables)")
    parser.add_argument("--no-report", action="store_true",
                        help="run the simulation sweep only (warm the "
                             "cache, write the bench file, skip the "
                             "markdown report)")
    parser.add_argument("--obs", action="store_true",
                        help="enable observability: per-job RunReports "
                             "folded into the bench JSON (sets "
                             f"{ENV_ENABLE}=1 for workers too)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write one JSONL event trace per simulated "
                             "job under DIR (implies --obs; sets "
                             f"{ENV_TRACE_DIR})")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.scale < 1:
        parser.error("scale must be >= 1")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    return args


def render_report(scale: int) -> str:
    """The markdown report body (reads through the warmed caches)."""
    out = []
    w = out.append

    w("# EXPERIMENTS — paper vs. measured\n")
    w("Generated by `python -m repro.eval` (workload scale "
      f"{scale}).  Absolute numbers are not expected to match a 2000-era\n"
      "custom simulator on real SPEC95 binaries; the *shape* — who wins,\n"
      "by roughly what factor, where the crossovers fall — is the\n"
      "reproduction target (see DESIGN.md).\n")
    w("Every simulation behind this report is a deduplicated, cacheable\n"
      "job: `python -m repro.eval --jobs N` fans the cold ones out over N\n"
      "processes and stores results under `.cache/repro-eval/`, keyed by\n"
      "job identity plus a hash of the simulator sources, so a warm\n"
      "re-run performs zero simulations (delete the directory or pass\n"
      "`--clear-cache` to start cold).  Each pass records its timing in\n"
      "`BENCH_runner.json`: `wall_clock_seconds` for the sweep,\n"
      "`sequential_estimate_seconds` (sum of per-job CPU time),\n"
      "`speedup_vs_sequential` = their ratio (`null` on warm passes),\n"
      "`cpu_count`/`workers` (so oversubscribed speedups read as such),\n"
      "`warm` (true when nothing was simulated) and a `per_job`\n"
      "provenance/timing breakdown with each job's queue delay.  Cold\n"
      "jobs are submitted longest-first using per-job durations learned\n"
      "across passes (`.cache/repro-eval/durations.json`).\n")
    w("Pass `--obs` to attach a per-job `RunReport` — removal fraction,\n"
      "IR-misp/1000, backpressure: the same values the tables below\n"
      "print — to each fresh `per_job` row, and `--trace-dir DIR` to\n"
      "additionally write one JSONL event trace per simulated job\n"
      "(`python -m repro.obs summarize|diff|validate` reads them back).\n"
      "Instrumentation is behavior-neutral: every number in this report\n"
      "is bit-identical with observability on or off (DESIGN.md §7.6).\n")
    w("Both fast paths behind these numbers are opt-out and\n"
      "identity-checked in CI: `REPRO_COMPILED=0` falls back to the\n"
      "interpreted execution engine (§7.8, `BENCH_perf_smoke.json`) and\n"
      "`REPRO_COMPILED_TIMING=0` to the scalar per-instruction scheduler\n"
      "(§7.9, `BENCH_timing.json` — ~1.7× on the superscalar baseline,\n"
      "parity on the already-inlined slipstream loops, timestamps\n"
      "identical either way).  Neither flag enters config fingerprints,\n"
      "so toggling them never invalidates cached results.\n")

    # Table 1 -----------------------------------------------------------
    w("## Table 1: benchmarks\n")
    rows = [
        (r["benchmark"], r["paper_input"], r["analog"],
         f'{r["instr_count"]:,}', f'{r["paper_instr_count_millions"]}M')
        for r in table1(scale)
    ]
    w(_md_table(
        ["benchmark", "input (paper)", "analog", "instr. (ours)",
         "instr. (paper)"], rows))
    w("\nOur analogs run at roughly 1/1000 the paper's dynamic sizes —"
      "\nlarge enough to train the predictors past the confidence"
      "\nthreshold of 32, small enough for pure Python.\n")

    # Table 2 -----------------------------------------------------------
    w("## Table 2: microarchitecture configuration\n")
    config = table2()
    for section, entries in config.items():
        w(f"**{section}**\n")
        w(_md_table(["parameter", "value"],
                    [(k, v) for k, v in entries.items()]))
        w("")

    # Figure 6 ----------------------------------------------------------
    w("## Figure 6: CMP(2x64x4) IPC improvement over SS(64x4)\n")
    f6 = figure6(scale)
    rows = [
        (r["benchmark"], f'{r["base_ipc"]:.2f}', f'{r["slip_ipc"]:.2f}',
         f'{r["gain_pct"]:+.1f}%', f'{r["paper_gain_pct"]:+.1f}%')
        for r in f6
    ]
    avg = arithmetic_mean([r["gain_pct"] for r in f6])
    w(_md_table(["benchmark", "SS(64x4) IPC", "CMP IPC", "gain (ours)",
                 "gain (paper)"], rows))
    w(f"\nAverage gain: **{avg:+.1f}%** (paper: +7%).  Shape: m88ksim and"
      "\nperl are the big winners, vortex/li/gcc moderate, and the"
      "\nchaotic/low-removal trio (compress, go, jpeg) flat — matching the"
      "\npaper's ordering.\n")

    # Figure 7 ----------------------------------------------------------
    w("## Figure 7: SS(128x8) IPC improvement over SS(64x4)\n")
    f7 = figure7(scale)
    rows = [
        (r["benchmark"], f'{r["base_ipc"]:.2f}', f'{r["big_ipc"]:.2f}',
         f'{r["gain_pct"]:+.1f}%')
        for r in f7
    ]
    big_avg = arithmetic_mean([r["gain_pct"] for r in f7])
    w(_md_table(["benchmark", "SS(64x4) IPC", "SS(128x8) IPC", "gain"], rows))
    w(f"\nAverage gain: **{big_avg:+.1f}%** (paper: +28%).  As in the paper,"
      f"\nthe slipstream CMP achieves a sizeable fraction"
      f" ({avg / big_avg:.2f}; paper ~0.25) of the big core's gain while"
      "\nusing two small cores.\n")

    # Figure 8 ----------------------------------------------------------
    for mode, title in (("full", "top: full removal"),
                        ("branch_only", "bottom: branch-only removal")):
        w(f"## Figure 8 ({title})\n")
        f8 = figure8(mode, scale)
        headers = ["benchmark", "total"] + list(CATEGORIES)
        rows = []
        for r in f8:
            row = [r["benchmark"], f'{100 * r["total_fraction"]:.1f}%']
            row += [f'{100 * r["categories"].get(c, 0):.1f}' for c in CATEGORIES]
            rows.append(tuple(row))
        w(_md_table(headers, rows))
        if mode == "full":
            w("\nPaper totals: m88ksim ~48%, perl 20%, vortex 16%, li 10%,"
              "\ngcc 8%, others ≤8%.  Ours preserve the ordering with"
              "\nm88ksim far ahead, dominated by SV and propagated chains.\n")
        else:
            w("\nAs in the paper, removing only branches collapses"
              "\nm88ksim's fraction (its removal is ineffectual-write"
              "\ndominated) and leaves only BR / P: BR categories.\n")

    # Table 3 -----------------------------------------------------------
    w("## Table 3: misprediction measurements\n")
    t3 = table3(scale)
    rows = [
        (r["benchmark"],
         f'{r["ss_ipc"]:.2f}', f'{r["paper_ss_ipc"]:.2f}',
         f'{r["ss_misp_per_1000"]:.2f}', f'{r["paper_misp_per_1000"]:.1f}',
         f'{r["cmp_misp_per_1000"]:.2f}',
         f'{r["ir_misp_per_1000"]:.3f}',
         f'{r["avg_ir_penalty"]:.1f}' if r["avg_ir_penalty"] else "-")
        for r in t3
    ]
    w(_md_table(
        ["benchmark", "IPC", "IPC (paper)", "misp/1000", "misp/1000 (paper)",
         "CMP misp/1000", "IR-misp/1000", "avg IR penalty"], rows))
    w("\nAs in the paper: instruction removal succeeds exactly where"
      "\nbranch prediction succeeds; slipstreaming leaves the branch"
      "\nmisprediction rate essentially unchanged; IR-mispredictions are"
      "\nrare (paper: <0.05/1000) and their penalty sits near the 21-cycle"
      "\nminimum (paper: 22-26).\n")

    # Static/dynamic ineffectuality cross-check -------------------------
    w("## Static/dynamic ineffectuality cross-check\n")
    xrows = ineffectuality_crosscheck(scale)
    rows = [
        (r["benchmark"], f'{r["retired"]:,}', r["static_dead_pcs"],
         r["must_live_pcs"], f'{r["dead_selected"]:,}/{r["dead_executed"]:,}',
         f'{r["instance_agreement"]:.1%}', f'{r["pc_coverage"]:.1%}',
         r["contradictions"], "yes" if r["sound"] else "**NO**")
        for r in xrows
    ]
    w(_md_table(
        ["benchmark", "retired", "dead PCs", "must-live PCs",
         "dead classified/executed", "instance agreement", "PC coverage",
         "contradictions", "sound"], rows))
    w("\nThe static analyzer (`repro.analysis`) classifies every register"
      "\nwrite as dead / must-live / partial; the IR-detector's dynamic"
      "\nverdicts are checked against it.  Agreement below 100% is the"
      "\ndetector's finite analysis scope (a dead value overwritten only"
      "\nafter its trace leaves the 8-trace scope is legitimately missed);"
      "\ncontradictions must be zero — any statically-dead write observed"
      "\nreferenced, or WW verdict on a must-live write, is a soundness"
      "\nbug.\n")

    # Static ineffectuality ceiling -------------------------------------
    w("## Static ineffectuality ceiling (abstract interpretation)\n")
    crows = static_ceiling(scale)
    rows = [
        (r["benchmark"], f'{r["retired"]:,}', r["proven_pcs"],
         r["dead_write_pcs"], r["silent_store_pcs"], r["pinned_branch_pcs"],
         f'{r["proven_fraction"]:.1%}', f'{r["dynamic_removal"]:.1%}',
         f'{r["ceiling_fraction"]:.1%}',
         "yes" if r["in_bounds"] else "**NO**")
        for r in crows
    ]
    w(_md_table(
        ["benchmark", "retired", "proven PCs", "dead writes",
         "silent stores", "pinned branches", "proven floor",
         "dynamic removal", "ceiling", "in bounds"], rows))
    w("\nThe interval abstract interpreter (`repro.analysis.absint`)"
      "\nproves per-PC facts that hold in *every* execution: dead"
      "\nwrites/stores, silent stores, single-direction branches.  The"
      "\nproven floor weights those PCs by the execution profile; the"
      "\nceiling excludes only the never-removable classes (indirect"
      "\njumps, OUT, HALT).  The dynamic slipstream removal fraction must"
      "\nfall at or below the ceiling on every workload"
      "\n(`python -m repro.analysis ceiling` prints the same reports).\n")

    w("**Static-hint seeding** (opt-in `SlipstreamConfig(static_hints=True)`)\n")
    hrows = ablation_static_hints()
    rows = [
        (r["benchmark"], f'{r["base_removal"]:.3f}', f'{r["hint_removal"]:.3f}',
         f'{r["removal_delta"]:+.3f}', f'{r["base_ipc"]:.2f}',
         f'{r["hint_ipc"]:.2f}', f'{r["ipc_delta_pct"]:+.1f}%',
         f'{r["base_ir_misp"]}/{r["hint_ir_misp"]}')
        for r in hrows
    ]
    w(_md_table(
        ["benchmark", "removal (base)", "removal (hints)", "Δremoval",
         "IPC (base)", "IPC (hints)", "ΔIPC", "IR-misp base/hints"], rows))
    w("\nSeeding the per-PC removal table with the statically-proven"
      "\nfacts (pinned at the confidence threshold, exempt from ir-vec"
      "\nverification) removes proven-ineffectual instances from the"
      "\nfirst dynamic instance instead of after the training warm-up."
      "\nThe mode defaults off; the golden suite is bit-identical with"
      "\nit off.\n")

    # Fault study -------------------------------------------------------
    w("## Section 3: fault-injection study\n")
    campaign = fault_coverage_study(benchmark=FAULT_STUDY_BENCHMARK,
                                    points=FAULT_STUDY_POINTS)
    rows = []
    for site, outcomes in campaign.by_site().items():
        for outcome, count in sorted(outcomes.items(), key=lambda kv: kv[0].value):
            rows.append((site.value, outcome.value, count))
    w(_md_table(["fault site", "outcome", "count"], rows))
    coverage = ("n/a (no harmful faults fired)" if campaign.coverage is None
                else f"{campaign.coverage:.2f}")
    w(f"\nCoverage of harmful faults: **{coverage}**."
      "\nA-stream faults and redundantly-executed R-stream faults are"
      "\ntransparently detected and recovered (scenario #1 / #3);"
      "\nbypassed-region and architectural R-stream faults can escape"
      "\n(scenario #2; the paper's partial-coverage caveat and its ECC"
      "\nrecommendation).  `tests/test_fault_injection.py` demonstrates"
      "\nthe harmful scenario-2 variant explicitly.\n")

    # Coverage-vs-throughput frontier --------------------------------
    w("### Coverage-vs-throughput frontier (redundancy modes)\n")
    frontier = redundancy_frontier_study(scale=scale)
    rows = []
    for r in frontier.frontier():
        cov = "n/a" if r["coverage"] is None else f'{r["coverage"]:.2f}'
        ipc = "n/a" if r["throughput_ipc"] is None else f'{r["throughput_ipc"]:.2f}'
        rel = "n/a" if r["relative_ipc"] is None else f'{r["relative_ipc"]:.2f}'
        lat = ("-" if r["mean_detect_latency"] is None
               else f'{r["mean_detect_latency"]:.1f}')
        rows.append((r["mode"], r["n_streams"], r["points"], r["harmful"],
                     cov, ipc, rel, lat))
    w(_md_table(["mode", "streams", "points", "harmful", "coverage",
                 "IPC", "useful IPC/context vs SS(64x4)",
                 "mean detect latency"], rows))
    w("\nEach redundancy mode buys fault coverage with throughput:"
      "\nslipstream detects what the R-stream redundantly executes;"
      "\n`tmr` outvotes any single-stream strike with zero rollbacks at"
      "\nroughly one third the per-context useful throughput; `replay`"
      "\nre-executes only sampled windows, so escapes rise as the scrub"
      "\ninterval stretches; `decorrelated` shifts the streams'"
      "\naddress/register layouts so a layout-correlated double strike"
      "\ncan no longer silently agree (DESIGN.md §7.12).\n")

    # Ablations ---------------------------------------------------------
    w(f"## Ablations (DESIGN.md E-AB1, on the {ABLATION_BENCHMARK} analog)\n")
    w("**Confidence threshold** (paper §2.1.1)\n")
    rows = [(r["threshold"], f'{r["removal_fraction"]:.3f}',
             f'{r["ir_misp_per_1000"]:.3f}', f'{r["ipc"]:.2f}')
            for r in ablation_confidence_threshold(
                ABLATION_BENCHMARK, ABLATION_CONFIDENCE_THRESHOLDS)]
    w(_md_table(["threshold", "removal", "IR-misp/1000", "IPC"], rows))
    w("\n**Delay-buffer capacity** (paper §2.2)\n")
    rows = [(r["capacity"], r["backpressure_events"], f'{r["ipc"]:.2f}')
            for r in ablation_delay_buffer(
                ABLATION_BENCHMARK, ABLATION_DELAY_CAPACITIES)]
    w(_md_table(["capacity", "backpressure events", "IPC"], rows))
    w("\n**IR-detector scope** (paper §2.1.2)\n")
    rows = [(r["scope_traces"], f'{r["removal_fraction"]:.3f}', f'{r["ipc"]:.2f}')
            for r in ablation_ir_scope(ABLATION_BENCHMARK, ABLATION_IR_SCOPES)]
    w(_md_table(["scope (traces)", "removal", "IPC"], rows))
    w("\nLower confidence thresholds remove more but mispredict removal"
      "\nmore often; small delay buffers throttle the A-stream; a"
      "\none-trace detector scope misses the cross-trace kills that"
      "\nexpose ineffectual writes.\n")

    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> None:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["serve"]:
        from repro.eval import serve

        raise SystemExit(serve.main(argv[1:]))
    args = parse_args(argv)
    # Observability configuration travels through the environment so
    # that ProcessPoolExecutor workers inherit it.
    if args.trace_dir:
        os.environ[ENV_TRACE_DIR] = args.trace_dir
    if args.obs or args.trace_dir:
        os.environ[ENV_ENABLE] = "1"
    if args.clear_cache:
        removed = DiskCache().clear()
        print(f"[repro.eval] cleared {removed} cached result(s)",
              file=sys.stderr)
    if args.no_cache:
        models.configure_disk_cache(enabled=False)

    specs = enumerate_artifact_jobs(args.scale)
    policy = RetryPolicy(timeout_seconds=args.timeout,
                         max_retries=args.retries)
    runner = ExperimentRunner(jobs=args.jobs,
                              use_disk_cache=not args.no_cache,
                              policy=policy,
                              backend=args.backend)
    stats = runner.run(specs)
    resilience = ""
    if stats.retried or stats.timeouts or stats.pool_rebuilds:
        resilience = (f" ({stats.retried} retried, {stats.timeouts} "
                      f"timeouts, {stats.pool_rebuilds} pool rebuilds)")
    print(
        f"[repro.eval] {stats.deduplicated} unique jobs "
        f"({stats.requested} requested): {stats.simulated} simulated, "
        f"{stats.disk_hits} disk hits, {stats.memory_hits} memory hits "
        f"in {stats.wall_seconds:.1f}s with --jobs {stats.jobs}"
        f"{resilience}",
        file=sys.stderr,
    )

    report_seconds = None
    if not args.no_report:
        t0 = time.perf_counter()
        report = render_report(args.scale)
        report_seconds = time.perf_counter() - t0
        print(report)

    if args.bench_out != "-":
        path = write_bench(stats, args.scale, args.bench_out, report_seconds)
        print(f"[repro.eval] wrote {path}", file=sys.stderr)


if __name__ == "__main__":
    main()
