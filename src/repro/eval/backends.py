"""Pluggable worker backends: where job attempts actually execute.

The experiment runner (:mod:`repro.eval.runner`) and the eval daemon
(:mod:`repro.eval.serve`) both fan :class:`~repro.eval.jobs.JobSpec`
attempts out over a pool of workers.  Historically that pool was a
hard-wired ``ProcessPoolExecutor``; this module abstracts it behind
:class:`WorkerBackend` so the execution substrate is a deployment
choice:

* :class:`SpawnedBackend` — a ``ProcessPoolExecutor``.  True
  parallelism, per-worker ``SIGALRM`` timeouts (each worker's main
  thread runs the attempt), and worker death is a *recoverable* event
  the runner's crash machinery handles (``can_crash``).
* :class:`InProcessBackend` — a ``ThreadPoolExecutor``.  No pickling,
  no process startup, shared in-process memos — the right degradation
  on a 1-CPU box where ``BENCH_runner.json`` shows
  ``speedup_vs_sequential < 1``: dedup and cache hits are the win, not
  parallelism.  Attempts run off the main thread, so per-attempt
  timeouts use :func:`repro.eval.jobs.run_attempt`'s monotonic
  post-hoc deadline (a wedged job cannot be interrupted; see that
  docstring), and workers cannot be killed (``can_kill_workers`` is
  False — driver-side hard deadlines are disabled).
* :class:`InlineBackend` — executes in the caller's thread at
  ``submit`` time.  The degenerate reference backend: tests implement
  the abstraction against it, and it proves any future backend — a
  remote stub forwarding specs to another machine, say — only needs
  the same five methods.
* ``RemoteBackend`` (:mod:`repro.eval.remote`) — exactly that remote
  stub, grown up: forwards specs to an eval daemon over its NDJSON
  wire protocol and verifies every result's sha256 digest locally.
  Named ``"remote"`` / ``"remote:HOST:PORT"`` here but defined in its
  own module (it depends on :mod:`repro.eval.serve`, which depends on
  this one), so :func:`resolve_backend` imports it lazily.

Backends are deliberately *not* part of a job's identity: the same
spec produces the same cached result whichever backend computed it.
"""

from __future__ import annotations

import abc
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Optional, Type, Union

from repro.eval.jobs import JobSpec, run_attempt


class WorkerBackend(abc.ABC):
    """One pool of workers executing bounded job attempts.

    Lifecycle: :meth:`start` brings up ``workers`` workers,
    :meth:`submit` hands one attempt to the pool and returns a
    ``concurrent.futures.Future`` resolving to
    :func:`repro.eval.jobs.timed_simulate`'s tuple (or raising what the
    attempt raised), :meth:`shutdown` tears the pool down.  After a
    crash (``broken()``), callers shut down and :meth:`start` again.
    """

    #: Registry/CLI name of the backend ("spawn", "thread", "inline").
    name: str = "?"
    #: Worker death is a distinct recoverable event (process pools):
    #: futures may raise ``BrokenExecutor`` and the pool needs a rebuild.
    can_crash: bool = False
    #: :meth:`kill_workers` actually terminates workers, so a
    #: driver-side hard deadline can be enforced against a wedged job.
    can_kill_workers: bool = False

    def __init__(self) -> None:
        self._workers = 0

    @property
    def workers(self) -> int:
        """Workers the running pool was started with (0 when stopped)."""
        return self._workers

    @property
    @abc.abstractmethod
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`shutdown`."""

    @abc.abstractmethod
    def start(self, workers: int) -> None:
        """Bring up ``workers`` workers (must not be running)."""

    @abc.abstractmethod
    def submit(self, spec: JobSpec,
               timeout_seconds: Optional[float] = None) -> "Future":
        """One bounded attempt at ``spec``; resolves like
        :func:`repro.eval.jobs.run_attempt`."""

    def broken(self) -> bool:
        """True when the pool died and must be shut down and restarted."""
        return False

    def kill_workers(self) -> None:
        """Forcibly terminate every worker (no-op unless
        ``can_kill_workers``); in-flight futures then resolve broken."""

    @abc.abstractmethod
    def shutdown(self, wait: bool = False) -> None:
        """Tear the pool down; pending futures are cancelled."""


class InlineBackend(WorkerBackend):
    """Execute attempts synchronously in the calling thread.

    ``submit`` returns an already-resolved future.  Exists as the
    reference implementation of the abstraction (and as the cheapest
    possible degradation: zero pool overhead, pure dedup + cache).
    """

    name = "inline"

    def __init__(self) -> None:
        super().__init__()
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, workers: int) -> None:
        self._workers = 1
        self._running = True

    def submit(self, spec: JobSpec,
               timeout_seconds: Optional[float] = None) -> "Future":
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(run_attempt(spec, timeout_seconds))
        except BaseException as exc:  # noqa: BLE001 - future carries it
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = False) -> None:
        self._workers = 0
        self._running = False


class _ExecutorBackend(WorkerBackend):
    """Shared plumbing for ``concurrent.futures`` executor backends."""

    def __init__(self) -> None:
        super().__init__()
        self._executor: Optional[object] = None

    @property
    def running(self) -> bool:
        return self._executor is not None

    def _make_executor(self, workers: int):
        raise NotImplementedError

    def start(self, workers: int) -> None:
        if self._executor is not None:
            raise RuntimeError(f"{self.name} backend already running")
        self._executor = self._make_executor(workers)
        self._workers = workers

    def submit(self, spec: JobSpec,
               timeout_seconds: Optional[float] = None) -> "Future":
        if self._executor is None:
            raise RuntimeError(f"{self.name} backend is not running")
        return self._executor.submit(run_attempt, spec, timeout_seconds)

    def shutdown(self, wait: bool = False) -> None:
        executor, self._executor = self._executor, None
        self._workers = 0
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)


class InProcessBackend(_ExecutorBackend):
    """A thread pool inside the calling process.

    The attempt's per-job timeout degrades to the post-hoc monotonic
    deadline (threads cannot receive ``SIGALRM``), and a wedged attempt
    cannot be killed — callers needing a hard guarantee against hangs
    use :class:`SpawnedBackend`.
    """

    name = "thread"

    def _make_executor(self, workers: int):
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-eval-worker"
        )


class SpawnedBackend(_ExecutorBackend):
    """A pool of spawned worker processes (the historical runner pool)."""

    name = "spawn"
    can_crash = True
    can_kill_workers = True

    def _make_executor(self, workers: int):
        return ProcessPoolExecutor(max_workers=workers)

    def broken(self) -> bool:
        executor = self._executor
        if executor is None:
            return False
        return getattr(executor, "_broken", False) is not False

    def kill_workers(self) -> None:
        processes = getattr(self._executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except OSError:
                pass


#: Name → class, the CLI/registry surface.
BACKENDS: Dict[str, Type[WorkerBackend]] = {
    backend.name: backend
    for backend in (SpawnedBackend, InProcessBackend, InlineBackend)
}


def resolve_backend(
    backend: Union[str, WorkerBackend, None], default: str = "spawn"
) -> WorkerBackend:
    """A ready-to-start backend instance from a name, an instance, or
    None (the default name).  Unknown names raise ``ValueError``.

    ``"remote"`` (daemon URL from ``$REPRO_EVAL_REMOTE``) and
    ``"remote:HOST:PORT"`` resolve to :class:`repro.eval.remote.
    RemoteBackend`, imported lazily to keep this module free of the
    serve/remote dependency cycle.
    """
    if backend is None:
        backend = default
    if isinstance(backend, WorkerBackend):
        return backend
    if backend == "remote" or backend.startswith("remote:"):
        from repro.eval.remote import RemoteBackend

        _, _, url = backend.partition(":")
        return RemoteBackend(url=url or None)
    try:
        return BACKENDS[backend]()
    except KeyError:
        raise ValueError(
            f"unknown worker backend {backend!r}; "
            f"expected one of {sorted(BACKENDS)} or 'remote[:HOST:PORT]'"
        ) from None


__all__ = [
    "BACKENDS",
    "InlineBackend",
    "InProcessBackend",
    "SpawnedBackend",
    "WorkerBackend",
    "resolve_backend",
]
