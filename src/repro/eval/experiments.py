"""One function per paper artifact (tables 1-3, figures 6-8, plus the
section 3 fault study and the DESIGN.md ablations).

Every function returns plain data structures (lists of dicts) so that
benches, tests and scripts can assert on them; use
:mod:`repro.eval.reporting` to render them in the paper's shape.

Paper-expected values are embedded alongside, so EXPERIMENTS.md and the
bench output can show paper-vs-measured directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.removal import CATEGORIES
from repro.core.slipstream import SlipstreamConfig
from repro.eval.models import (
    run_all_models,
    run_baseline,
    run_big_core,
    run_ceiling,
    run_crosscheck,
    run_fault_study,
    run_instruction_count,
    run_slipstream_model,
)
from repro.fault.coverage import CampaignResult
from repro.fault.injector import FaultSite
from repro.uarch.config import SS_128x8, SS_64x4
from repro.workloads.suite import benchmark_suite

BENCHMARKS = [b.name for b in benchmark_suite()]

#: Paper numbers for side-by-side comparison (Table 1, Table 3, Figures
#: 6-8), transcribed from the paper text.
PAPER = {
    "instr_count_millions": {
        "compress": 248, "gcc": 117, "go": 133, "jpeg": 166,
        "li": 202, "m88ksim": 121, "perl": 108, "vortex": 101,
    },
    "base_ipc": {
        "compress": 1.72, "gcc": 2.69, "go": 2.15, "jpeg": 3.24,
        "li": 2.88, "m88ksim": 2.82, "perl": 3.08, "vortex": 3.24,
    },
    "base_misp_per_1000": {
        "compress": 16, "gcc": 6.4, "go": 11, "jpeg": 4.1,
        "li": 6.5, "m88ksim": 1.9, "perl": 2.0, "vortex": 1.1,
    },
    "slip_gain_pct": {
        "compress": 0.5, "gcc": 4, "go": 0.5, "jpeg": 0.5,
        "li": 7, "m88ksim": 20, "perl": 16, "vortex": 7,
    },
    "big_gain_pct_avg": 28,
    "slip_gain_pct_avg": 7,
    "removal_fraction": {
        "compress": 0.08, "gcc": 0.08, "go": 0.04, "jpeg": 0.05,
        "li": 0.10, "m88ksim": 0.48, "perl": 0.20, "vortex": 0.16,
    },
    "ir_misp_per_1000_max": 0.05,
    "ir_penalty_range": (21, 26),
}


# ----------------------------------------------------------------------
# Table 1: benchmarks.
# ----------------------------------------------------------------------

def table1(scale: int = 1) -> List[Dict]:
    """Benchmark, input dataset (paper's), analog, instruction count."""
    rows = []
    for bench in benchmark_suite():
        count = run_instruction_count(bench.name, scale)
        rows.append(
            {
                "benchmark": bench.name,
                "paper_input": bench.paper_input,
                "analog": bench.analog,
                "instr_count": count,
                "paper_instr_count_millions": PAPER["instr_count_millions"][bench.name],
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 2: microarchitecture configuration.
# ----------------------------------------------------------------------

def table2() -> Dict[str, Dict]:
    """The microarchitecture configuration, as configured dataclasses."""
    slip = SlipstreamConfig()
    return {
        "single_processor": {
            "fetch": f"up to {SS_64x4.fetch_width} instructions/cycle, "
                     "past multiple not-taken branches",
            "icache": f"{SS_64x4.icache.size_bytes // 1024}kB/"
                      f"{SS_64x4.icache.assoc}-way/LRU, "
                      f"{SS_64x4.icache.line_bytes // 4}-instruction lines, "
                      f"{SS_64x4.icache.miss_penalty}-cycle miss",
            "dcache": f"{SS_64x4.dcache.size_bytes // 1024}kB/"
                      f"{SS_64x4.dcache.assoc}-way/LRU, "
                      f"{SS_64x4.dcache.line_bytes}B lines, "
                      f"{SS_64x4.dcache.miss_penalty}-cycle miss",
            "rob": SS_64x4.rob_size,
            "width": SS_64x4.issue_width,
            "big_core": f"{SS_128x8.rob_size}-entry ROB, {SS_128x8.issue_width}-wide",
        },
        "slipstream_components": {
            "trace_length": slip.trace_length,
            "ir_predictor": f"2^{slip.predictor.index_bits}-entry path-based "
                            f"({slip.predictor.path_depth}-deep history) + "
                            f"2^{slip.predictor.index_bits}-entry simple table",
            "confidence_threshold": slip.confidence_threshold,
            "ir_detector_scope": f"{slip.ir_scope_traces} traces "
                                 f"({slip.ir_scope_traces * slip.trace_length} instructions)",
            "delay_buffer": f"{slip.delay_buffer_capacity} instruction entries",
            "recovery": "5-cycle startup + 4 register restores/cycle "
                        "+ 4 memory restores/cycle (21-cycle minimum)",
        },
    }


# ----------------------------------------------------------------------
# Figure 6 / Figure 7: IPC improvements.
# ----------------------------------------------------------------------

def figure6(scale: int = 1, benchmarks: Optional[Sequence[str]] = None) -> List[Dict]:
    """% IPC improvement of CMP(2x64x4) over SS(64x4), per benchmark."""
    rows = []
    for name in benchmarks or BENCHMARKS:
        runs = run_all_models(name, scale)
        rows.append(
            {
                "benchmark": name,
                "base_ipc": runs.base.ipc,
                "slip_ipc": runs.slip.ipc,
                "gain_pct": runs.slip_gain,
                "paper_gain_pct": PAPER["slip_gain_pct"][name],
            }
        )
    return rows


def figure7(scale: int = 1, benchmarks: Optional[Sequence[str]] = None) -> List[Dict]:
    """% IPC improvement of SS(128x8) over SS(64x4), per benchmark."""
    rows = []
    for name in benchmarks or BENCHMARKS:
        base = run_baseline(name, scale)
        big = run_big_core(name, scale)
        rows.append(
            {
                "benchmark": name,
                "base_ipc": base.ipc,
                "big_ipc": big.ipc,
                "gain_pct": 100.0 * (big.ipc / base.ipc - 1.0),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 8: removal breakdown.
# ----------------------------------------------------------------------

def figure8(
    mode: str = "full",
    scale: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """Fraction of dynamic instructions removed from the A-stream,
    broken down into the BR/WW/SV/P:{...} categories.

    ``mode="full"`` is the upper graph (all triggers); ``mode="branch_only"``
    is the lower graph (only branches and their computation chains).
    """
    if mode == "full":
        triggers: Tuple[str, ...] = ("BR", "WW", "SV")
    elif mode == "branch_only":
        triggers = ("BR",)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    rows = []
    for name in benchmarks or BENCHMARKS:
        result = run_slipstream_model(name, scale, removal_triggers=triggers)
        fractions = {
            category: result.removed_by_category.get(category, 0) / result.retired
            for category in CATEGORIES
        }
        rows.append(
            {
                "benchmark": name,
                "mode": mode,
                "total_fraction": result.removal_fraction,
                "categories": fractions,
                "paper_total_fraction": PAPER["removal_fraction"].get(name),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 3: misprediction measurements.
# ----------------------------------------------------------------------

def table3(scale: int = 1, benchmarks: Optional[Sequence[str]] = None) -> List[Dict]:
    """Base IPC, branch misp/1000 (SS and CMP), IR-misp/1000, average
    IR-misprediction penalty."""
    rows = []
    for name in benchmarks or BENCHMARKS:
        base = run_baseline(name, scale)
        slip = run_slipstream_model(name, scale)
        rows.append(
            {
                "benchmark": name,
                "ss_ipc": base.ipc,
                "ss_misp_per_1000": base.mispredictions_per_1000,
                "cmp_misp_per_1000": slip.mispredictions_per_1000,
                "ir_misp_per_1000": slip.ir_mispredictions_per_1000,
                "avg_ir_penalty": slip.avg_ir_penalty,
                "paper_ss_ipc": PAPER["base_ipc"][name],
                "paper_misp_per_1000": PAPER["base_misp_per_1000"][name],
            }
        )
    return rows


# ----------------------------------------------------------------------
# Static/dynamic ineffectuality cross-check (repro.analysis vs the
# IR-detector; no paper analog — an internal validation artifact).
# ----------------------------------------------------------------------

def ineffectuality_crosscheck(
    scale: int = 1, benchmarks: Optional[Sequence[str]] = None
) -> List[Dict]:
    """Per-benchmark agreement between the static write classification
    and the dynamic IR-detector (see :mod:`repro.analysis.ineffectual`).

    ``contradictions`` must be 0 everywhere: a non-zero count means
    either the static analysis claimed a dead write that was observed
    referenced, or the detector issued a WW verdict on a write the
    static analysis proved must-live — both are soundness bugs.
    """
    rows = []
    for name in benchmarks or BENCHMARKS:
        result = run_crosscheck(name, scale)
        rows.append(
            {
                "benchmark": name,
                "retired": result.retired,
                "static_dead_pcs": len(result.static.dead_pcs)
                + len(result.static.dead_store_pcs),
                "must_live_pcs": len(result.static.must_live_pcs),
                "dead_executed": result.dead_instances_executed,
                "dead_selected": result.dead_instances_selected,
                "instance_agreement": result.instance_agreement,
                "pc_coverage": result.pc_coverage,
                "contradictions": len(result.static_unsound_pcs)
                + len(result.detector_contradiction_pcs),
                "sound": result.sound,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Static ineffectuality ceiling (repro.analysis.absint/ceiling; no paper
# analog — bounds the removal opportunity the dynamic machinery chases).
# ----------------------------------------------------------------------

def static_ceiling(
    scale: int = 1, benchmarks: Optional[Sequence[str]] = None
) -> List[Dict]:
    """Per-benchmark static removal bounds vs measured dynamic removal.

    ``proven_fraction`` is the *floor*: dynamic instances at PCs the
    abstract interpreter proved ineffectual (removable in every
    execution).  ``ceiling_fraction`` is the *upper bound*: everything
    except the never-removable classes (indirect jumps, OUT, HALT).
    The default slipstream run's ``removal_fraction`` must land inside
    ``[0, ceiling]`` — ``in_bounds`` False is a soundness bug.
    """
    rows = []
    for name in benchmarks or BENCHMARKS:
        report = run_ceiling(name, scale)
        slip = run_slipstream_model(name, scale)
        static = report.static
        proven = len(static.proven_pcs)
        rows.append(
            {
                "benchmark": name,
                "retired": report.retired,
                "proven_pcs": proven,
                "dead_write_pcs": len(static.dead_write_pcs)
                + len(static.dead_store_pcs),
                "silent_store_pcs": len(static.silent_store_pcs),
                "pinned_branch_pcs": len(static.branch_always_pcs)
                + len(static.branch_never_pcs),
                "loop_bounds": len(static.loop_trip_bounds),
                "proven_fraction": report.proven_fraction,
                "ceiling_fraction": report.ceiling_fraction,
                "dynamic_removal": slip.removal_fraction,
                "in_bounds": slip.removal_fraction
                <= report.ceiling_fraction + 1e-9,
            }
        )
    return rows


def ablation_static_hints(
    benchmarks: Optional[Sequence[str]] = None,
    scale: int = 1,
) -> List[Dict]:
    """Default slipstream vs the statically-seeded removal table
    (``SlipstreamConfig(static_hints=True)``): removal-rate and IPC
    deltas from pre-warming the per-PC predictor with proven facts."""
    from repro.eval.jobs import STATIC_HINT_BENCHMARKS

    rows = []
    for name in benchmarks or STATIC_HINT_BENCHMARKS:
        base = run_slipstream_model(name, scale)
        hinted = run_slipstream_model(
            name, scale, config=SlipstreamConfig(static_hints=True)
        )
        rows.append(
            {
                "benchmark": name,
                "base_removal": base.removal_fraction,
                "hint_removal": hinted.removal_fraction,
                "removal_delta": hinted.removal_fraction
                - base.removal_fraction,
                "base_ipc": base.ipc,
                "hint_ipc": hinted.ipc,
                "ipc_delta_pct": 100.0 * (hinted.ipc / base.ipc - 1.0)
                if base.ipc else 0.0,
                "base_ir_misp": base.ir_mispredictions,
                "hint_ir_misp": hinted.ir_mispredictions,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Section 3: fault coverage study (no table in the paper; the three
# scenarios made quantitative).
# ----------------------------------------------------------------------

def fault_coverage_study(
    benchmark: str = "m88ksim",
    scale: int = 1,
    points: int = 6,
    sites: Sequence[FaultSite] = (FaultSite.A_RESULT, FaultSite.R_TRANSIENT),
) -> CampaignResult:
    """A deterministic fault-injection campaign over one workload."""
    return run_fault_study(benchmark, scale, points, tuple(sites))


def redundancy_frontier_study(
    benchmarks: Optional[Sequence[str]] = None,
    points: Optional[int] = None,
    seed: Optional[int] = None,
    scale: int = 1,
):
    """The coverage-vs-throughput frontier: one seeded multi-mode
    campaign striking every :data:`~repro.core.modes.CAMPAIGN_MODES`
    entry, whose per-mode coverage / IPC / detection-latency rows the
    report renders (returns a
    :class:`~repro.fault.campaign.ScaledCampaignResult`)."""
    from repro.core.modes import CAMPAIGN_MODES
    from repro.eval.jobs import (
        FRONTIER_BENCHMARKS, FRONTIER_POINTS, FRONTIER_SEED,
    )
    from repro.fault.campaign import CampaignConfig, run_scaled_campaign

    config = CampaignConfig(
        benchmarks=tuple(benchmarks or FRONTIER_BENCHMARKS),
        scale=scale,
        points_per_benchmark=points if points is not None else FRONTIER_POINTS,
        seed=seed if seed is not None else FRONTIER_SEED,
        modes=CAMPAIGN_MODES,
    )
    result, _stats = run_scaled_campaign(config, jobs=1)
    return result


# ----------------------------------------------------------------------
# Ablations (DESIGN.md E-AB1): the design knobs section 2.1.3 and the
# conclusions discuss.
# ----------------------------------------------------------------------

def ablation_confidence_threshold(
    benchmark: str = "m88ksim",
    thresholds: Sequence[int] = (4, 16, 32, 128),
    scale: int = 1,
) -> List[Dict]:
    """Sweep the resetting-counter confidence threshold."""
    rows = []
    for threshold in thresholds:
        result = run_slipstream_model(
            benchmark, scale,
            config=SlipstreamConfig(confidence_threshold=threshold),
        )
        rows.append(
            {
                "threshold": threshold,
                "removal_fraction": result.removal_fraction,
                "ir_misp_per_1000": result.ir_mispredictions_per_1000,
                "ipc": result.ipc,
            }
        )
    return rows


def ablation_trace_length(
    benchmark: str = "m88ksim",
    lengths: Sequence[int] = (16, 32, 64),
    scale: int = 1,
) -> List[Dict]:
    """Sweep the trace length (R-DFG size)."""
    rows = []
    for length in lengths:
        result = run_slipstream_model(
            benchmark, scale, config=SlipstreamConfig(trace_length=length)
        )
        rows.append(
            {
                "trace_length": length,
                "removal_fraction": result.removal_fraction,
                "ipc": result.ipc,
            }
        )
    return rows


def ablation_delay_buffer(
    benchmark: str = "m88ksim",
    capacities: Sequence[int] = (32, 64, 256, 1024),
    scale: int = 1,
) -> List[Dict]:
    """Sweep the delay buffer capacity (A-stream lead distance)."""
    rows = []
    for capacity in capacities:
        result = run_slipstream_model(
            benchmark, scale,
            config=SlipstreamConfig(delay_buffer_capacity=capacity),
        )
        rows.append(
            {
                "capacity": capacity,
                "backpressure_events": result.delay_buffer_backpressure,
                "ipc": result.ipc,
            }
        )
    return rows


def ablation_ir_scope(
    benchmark: str = "m88ksim",
    scopes: Sequence[int] = (1, 4, 8, 16),
    scale: int = 1,
) -> List[Dict]:
    """Sweep the IR-detector analysis scope (kill window)."""
    rows = []
    for scope in scopes:
        result = run_slipstream_model(
            benchmark, scale, config=SlipstreamConfig(ir_scope_traces=scope)
        )
        rows.append(
            {
                "scope_traces": scope,
                "removal_fraction": result.removal_fraction,
                "ipc": result.ipc,
            }
        )
    return rows
