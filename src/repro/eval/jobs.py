"""Simulation jobs: hashable keys, the persistent result cache, and the
raw compute behind every cached experiment run.

The paper's artifact suite (Tables 1-3, Figures 6-8, the fault campaign
and the ablations) decomposes into independent simulation **jobs**, each
identified by a :class:`JobKey` — benchmark, model, workload scale,
removal-trigger set and a configuration fingerprint.  Several artifacts
share jobs (Figure 6, Figure 8 and Table 3 all consume the same default
CMP runs), so keys are hashable and deduplicatable.

Results are memoised at two levels:

* in-process, by :mod:`repro.eval.models` (a plain dict keyed by
  :class:`JobKey`);
* on disk, by :class:`DiskCache` — pickled results under
  ``.cache/repro-eval/`` keyed by the JobKey **plus a code-version
  fingerprint** (a hash of every ``repro`` source file), so editing the
  simulator automatically invalidates stale entries.  Corrupt or
  unreadable cache files are discarded, never fatal.  Entries are
  **sharded** by key-digest prefix (``root/ab/…``) so many concurrent
  clients — the eval service of :mod:`repro.eval.serve` multiplexes one
  root across tenants — never contend on a single directory; the flat
  pre-shard layout is still *read* (legacy entries keep hitting) while
  all writes go to the sharded layout, and :meth:`DiskCache.clear` /
  :meth:`DiskCache.prune_stale` walk both, sweeping orphaned ``*.tmp*``
  files abandoned by crashed writers along the way.

:func:`simulate` performs the actual simulation for a job and is a
module-level function, so :mod:`repro.eval.runner` can ship jobs to
``ProcessPoolExecutor`` workers.
"""

from __future__ import annotations

import itertools
import os
import pickle
import signal
import threading
import time
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import repro
from repro.analysis.ceiling import ceiling_report
from repro.analysis.ineffectual import cross_check
from repro.arch.functional import FunctionalSimulator
from repro.core.modes import decorrelated_config
from repro.core.slipstream import SlipstreamConfig, SlipstreamProcessor
from repro.eval.resilience import ChaosPlan, JobTimeout, execute_chaos
from repro.fault.coverage import (
    hang_budget,
    inject_one,
    inject_one_nstream,
    run_campaign,
)
from repro.fault.injector import FaultSite, TransientFault
from repro.fingerprint import canonical, fingerprint
from repro.obs import RunReport, build_report, job_observability
from repro.obs.session import Observability
from repro.uarch.config import SS_128x8, SS_64x4
from repro.uarch.core import SuperscalarCore
from repro.workloads.suite import benchmark_suite, get_benchmark

#: Default disk-cache location, overridable with $REPRO_EVAL_CACHE_DIR.
DEFAULT_CACHE_DIR = ".cache/repro-eval"

#: Sentinel distinguishing "cache miss" from a legitimately-None result.
MISS = object()

#: Count of actual simulations performed in this process (cache misses
#: that reached :func:`simulate`).  Tests hook this to assert that a
#: warm cache performs zero simulations.
_simulation_count = 0


def simulation_count() -> int:
    return _simulation_count


def reset_simulation_count() -> None:
    global _simulation_count
    _simulation_count = 0


# ----------------------------------------------------------------------
# Job identity.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class JobKey:
    """Identity of one simulation job (the unit of caching/dedup).

    ``config_fingerprint`` covers everything the other fields do not:
    the full :class:`SlipstreamConfig` for CMP jobs, the fault-campaign
    parameters for fault jobs, the empty string where defaults apply.
    """

    #: "count" | "ss64" | "ss128" | "cmp" | "fault" | "xcheck" |
    #: "ceiling" (static ineffectuality ceiling; repro.analysis.ceiling) |
    #: "finj" (one fault-campaign injection point) | "nref" (fault-free
    #: N-stream reference run; see :mod:`repro.core.nstream`) | "chaos"
    #: (synthetic runner-resilience job; see
    #: :mod:`repro.eval.resilience`).
    model: str
    benchmark: str
    scale: int = 1
    removal_triggers: Tuple[str, ...] = ()
    config_fingerprint: str = ""


def job_label(key: JobKey) -> str:
    """Human-readable job label, e.g. ``cmp/li@1[BR]#deadbeef``.

    Shared by profiling (``BENCH_runner.json`` per-job rows), trace file
    naming and :class:`~repro.obs.RunReport` identity.
    """
    label = f"{key.model}/{key.benchmark}@{key.scale}"
    if key.removal_triggers:
        label += f"[{','.join(key.removal_triggers)}]"
    if key.config_fingerprint:
        label += f"#{key.config_fingerprint[:8]}"
    return label


@dataclass(frozen=True)
class JobSpec:
    """A runnable job: its key plus the parameters needed to compute it.

    The key alone identifies the result; the payload fields carry the
    non-default configuration objects the simulation needs.  Specs are
    picklable (process-pool friendly).
    """

    key: JobKey
    config: Optional[SlipstreamConfig] = None
    points: int = 0
    sites: Tuple[FaultSite, ...] = ()
    #: One campaign injection point ("finj" jobs).
    fault: Optional[TransientFault] = None
    #: Model ECC on the R-stream's architectural state ("finj" jobs).
    ecc: bool = False
    #: Scripted failure behaviour ("chaos" jobs).
    chaos: Optional[ChaosPlan] = None
    #: Redundancy mode ("finj"/"nref" jobs): one of
    #: :data:`repro.core.modes.CAMPAIGN_MODES`.
    mode: str = "slipstream"


def count_spec(benchmark: str, scale: int = 1) -> JobSpec:
    return JobSpec(JobKey("count", benchmark, scale))


def baseline_spec(benchmark: str, scale: int = 1) -> JobSpec:
    return JobSpec(JobKey("ss64", benchmark, scale))


def big_core_spec(benchmark: str, scale: int = 1) -> JobSpec:
    return JobSpec(JobKey("ss128", benchmark, scale))


def slipstream_spec(
    benchmark: str,
    scale: int = 1,
    removal_triggers: Tuple[str, ...] = ("BR", "WW", "SV"),
    config: Optional[SlipstreamConfig] = None,
) -> JobSpec:
    """The CMP(2x64x4) job.  A caller-supplied config is cacheable too:
    its stable fingerprint becomes part of the key."""
    cfg = config if config is not None else SlipstreamConfig(
        removal_triggers=removal_triggers
    )
    key = JobKey(
        "cmp", benchmark, scale,
        removal_triggers=cfg.removal_triggers,
        config_fingerprint=cfg.fingerprint(),
    )
    return JobSpec(key, config=cfg)


def ceiling_spec(benchmark: str, scale: int = 1) -> JobSpec:
    """The static ineffectuality ceiling job: abstract interpretation of
    the workload plus an execution profile weighting the proven facts
    (see :mod:`repro.analysis.ceiling`)."""
    return JobSpec(JobKey("ceiling", benchmark, scale))


def crosscheck_spec(benchmark: str, scale: int = 1) -> JobSpec:
    """The static/dynamic ineffectuality cross-check job: static write
    classification vs the IR-detector's verdicts, plus a ground-truth
    reference shadow (see :mod:`repro.analysis.ineffectual`)."""
    return JobSpec(JobKey("xcheck", benchmark, scale))


def fault_spec(
    benchmark: str,
    scale: int = 1,
    points: int = 6,
    sites: Sequence[FaultSite] = (FaultSite.A_RESULT, FaultSite.R_TRANSIENT),
) -> JobSpec:
    sites = tuple(sites)
    key = JobKey(
        "fault", benchmark, scale,
        config_fingerprint=fingerprint([points, list(sites)]),
    )
    return JobSpec(key, points=points, sites=sites)


def injection_spec(
    benchmark: str,
    site: FaultSite,
    target_seq: int,
    bit: int = 7,
    scale: int = 1,
    ecc: bool = False,
    mode: str = "slipstream",
) -> JobSpec:
    """One fault-campaign point: inject (site, dynamic instruction, bit)
    into one workload under one redundancy mode and classify the run.
    The clean reference is the matching mode's fault-free job of the
    same benchmark/scale, shared through the caches (prewarmed by
    :mod:`repro.fault.campaign`).

    Slipstream-mode keys keep the pre-framework fingerprint shape
    (``[fault, ecc]``), so existing cache entries and golden campaign
    artifacts are unaffected; other modes fold the mode name in.
    """
    fault = TransientFault(site=site, target_seq=target_seq, bit=bit)
    payload = [fault, ecc] if mode == "slipstream" else [fault, ecc, mode]
    key = JobKey(
        "finj", benchmark, scale,
        config_fingerprint=fingerprint(payload),
    )
    return JobSpec(key, fault=fault, ecc=ecc, mode=mode)


def mode_reference_spec(benchmark: str, mode: str, scale: int = 1) -> JobSpec:
    """The fault-free N-stream reference run ("nref"): the TMR or
    replay-window engine on one workload, anchored to the cached ss64
    baseline's cycle count."""
    key = JobKey(
        "nref", benchmark, scale,
        config_fingerprint=fingerprint([mode]),
    )
    return JobSpec(key, mode=mode)


def chaos_spec(name: str, plan: ChaosPlan) -> JobSpec:
    """A synthetic runner-resilience job (:mod:`repro.eval.resilience`).

    ``name`` fills the benchmark slot of the key so concurrent chaos
    jobs stay distinct; the plan's fingerprint keys the behaviour."""
    key = JobKey("chaos", name, config_fingerprint=fingerprint(plan))
    return JobSpec(key, chaos=plan)


# ----------------------------------------------------------------------
# The raw compute.
# ----------------------------------------------------------------------

#: Per-process memo of assembled benchmark programs.
#: :meth:`Benchmark.program` re-runs the assembler on every call; the
#: artifact suite requests the same (benchmark, scale) program for
#: several models, and a warm pool worker for many consecutive jobs, so
#: one build per process suffices.  Programs are read-only during
#: simulation (the two slipstream streams already share one), and a
#: stable object identity also lets the compiled execution engine
#: (:func:`repro.arch.compiled.compiled_for`, an id-keyed memo) and the
#: memoized timing model (:func:`repro.uarch.compiled_timing.timing_meta_for`)
#: reuse their pre-decoded closures and per-PC timing metadata across
#: every job on the same program.
_PROGRAM_MEMO: Dict[Tuple[str, int], object] = {}


def benchmark_program(name: str, scale: int = 1):
    """The benchmark's assembled program, memoized per process."""
    memo_key = (name, scale)
    program = _PROGRAM_MEMO.get(memo_key)
    if program is None:
        program = get_benchmark(name).program(scale)
        _PROGRAM_MEMO[memo_key] = program
    return program


def simulate(spec: JobSpec, obs: Optional[Observability] = None):
    """Run one job's simulation (no caching) and return its result.

    ``obs`` is the optional observability handle (:mod:`repro.obs`);
    instrumentation is behavior-neutral, so the result is bit-identical
    with or without it.
    """
    global _simulation_count
    _simulation_count += 1
    key = spec.key
    model = key.model
    if model == "count":
        program = benchmark_program(key.benchmark, key.scale)
        return FunctionalSimulator(program).run().instruction_count
    if model == "ss64":
        program = benchmark_program(key.benchmark, key.scale)
        return SuperscalarCore(SS_64x4, program, obs=obs).run()
    if model == "ss128":
        program = benchmark_program(key.benchmark, key.scale)
        return SuperscalarCore(SS_128x8, program, obs=obs).run()
    if model == "cmp":
        program = benchmark_program(key.benchmark, key.scale)
        return SlipstreamProcessor(program, spec.config, obs=obs).run()
    if model == "fault":
        return _simulate_fault_study(key.benchmark, key.scale, spec.points,
                                     spec.sites)
    if model == "finj":
        return _simulate_injection(spec)
    if model == "nref":
        return _simulate_mode_reference(spec)
    if model == "xcheck":
        program = benchmark_program(key.benchmark, key.scale)
        return cross_check(program)
    if model == "ceiling":
        program = benchmark_program(key.benchmark, key.scale)
        return ceiling_report(program)
    if model == "chaos":
        assert spec.chaos is not None
        return execute_chaos(spec.chaos)
    raise ValueError(f"unknown job model {model!r}")


def _simulate_mode_reference(spec: JobSpec):
    """The fault-free N-stream reference run ("nref" jobs)."""
    from repro.core.nstream import ReplayWindowProcessor, TMRProcessor
    from repro.eval import models  # lazy: models imports this module

    key = spec.key
    program = benchmark_program(key.benchmark, key.scale)
    base = models.run_baseline(key.benchmark, key.scale)
    if spec.mode == "tmr":
        return TMRProcessor(program, base_cycles=base.cycles).run()
    if spec.mode == "replay":
        return ReplayWindowProcessor(program, base_cycles=base.cycles).run()
    raise ValueError(f"unknown nref mode {spec.mode!r}")


def _simulate_injection(spec: JobSpec):
    """One fault-campaign point: fetch the shared clean reference
    through the caches (a disk hit when the campaign driver prewarmed
    it), then run the injected simulation under the spec's redundancy
    mode."""
    from repro.eval import models  # lazy: models imports this module

    key = spec.key
    assert spec.fault is not None
    program = benchmark_program(key.benchmark, key.scale)
    if spec.mode in ("tmr", "replay"):
        reference = models.run_mode_reference(key.benchmark, spec.mode,
                                              key.scale)
        return inject_one_nstream(
            program,
            spec.fault,
            spec.mode,
            reference_output=reference.output,
            baseline_detections=reference.detections,
            ecc=spec.ecc,
            max_instructions=hang_budget(reference.retired),
            base_cycles=None,
        )
    config = decorrelated_config() if spec.mode == "decorrelated" else None
    reference = models.run_slipstream_model(key.benchmark, key.scale,
                                            config=config)
    result = inject_one(
        program,
        spec.fault,
        config=config,
        reference_output=reference.output,
        baseline_detections=reference.ir_mispredictions,
        ecc=spec.ecc,
        max_instructions=hang_budget(reference.retired),
    )
    result.mode = spec.mode
    return result


def simulate_with_report(spec: JobSpec):
    """Run one job under the environment-configured observability.

    Returns ``(result, report)`` where ``report`` is a
    :class:`~repro.obs.RunReport` (None when observability is disabled).
    The JSONL trace, if configured, is written and closed here so pool
    workers leave complete files behind.
    """
    label = job_label(spec.key)
    obs = job_observability(label)
    if obs is None:
        return simulate(spec), None
    try:
        result = simulate(spec, obs)
        report: Optional[RunReport] = build_report(
            label, spec.key.model, spec.key.benchmark, result, obs
        )
    finally:
        obs.close()
    return result, report


def _simulate_fault_study(benchmark: str, scale: int, points: int,
                          sites: Tuple[FaultSite, ...]):
    """A deterministic fault-injection campaign over one workload, with
    strike points spread over the steady-state region of the run."""
    program = benchmark_program(benchmark, scale)
    total = FunctionalSimulator(program).run().instruction_count
    start = total // 4
    stride = max((total - start) // (points + 1), 1)
    targets = [start + i * stride for i in range(points)]
    return run_campaign(program, sites=list(sites), target_seqs=targets)


#: CPU clock for per-job cost measurement.  *Thread* CPU time, where
#: the platform has it: with the in-process worker backend
#: (:mod:`repro.eval.backends`) several attempts share one process, and
#: ``time.process_time()`` would charge every concurrent sibling's
#: cycles to each job.  In single-threaded pool workers and the inline
#: path the two clocks agree.
_cpu_clock = time.thread_time if hasattr(time, "thread_time") \
    else time.process_time


def timed_simulate(spec: JobSpec):
    """Worker entry point: ``(result, wall_seconds, cpu_seconds,
    started_monotonic, report)``.

    CPU seconds are the contention-independent cost of the job: on an
    oversubscribed machine the wall clock inside a worker is inflated by
    scheduling, but CPU time is not, so it is what sequential
    cost estimates must sum.  Measured with the executing thread's CPU
    clock so concurrent in-process attempts never bill each other's
    cycles.  ``started_monotonic`` is this process's
    ``time.monotonic()`` at the moment the job started computing; on the
    supported platforms the monotonic clock is system-wide, so the
    runner subtracts its own submit-time reading to measure how long the
    job sat queued behind busy workers.  ``report`` is the job's
    :class:`~repro.obs.RunReport` (None when observability is disabled);
    the environment configuring it is inherited by pool workers.
    """
    started = time.monotonic()
    w0 = time.perf_counter()
    c0 = _cpu_clock()
    result, report = simulate_with_report(spec)
    return (result, time.perf_counter() - w0, _cpu_clock() - c0,
            started, report)


def run_attempt(spec: JobSpec, timeout_seconds: Optional[float] = None):
    """One *bounded* attempt at a job: :func:`timed_simulate` under an
    optional wall-clock budget.

    On the main thread the budget is enforced with a ``SIGALRM``
    itimer, so a stuck job dies with a
    :class:`~repro.eval.resilience.JobTimeout` while the worker (and
    the rest of the pool) survives.  ``signal.signal``/``setitimer``
    raise ``ValueError`` off the main thread, so threaded callers — the
    in-process worker backend (:mod:`repro.eval.backends`) behind the
    eval daemon's request handlers — fall back to a **monotonic
    post-hoc deadline**: the attempt runs to completion, and if it
    exceeded the budget its (late) result is discarded and
    ``JobTimeout`` is raised, so timeout classification and retry
    accounting match the ``SIGALRM`` path exactly.  The documented
    limitation of the fallback is that a *wedged* job cannot be
    interrupted from another thread; a driver-side hard deadline (the
    pool path) or process-level budget must cover true hangs.
    Platforms without ``SIGALRM`` take the same fallback.
    """
    if not timeout_seconds:
        return timed_simulate(spec)
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        def _expired(signum, frame):
            raise JobTimeout(
                f"{job_label(spec.key)}: attempt exceeded "
                f"{timeout_seconds}s wall clock"
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, timeout_seconds)
        try:
            return timed_simulate(spec)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    deadline_start = time.monotonic()
    out = timed_simulate(spec)
    if time.monotonic() - deadline_start > timeout_seconds:
        raise JobTimeout(
            f"{job_label(spec.key)}: attempt exceeded {timeout_seconds}s "
            "wall clock (monotonic deadline, checked post-hoc off the "
            "main thread)"
        )
    return out


# ----------------------------------------------------------------------
# Artifact enumeration.
# ----------------------------------------------------------------------

#: The exact ablation parameter grids ``python -m repro.eval`` renders;
#: the experiment functions must construct identical configs so the
#: enumerated jobs and the report's lookups share cache entries.
ABLATION_BENCHMARK = "li"
ABLATION_CONFIDENCE_THRESHOLDS = (4, 32, 128)
ABLATION_DELAY_CAPACITIES = (32, 256, 1024)
ABLATION_IR_SCOPES = (1, 8, 16)
FAULT_STUDY_BENCHMARK = "jpeg"
FAULT_STUDY_POINTS = 4
#: The redundancy-mode frontier study rendered in the eval report
#: (coverage vs throughput across CAMPAIGN_MODES); kept to two
#: workloads and few points so report rendering stays fast.
FRONTIER_BENCHMARKS = ("jpeg", "li")
FRONTIER_POINTS = 4
FRONTIER_SEED = 2000
#: Benchmarks measured with the statically-seeded removal table
#: (``SlipstreamConfig(static_hints=True)``) next to their default runs.
STATIC_HINT_BENCHMARKS = ("li", "m88ksim", "vortex")


def enumerate_artifact_jobs(
    scale: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> List[JobSpec]:
    """Every job the full artifact suite needs, deduplicated.

    Figure 6 / Figure 8 (top) / Table 3 share the default CMP runs;
    Figures 6/7 and Tables 1/3 share the SS runs.  The returned list has
    one spec per distinct :class:`JobKey`.
    """
    names = list(benchmarks) if benchmarks is not None else [
        b.name for b in benchmark_suite()
    ]
    specs: List[JobSpec] = []
    seen = set()

    def add(spec: JobSpec) -> None:
        if spec.key not in seen:
            seen.add(spec.key)
            specs.append(spec)

    for name in names:
        add(count_spec(name, scale))            # Table 1
        add(baseline_spec(name, scale))         # Figures 6/7, Table 3
        add(big_core_spec(name, scale))         # Figure 7
        add(slipstream_spec(name, scale))       # Figures 6/8, Table 3
        add(slipstream_spec(name, scale, removal_triggers=("BR",)))  # Fig 8 bottom
        add(crosscheck_spec(name, scale))       # static/dynamic cross-check
        add(ceiling_spec(name, scale))          # static ineffectuality ceiling
    for name in STATIC_HINT_BENCHMARKS:
        if name in names:
            add(slipstream_spec(
                name, scale, config=SlipstreamConfig(static_hints=True)))
    for name in FRONTIER_BENCHMARKS:
        if name in names:
            # Fault-free references of the redundancy-mode frontier
            # study: pre-warming them here keeps the report's campaign
            # pass down to the injection points themselves.
            add(slipstream_spec(name, scale, config=decorrelated_config()))
            add(mode_reference_spec(name, "tmr", scale))
            add(mode_reference_spec(name, "replay", scale))
    add(fault_spec(FAULT_STUDY_BENCHMARK, points=FAULT_STUDY_POINTS))
    for threshold in ABLATION_CONFIDENCE_THRESHOLDS:
        add(slipstream_spec(
            ABLATION_BENCHMARK, scale,
            config=SlipstreamConfig(confidence_threshold=threshold)))
    for capacity in ABLATION_DELAY_CAPACITIES:
        add(slipstream_spec(
            ABLATION_BENCHMARK, scale,
            config=SlipstreamConfig(delay_buffer_capacity=capacity)))
    for scope in ABLATION_IR_SCOPES:
        add(slipstream_spec(
            ABLATION_BENCHMARK, scale,
            config=SlipstreamConfig(ir_scope_traces=scope)))
    return specs


# ----------------------------------------------------------------------
# Code-version fingerprint and the persistent cache.
# ----------------------------------------------------------------------

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file; cache entries embed it so
    any code change invalidates previously cached results."""
    global _code_fingerprint
    if _code_fingerprint is None:
        root = Path(repro.__file__).resolve().parent
        digest = sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()[:16]
    return _code_fingerprint


def cache_entry_digest(key: JobKey, code_version: Optional[str] = None) -> str:
    """Digest naming ``key``'s disk-cache entry (and its shard).

    sha256 over (canonical key, code-version fingerprint), truncated to
    24 hex chars.  The *same* digest both shards the disk cache
    (:meth:`DiskCache._entry_name`; shard dir = first two chars) and
    steers daemon federation (:mod:`repro.eval.remote`): a job is
    dispatched to the worker daemon whose digest bucket owns it, so
    repeated fleet sweeps land each job back on the worker whose disk
    cache is already warm for it.
    """
    return sha256(
        repr((canonical(key), code_version or code_fingerprint()))
        .encode("utf-8")
    ).hexdigest()[:24]


#: Per-process monotonically-increasing component of temp-file names.
#: ``os.getpid()`` alone is NOT unique across the threads of one
#: process: two threads storing the same key would interleave writes
#: into one temp file and rename a corrupt pickle into place.  pid +
#: thread ident + counter is unique per call.
_TMP_COUNTER = itertools.count()

#: Orphaned temp files younger than this survive :meth:`DiskCache.prune_stale`
#: (they may belong to a writer that is mid-``os.replace`` right now);
#: older ones were abandoned by a crashed writer and are swept.
TMP_SWEEP_AGE_SECONDS = 300.0


def unique_tmp_path(path: Path) -> Path:
    """A per-call-unique sibling temp path for atomic replace-writes.

    Same directory as ``path`` (so ``os.replace`` stays atomic on one
    filesystem), and unique across processes *and* threads: the name
    embeds pid, thread ident and a per-process counter.  Shared by
    :meth:`DiskCache.store` and :meth:`repro.eval.oracle.DurationOracle.save`.
    """
    return path.with_suffix(
        f".tmp{os.getpid()}-{threading.get_ident()}-{next(_TMP_COUNTER)}"
    )


class DiskCache:
    """Pickle-per-job persistent result cache, sharded by digest prefix.

    File names embed a digest of (JobKey, code fingerprint): a changed
    key or changed code simply misses — stale files are never *read*,
    and :meth:`prune_stale` deletes them.  Loads are defensive: any
    unpicklable, truncated or mismatched file is discarded and treated
    as a miss.

    Entries live under a two-hex-character shard directory derived from
    the key digest (``root/ab/cmp-li-…pkl``), so the many clients of a
    shared cache root (:mod:`repro.eval.serve`) spread their directory
    traffic over 256 shards instead of contending on one.  The flat
    pre-shard layout is still read as a fallback — old roots keep
    hitting without migration — while every write goes to the sharded
    layout; :meth:`clear` and :meth:`prune_stale` walk both.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 code_version: Optional[str] = None):
        if root is None:
            root = os.environ.get("REPRO_EVAL_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.code_version = code_version or code_fingerprint()

    def _entry_name(self, key: JobKey) -> Tuple[str, str]:
        """(shard directory, file name) of ``key``'s entry."""
        digest = cache_entry_digest(key, self.code_version)
        name = f"{key.model}-{key.benchmark}-s{key.scale}-{digest}.pkl"
        return digest[:2], name

    def path_for(self, key: JobKey) -> Path:
        """The sharded path of ``key``'s entry (the write target)."""
        shard, name = self._entry_name(key)
        return self.root / shard / name

    def legacy_path_for(self, key: JobKey) -> Path:
        """Where the flat pre-shard layout kept ``key``'s entry."""
        _, name = self._entry_name(key)
        return self.root / name

    def load(self, key: JobKey):
        """The cached result for ``key``, or :data:`MISS`.

        Probes the sharded path first, then the flat legacy path, so a
        root populated before sharding keeps hitting.
        """
        for path in (self.path_for(key), self.legacy_path_for(key)):
            try:
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
            except FileNotFoundError:
                continue
            except Exception:
                # Corrupt/truncated/unreadable: discard, never fatal.
                self._discard(path)
                continue
            if not isinstance(payload, dict) or payload.get("key") != key:
                self._discard(path)
                continue
            return payload.get("result")
        return MISS

    def store(self, key: JobKey, result) -> None:
        path = self.path_for(key)
        payload = {"key": key, "code": self.code_version, "result": result}
        tmp = unique_tmp_path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # An unwritable or full cache directory degrades to no-op.
            self._discard(tmp)

    def _entry_files(self) -> Iterator[Path]:
        """Every cache entry, sharded and flat-legacy, sorted."""
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*.pkl"))
        yield from sorted(self.root.glob("[0-9a-f][0-9a-f]/*.pkl"))

    def _tmp_files(self) -> Iterator[Path]:
        """Leftover ``*.tmp*`` files (crashed or in-flight writers)."""
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*.tmp*"))
        yield from sorted(self.root.glob("[0-9a-f][0-9a-f]/*.tmp*"))

    def clear(self) -> int:
        """Delete every cache file (both layouts), plus any leftover
        temp files; returns the number removed."""
        removed = 0
        for path in self._entry_files():
            self._discard(path)
            removed += 1
        for tmp in self._tmp_files():
            self._discard(tmp)
            removed += 1
        return removed

    def prune_stale(
        self, tmp_age_seconds: float = TMP_SWEEP_AGE_SECONDS
    ) -> int:
        """Delete entries written under a different code version (both
        layouts) and temp files abandoned by crashed writers.

        A temp file younger than ``tmp_age_seconds`` is left alone: it
        may belong to a concurrent writer that has not reached its
        atomic rename yet.
        """
        removed = 0
        for path in self._entry_files():
            try:
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
                stale = (not isinstance(payload, dict)
                         or payload.get("code") != self.code_version)
            except Exception:
                stale = True
            if stale:
                self._discard(path)
                removed += 1
        now = time.time()  # selfcheck: ok(wall-clock)
        for tmp in self._tmp_files():
            try:
                age = now - tmp.stat().st_mtime
            except OSError:
                continue
            if age >= tmp_age_seconds:
                self._discard(tmp)
                removed += 1
        return removed

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
