"""Small metric helpers shared by experiments and benches."""

from __future__ import annotations

from typing import Dict, Sequence


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("empty sequence")
    return sum(values) / len(values)


def geometric_mean_speedup(gains_pct: Sequence[float]) -> float:
    """Geometric mean of speedups expressed as % gains.

    Every gain must be greater than −100%: a gain of exactly −100%
    means a speedup factor of zero (the geometric mean is undefined)
    and anything below it a negative factor (a fractional power of a
    negative number — complex, not a speedup).  Such inputs raise a
    clear :class:`ValueError` instead of surfacing as a confusing
    ``ValueError: math domain error`` or a complex result downstream.
    """
    if not gains_pct:
        raise ValueError("empty sequence")
    product = 1.0
    for gain in gains_pct:
        factor = 1.0 + gain / 100.0
        if factor <= 0.0:
            raise ValueError(
                f"gain of {gain}% implies a speedup factor of {factor} "
                "(<= 0); geometric mean requires every gain > -100%"
            )
        product *= factor
    return (product ** (1.0 / len(gains_pct)) - 1.0) * 100.0


def per_1000(count: int, total: int) -> float:
    return 1000.0 * count / total if total else 0.0


def rank_order(values: Dict[str, float]) -> list:
    """Keys sorted by value, descending — for ordering-shape checks."""
    return [k for k, _ in sorted(values.items(), key=lambda kv: -kv[1])]
