"""Small metric helpers shared by experiments and benches."""

from __future__ import annotations

from typing import Dict, Sequence


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("empty sequence")
    return sum(values) / len(values)


def geometric_mean_speedup(gains_pct: Sequence[float]) -> float:
    """Geometric mean of speedups expressed as % gains."""
    if not gains_pct:
        raise ValueError("empty sequence")
    product = 1.0
    for gain in gains_pct:
        product *= 1.0 + gain / 100.0
    return (product ** (1.0 / len(gains_pct)) - 1.0) * 100.0


def per_1000(count: int, total: int) -> float:
    return 1000.0 * count / total if total else 0.0


def rank_order(values: Dict[str, float]) -> list:
    """Keys sorted by value, descending — for ordering-shape checks."""
    return [k for k, _ in sorted(values.items(), key=lambda kv: -kv[1])]
