"""The three processor models of the evaluation (paper, section 5).

* ``SS(64x4)`` — one conventional 4-way superscalar, 64-entry ROB.
* ``SS(128x8)`` — one conventional 8-way superscalar, 128-entry ROB.
* ``CMP(2x64x4)`` — the slipstream processor: two SS(64x4) cores.

All three use the same trace predictor for control-flow prediction, so
comparisons are direct.  Runs are cached per (benchmark, model, scale,
variant) within the process: Figure 6, Figure 8 and Table 3 share the
same underlying simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.slipstream import SlipstreamConfig, SlipstreamProcessor, SlipstreamResult
from repro.uarch.config import SS_128x8, SS_64x4
from repro.uarch.core import CoreRunResult, SuperscalarCore
from repro.workloads.suite import get_benchmark

_CACHE: Dict[Tuple, object] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_baseline(benchmark: str, scale: int = 1) -> CoreRunResult:
    """SS(64x4): the base model."""
    key = ("ss64", benchmark, scale)
    if key not in _CACHE:
        program = get_benchmark(benchmark).program(scale)
        _CACHE[key] = SuperscalarCore(SS_64x4, program).run()
    return _CACHE[key]  # type: ignore[return-value]


def run_big_core(benchmark: str, scale: int = 1) -> CoreRunResult:
    """SS(128x8): double the window and width."""
    key = ("ss128", benchmark, scale)
    if key not in _CACHE:
        program = get_benchmark(benchmark).program(scale)
        _CACHE[key] = SuperscalarCore(SS_128x8, program).run()
    return _CACHE[key]  # type: ignore[return-value]


def run_slipstream_model(
    benchmark: str,
    scale: int = 1,
    removal_triggers: Tuple[str, ...] = ("BR", "WW", "SV"),
    config: Optional[SlipstreamConfig] = None,
) -> SlipstreamResult:
    """CMP(2x64x4): the slipstream processor.

    ``removal_triggers=("BR",)`` reproduces the branch-only removal
    variant of Figure 8 (bottom).
    """
    key = ("cmp", benchmark, scale, removal_triggers, config is None)
    if key not in _CACHE or config is not None:
        program = get_benchmark(benchmark).program(scale)
        cfg = config or SlipstreamConfig(removal_triggers=removal_triggers)
        result = SlipstreamProcessor(program, cfg).run()
        if config is not None:
            return result
        _CACHE[key] = result
    return _CACHE[key]  # type: ignore[return-value]


@dataclass
class ModelRuns:
    """All three models on one benchmark."""

    benchmark: str
    base: CoreRunResult
    big: CoreRunResult
    slip: SlipstreamResult

    @property
    def slip_gain(self) -> float:
        """% IPC improvement of CMP(2x64x4) over SS(64x4) (Figure 6)."""
        return 100.0 * (self.slip.ipc / self.base.ipc - 1.0)

    @property
    def big_gain(self) -> float:
        """% IPC improvement of SS(128x8) over SS(64x4) (Figure 7)."""
        return 100.0 * (self.big.ipc / self.base.ipc - 1.0)


def run_all_models(benchmark: str, scale: int = 1) -> ModelRuns:
    return ModelRuns(
        benchmark=benchmark,
        base=run_baseline(benchmark, scale),
        big=run_big_core(benchmark, scale),
        slip=run_slipstream_model(benchmark, scale),
    )
