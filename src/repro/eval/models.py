"""The three processor models of the evaluation (paper, section 5).

* ``SS(64x4)`` — one conventional 4-way superscalar, 64-entry ROB.
* ``SS(128x8)`` — one conventional 8-way superscalar, 128-entry ROB.
* ``CMP(2x64x4)`` — the slipstream processor: two SS(64x4) cores.

All three use the same trace predictor for control-flow prediction, so
comparisons are direct.  Runs are cached at two levels, keyed by
:class:`repro.eval.jobs.JobKey`:

* an in-process dict (Figure 6, Figure 8 and Table 3 share the same
  underlying simulations within one report);
* the persistent :class:`repro.eval.jobs.DiskCache`, so re-running the
  artifact suite performs zero simulations until the code or the
  requested configuration changes.  Set ``REPRO_EVAL_DISK_CACHE=0`` (or
  call :func:`configure_disk_cache`) to opt out.

Caller-supplied :class:`SlipstreamConfig` objects are cached like any
other run: their stable :meth:`~SlipstreamConfig.fingerprint` is part of
the job key.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.ceiling import CeilingReport
from repro.analysis.ineffectual import CrossCheckResult
from repro.core.slipstream import SlipstreamConfig, SlipstreamResult
from repro.eval.jobs import (
    MISS,
    DiskCache,
    JobKey,
    JobSpec,
    baseline_spec,
    big_core_spec,
    ceiling_spec,
    count_spec,
    crosscheck_spec,
    fault_spec,
    injection_spec,
    mode_reference_spec,
    simulate,
    slipstream_spec,
)
from repro.fault.coverage import CampaignResult, InjectionResult
from repro.fault.injector import FaultSite
from repro.uarch.core import CoreRunResult

_CACHE: Dict[JobKey, object] = {}

#: Lazily-created default disk cache; ``False`` means "disabled".
_DISK: Optional[DiskCache] = None
_DISK_ENABLED: Optional[bool] = None


def clear_cache() -> None:
    """Drop the in-process cache (the disk cache is left alone)."""
    _CACHE.clear()


def configure_disk_cache(enabled: bool = True,
                         cache_dir: Optional[str] = None) -> None:
    """Enable/disable or repoint the persistent cache for this process."""
    global _DISK, _DISK_ENABLED
    _DISK_ENABLED = enabled
    _DISK = DiskCache(cache_dir) if enabled else None


def disk_cache() -> Optional[DiskCache]:
    """The active persistent cache, or None when disabled."""
    global _DISK, _DISK_ENABLED
    if _DISK_ENABLED is None:
        _DISK_ENABLED = os.environ.get("REPRO_EVAL_DISK_CACHE", "1") != "0"
        _DISK = DiskCache() if _DISK_ENABLED else None
    return _DISK


def run_cached(spec: JobSpec):
    """Memory cache → disk cache → simulate, storing at both levels."""
    key = spec.key
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    disk = disk_cache()
    if disk is not None:
        hit = disk.load(key)
        if hit is not MISS:
            _CACHE[key] = hit
            return hit
    result = simulate(spec)
    _CACHE[key] = result
    if disk is not None:
        disk.store(key, result)
    return result


def run_instruction_count(benchmark: str, scale: int = 1) -> int:
    """Dynamic instruction count of one benchmark (Table 1)."""
    return run_cached(count_spec(benchmark, scale))  # type: ignore[return-value]


def run_baseline(benchmark: str, scale: int = 1) -> CoreRunResult:
    """SS(64x4): the base model."""
    return run_cached(baseline_spec(benchmark, scale))  # type: ignore[return-value]


def run_big_core(benchmark: str, scale: int = 1) -> CoreRunResult:
    """SS(128x8): double the window and width."""
    return run_cached(big_core_spec(benchmark, scale))  # type: ignore[return-value]


def run_slipstream_model(
    benchmark: str,
    scale: int = 1,
    removal_triggers: Tuple[str, ...] = ("BR", "WW", "SV"),
    config: Optional[SlipstreamConfig] = None,
) -> SlipstreamResult:
    """CMP(2x64x4): the slipstream processor.

    ``removal_triggers=("BR",)`` reproduces the branch-only removal
    variant of Figure 8 (bottom).  A caller-supplied ``config`` takes
    precedence over ``removal_triggers`` and is cached by its
    fingerprint.
    """
    spec = slipstream_spec(benchmark, scale, removal_triggers, config)
    return run_cached(spec)  # type: ignore[return-value]


def run_crosscheck(benchmark: str, scale: int = 1) -> CrossCheckResult:
    """Static/dynamic ineffectuality cross-check of one benchmark:
    static write classification vs IR-detector verdicts."""
    return run_cached(crosscheck_spec(benchmark, scale))  # type: ignore[return-value]


def run_ceiling(benchmark: str, scale: int = 1) -> CeilingReport:
    """Static ineffectuality ceiling of one benchmark: abstract
    interpretation plus a dynamic execution profile weighting the
    proven facts (see :mod:`repro.analysis.ceiling`)."""
    return run_cached(ceiling_spec(benchmark, scale))  # type: ignore[return-value]


def run_fault_study(
    benchmark: str,
    scale: int = 1,
    points: int = 6,
    sites: Sequence[FaultSite] = (FaultSite.A_RESULT, FaultSite.R_TRANSIENT),
) -> CampaignResult:
    """A deterministic fault-injection campaign over one workload."""
    return run_cached(fault_spec(benchmark, scale, points, sites))  # type: ignore[return-value]


def run_injection(
    benchmark: str,
    site: FaultSite,
    target_seq: int,
    bit: int = 7,
    scale: int = 1,
    ecc: bool = False,
    mode: str = "slipstream",
) -> InjectionResult:
    """One classified fault injection (a scaled-campaign strike point),
    against the matching mode's cached fault-free reference."""
    return run_cached(
        injection_spec(benchmark, site, target_seq, bit, scale, ecc, mode)
    )  # type: ignore[return-value]


def run_mode_reference(benchmark: str, mode: str, scale: int = 1):
    """Fault-free N-stream reference run (``"tmr"`` or ``"replay"``);
    returns a :class:`repro.core.nstream.NStreamResult`."""
    return run_cached(mode_reference_spec(benchmark, mode, scale))


@dataclass
class ModelRuns:
    """All three models on one benchmark."""

    benchmark: str
    base: CoreRunResult
    big: CoreRunResult
    slip: SlipstreamResult

    @property
    def slip_gain(self) -> float:
        """% IPC improvement of CMP(2x64x4) over SS(64x4) (Figure 6)."""
        return 100.0 * (self.slip.ipc / self.base.ipc - 1.0)

    @property
    def big_gain(self) -> float:
        """% IPC improvement of SS(128x8) over SS(64x4) (Figure 7)."""
        return 100.0 * (self.big.ipc / self.base.ipc - 1.0)


def run_all_models(benchmark: str, scale: int = 1) -> ModelRuns:
    return ModelRuns(
        benchmark=benchmark,
        base=run_baseline(benchmark, scale),
        big=run_big_core(benchmark, scale),
        slip=run_slipstream_model(benchmark, scale),
    )
