"""Duration oracle: learned per-job cost estimates for LJF scheduling.

The runner submits cold jobs longest-first so a nearly-drained pool is
never left waiting on one big straggler.  That needs a duration
estimate *before* the job runs.  The original heuristic was a static
per-model weight table; this oracle replaces it with measured per-job
CPU seconds, learned across passes (exponentially weighted moving
average) and persisted next to the disk cache, so every cold sweep
after the first orders by what jobs actually cost on this machine.

Estimates are keyed by a digest of the :class:`~repro.eval.jobs.JobKey`
alone — deliberately **not** the code-version fingerprint that keys
result-cache entries.  Editing the simulator invalidates every cached
result, but the *relative* cost of jobs barely moves; a fresh cold
sweep after a code change is exactly when good ordering matters most.

Jobs never seen before fall back to the static model weights, scaled by
the median of the learned durations so unknown jobs sort amongst the
known ones instead of all landing at one end of the queue.

Many processes may share one cache root (parallel sweeps, the eval
daemon's spawned workers, plain concurrent invocations), so
:meth:`DurationOracle.save` is **read-merge-write**: it reloads the
on-disk durations under an advisory file lock, folds in only the keys
this oracle actually observed, and atomically replaces the file — a
concurrent observer's learning is merged, never clobbered by
last-writer-wins.
"""

from __future__ import annotations

import contextlib
import json
import os
from hashlib import sha256
from pathlib import Path
from dataclasses import replace
from statistics import median
from typing import Dict, Iterator, Optional, Set, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.eval.jobs import JobKey, unique_tmp_path
from repro.fingerprint import canonical

#: Fallback relative cost of each job kind, used for jobs with no
#: recorded duration (e.g. the first-ever cold sweep).
MODEL_WEIGHT = {"cmp": 4.0, "fault": 3.0, "finj": 3.0, "ss128": 2.0,
                "ss64": 2.0, "count": 1.0, "chaos": 1.0}

#: EWMA smoothing: new observations dominate, because per-job cost
#: drifts mostly through deliberate simulator optimization — which
#: should reflect in the ordering quickly, not after many passes.
EWMA_ALPHA = 0.7

#: File name inside the disk-cache root.
ORACLE_FILENAME = "durations.json"


def job_digest(key: JobKey) -> str:
    """Stable identity of one job for duration bookkeeping."""
    return sha256(repr(canonical(key)).encode("utf-8")).hexdigest()[:16]


def family_digest(key: JobKey) -> str:
    """Identity of the job *family*: the key stripped of its config
    fingerprint.  A config tweak re-fingerprints the job (cold cache)
    but barely moves its cost; family entries let the re-fingerprinted
    job inherit the old configuration's learned duration instead of
    dropping back to the static weights.  The ``f:`` prefix keeps
    family entries disjoint from exact digests in the persisted file
    (old files simply have none)."""
    stripped = replace(key, config_fingerprint="")
    return "f:" + sha256(
        repr(canonical(stripped)).encode("utf-8")
    ).hexdigest()[:16]


class DurationOracle:
    """EWMA of per-job CPU seconds, persisted as JSON.

    With ``path=None`` the oracle is in-memory only (disk cache
    disabled): estimates still improve within the pass's process but
    nothing is written.  Loads are defensive — a corrupt, truncated or
    differently-shaped file degrades to an empty oracle, never fatal,
    matching the :class:`~repro.eval.jobs.DiskCache` contract.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None):
        self.path = Path(path) if path is not None else None
        self._durations: Dict[str, float] = {}
        #: Digests this oracle observed since the last save: the only
        #: keys :meth:`save` is entitled to write back.
        self._dirty_keys: Set[str] = set()
        if self.path is not None:
            self._durations = _read_durations(self.path)
        #: Per-key snapshot of what the file held when we last read or
        #: wrote it; lets :meth:`save` tell "the disk still says what we
        #: started from" apart from "another process learned meanwhile".
        self._baseline: Dict[str, float] = dict(self._durations)

    @classmethod
    def for_cache_root(
        cls, root: Optional[Union[str, os.PathLike]]
    ) -> "DurationOracle":
        """The oracle persisted under a disk-cache root (None = memory)."""
        if root is None:
            return cls(None)
        return cls(Path(root) / ORACLE_FILENAME)

    def __len__(self) -> int:
        """Number of exactly-learned jobs (family entries excluded)."""
        return sum(1 for k in self._durations if not k.startswith("f:"))

    # ------------------------------------------------------------------

    def estimate(self, key: JobKey) -> float:
        """Expected CPU seconds of ``key`` (sort key for LJF submission).

        Unknown jobs estimate at their static model weight times the
        median learned duration, so a never-seen heavyweight model still
        sorts ahead of measured lightweights.
        """
        durations = self._durations
        learned = durations.get(job_digest(key))
        if learned is not None:
            return learned
        learned = durations.get(family_digest(key))
        if learned is not None:
            return learned
        exact = [v for k, v in durations.items() if not k.startswith("f:")]
        scale = median(exact) if exact else 1.0
        return MODEL_WEIGHT.get(key.model, 1.0) * scale

    def rank_longest_first(self, specs):
        """``specs`` sorted longest-expected-first (stable).

        The LJF submission order shared by the runner's pool path and
        the federation dispatcher's per-worker queues
        (:mod:`repro.eval.remote`): draining the expensive jobs first
        keeps a pool — or a fleet — from idling behind one straggler
        discovered late.
        """
        return sorted(specs, key=lambda s: self.estimate(s.key),
                      reverse=True)

    def observe(self, key: JobKey, cpu_seconds: float) -> None:
        """Fold one fresh simulation's measured CPU time into the EWMA."""
        if cpu_seconds <= 0.0:
            return
        for digest in (job_digest(key), family_digest(key)):
            previous = self._durations.get(digest)
            if previous is None:
                self._durations[digest] = cpu_seconds
            else:
                self._durations[digest] = (
                    EWMA_ALPHA * cpu_seconds + (1.0 - EWMA_ALPHA) * previous
                )
            self._dirty_keys.add(digest)

    def save(self) -> None:
        """Persist with read-merge-write; no-op when unchanged,
        in-memory, or the cache directory is unwritable (degrades like
        DiskCache.store).

        Two processes finishing sweeps concurrently must both keep
        their learning: under an advisory lock the on-disk durations
        are reloaded, only *this* oracle's dirty keys are folded in
        (a key another process updated meanwhile is EWMA-combined, not
        overwritten), and the merge is atomically replaced.  The merged
        view — including the other process's keys — is adopted
        in-memory, so subsequent estimates benefit from it too.
        """
        if self.path is None or not self._dirty_keys:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        with _locked(self.path):
            on_disk = _read_durations(self.path)
            merged = dict(on_disk)
            for digest in sorted(self._dirty_keys):
                ours = self._durations.get(digest)
                if ours is None:
                    continue
                theirs = on_disk.get(digest)
                if theirs is None or theirs == self._baseline.get(digest):
                    # Nobody else touched the key: our EWMA stands.
                    merged[digest] = ours
                else:
                    # A concurrent observer updated it after our read:
                    # fold our estimate into theirs as one more
                    # observation instead of clobbering it.
                    merged[digest] = (
                        EWMA_ALPHA * ours + (1.0 - EWMA_ALPHA) * theirs
                    )
            tmp = unique_tmp_path(self.path)
            try:
                tmp.write_text(
                    json.dumps(merged, sort_keys=True), encoding="utf-8"
                )
                os.replace(tmp, self.path)
            except OSError:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                return
        self._durations = dict(merged)
        self._baseline = dict(merged)
        self._dirty_keys.clear()


def _read_durations(path: Path) -> Dict[str, float]:
    """Defensively read a durations file: {} on any corruption."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(raw, dict):
        return {}
    return {
        str(k): float(v) for k, v in raw.items()
        if isinstance(v, (int, float)) and v > 0
    }


@contextlib.contextmanager
def _locked(path: Path) -> Iterator[None]:
    """Advisory exclusive lock serializing read-merge-write cycles.

    Uses ``flock`` on a sibling ``.lock`` file where available; on
    platforms without ``fcntl`` (or an unwritable directory) the merge
    proceeds lockless — still read-merge-write, so the unprotected
    window shrinks from the whole pass to the read-to-rename gap.
    """
    if fcntl is None:
        yield
        return
    try:
        handle = open(path.with_suffix(".lock"), "a+")
    except OSError:
        yield
        return
    try:
        fcntl.flock(handle, fcntl.LOCK_EX)
        yield
    finally:
        with contextlib.suppress(OSError):
            fcntl.flock(handle, fcntl.LOCK_UN)
        handle.close()


__all__ = ["DurationOracle", "EWMA_ALPHA", "MODEL_WEIGHT", "ORACLE_FILENAME",
           "job_digest", "family_digest"]
