"""Duration oracle: learned per-job cost estimates for LJF scheduling.

The runner submits cold jobs longest-first so a nearly-drained pool is
never left waiting on one big straggler.  That needs a duration
estimate *before* the job runs.  The original heuristic was a static
per-model weight table; this oracle replaces it with measured per-job
CPU seconds, learned across passes (exponentially weighted moving
average) and persisted next to the disk cache, so every cold sweep
after the first orders by what jobs actually cost on this machine.

Estimates are keyed by a digest of the :class:`~repro.eval.jobs.JobKey`
alone — deliberately **not** the code-version fingerprint that keys
result-cache entries.  Editing the simulator invalidates every cached
result, but the *relative* cost of jobs barely moves; a fresh cold
sweep after a code change is exactly when good ordering matters most.

Jobs never seen before fall back to the static model weights, scaled by
the median of the learned durations so unknown jobs sort amongst the
known ones instead of all landing at one end of the queue.
"""

from __future__ import annotations

import json
import os
from hashlib import sha256
from pathlib import Path
from dataclasses import replace
from statistics import median
from typing import Dict, Optional, Union

from repro.eval.jobs import JobKey
from repro.fingerprint import canonical

#: Fallback relative cost of each job kind, used for jobs with no
#: recorded duration (e.g. the first-ever cold sweep).
MODEL_WEIGHT = {"cmp": 4.0, "fault": 3.0, "finj": 3.0, "ss128": 2.0,
                "ss64": 2.0, "count": 1.0, "chaos": 1.0}

#: EWMA smoothing: new observations dominate, because per-job cost
#: drifts mostly through deliberate simulator optimization — which
#: should reflect in the ordering quickly, not after many passes.
EWMA_ALPHA = 0.7

#: File name inside the disk-cache root.
ORACLE_FILENAME = "durations.json"


def job_digest(key: JobKey) -> str:
    """Stable identity of one job for duration bookkeeping."""
    return sha256(repr(canonical(key)).encode("utf-8")).hexdigest()[:16]


def family_digest(key: JobKey) -> str:
    """Identity of the job *family*: the key stripped of its config
    fingerprint.  A config tweak re-fingerprints the job (cold cache)
    but barely moves its cost; family entries let the re-fingerprinted
    job inherit the old configuration's learned duration instead of
    dropping back to the static weights.  The ``f:`` prefix keeps
    family entries disjoint from exact digests in the persisted file
    (old files simply have none)."""
    stripped = replace(key, config_fingerprint="")
    return "f:" + sha256(
        repr(canonical(stripped)).encode("utf-8")
    ).hexdigest()[:16]


class DurationOracle:
    """EWMA of per-job CPU seconds, persisted as JSON.

    With ``path=None`` the oracle is in-memory only (disk cache
    disabled): estimates still improve within the pass's process but
    nothing is written.  Loads are defensive — a corrupt, truncated or
    differently-shaped file degrades to an empty oracle, never fatal,
    matching the :class:`~repro.eval.jobs.DiskCache` contract.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None):
        self.path = Path(path) if path is not None else None
        self._durations: Dict[str, float] = {}
        self._dirty = False
        if self.path is not None:
            try:
                raw = json.loads(self.path.read_text(encoding="utf-8"))
                if isinstance(raw, dict):
                    self._durations = {
                        str(k): float(v) for k, v in raw.items()
                        if isinstance(v, (int, float)) and v > 0
                    }
            except (OSError, ValueError):
                pass

    @classmethod
    def for_cache_root(
        cls, root: Optional[Union[str, os.PathLike]]
    ) -> "DurationOracle":
        """The oracle persisted under a disk-cache root (None = memory)."""
        if root is None:
            return cls(None)
        return cls(Path(root) / ORACLE_FILENAME)

    def __len__(self) -> int:
        """Number of exactly-learned jobs (family entries excluded)."""
        return sum(1 for k in self._durations if not k.startswith("f:"))

    # ------------------------------------------------------------------

    def estimate(self, key: JobKey) -> float:
        """Expected CPU seconds of ``key`` (sort key for LJF submission).

        Unknown jobs estimate at their static model weight times the
        median learned duration, so a never-seen heavyweight model still
        sorts ahead of measured lightweights.
        """
        durations = self._durations
        learned = durations.get(job_digest(key))
        if learned is not None:
            return learned
        learned = durations.get(family_digest(key))
        if learned is not None:
            return learned
        exact = [v for k, v in durations.items() if not k.startswith("f:")]
        scale = median(exact) if exact else 1.0
        return MODEL_WEIGHT.get(key.model, 1.0) * scale

    def observe(self, key: JobKey, cpu_seconds: float) -> None:
        """Fold one fresh simulation's measured CPU time into the EWMA."""
        if cpu_seconds <= 0.0:
            return
        for digest in (job_digest(key), family_digest(key)):
            previous = self._durations.get(digest)
            if previous is None:
                self._durations[digest] = cpu_seconds
            else:
                self._durations[digest] = (
                    EWMA_ALPHA * cpu_seconds + (1.0 - EWMA_ALPHA) * previous
                )
        self._dirty = True

    def save(self) -> None:
        """Persist atomically; no-op when unchanged, in-memory, or the
        cache directory is unwritable (degrades like DiskCache.store)."""
        if self.path is None or not self._dirty:
            return
        tmp = self.path.with_suffix(f".tmp{os.getpid()}")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(self._durations, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, self.path)
            self._dirty = False
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass


__all__ = ["DurationOracle", "EWMA_ALPHA", "MODEL_WEIGHT", "ORACLE_FILENAME",
           "job_digest", "family_digest"]
