"""Runner profiling: machine-readable timing of an artifact sweep.

Turns a :class:`repro.eval.runner.RunnerStats` into ``BENCH_runner.json``:
cold/warm wall-clock, a per-job breakdown (key, provenance, seconds) and
the measured speedup versus a one-process cold run of the same jobs.

The file holds a bounded history of passes (oldest first), so a cold
sweep followed by a warm re-run records both the parallel speedup and
the zero-simulation warm behaviour.  Read the latest pass with::

    python -c "import json; print(json.load(open('BENCH_runner.json'))['passes'][-1])"
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

from repro.eval.jobs import code_fingerprint
from repro.eval.runner import RunnerStats

DEFAULT_BENCH_PATH = "BENCH_runner.json"


def stats_payload(stats: RunnerStats, scale: int,
                  report_seconds: Optional[float] = None) -> dict:
    """The JSON document describing one runner pass."""
    records = sorted(
        (asdict(r) for r in stats.records),
        key=lambda r: (-r["seconds"], str(r["key"])),
    )
    for record in records:
        key = record.pop("key")
        record["job"] = _job_label(key)
        record["seconds"] = round(record["seconds"], 4)
        record["cpu_seconds"] = round(record["cpu_seconds"], 4)
    payload = {
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "code_fingerprint": code_fingerprint(),
        "scale": scale,
        "jobs": stats.jobs,
        "requested_jobs": stats.requested,
        "unique_jobs": stats.deduplicated,
        "simulated": stats.simulated,
        "disk_hits": stats.disk_hits,
        "memory_hits": stats.memory_hits,
        "warm": stats.simulated == 0,
        "wall_clock_seconds": round(stats.wall_seconds, 3),
        "sequential_estimate_seconds": round(
            stats.sequential_estimate_seconds, 3),
        "speedup_vs_sequential": round(stats.speedup_vs_sequential, 3),
        "per_job": records,
    }
    if report_seconds is not None:
        payload["report_render_seconds"] = round(report_seconds, 3)
    return payload


#: Passes retained in the bench file before the oldest are dropped.
HISTORY_LIMIT = 8


def write_bench(stats: RunnerStats, scale: int,
                path: Union[str, Path] = DEFAULT_BENCH_PATH,
                report_seconds: Optional[float] = None) -> Path:
    """Append this pass to ``BENCH_runner.json``; returns the path.

    An unreadable or differently-shaped existing file is replaced.
    """
    target = Path(path)
    doc = {"passes": []}
    try:
        existing = json.loads(target.read_text(encoding="utf-8"))
        if isinstance(existing, dict) and isinstance(existing.get("passes"), list):
            doc = existing
    except (OSError, ValueError):
        pass
    doc["passes"].append(stats_payload(stats, scale, report_seconds))
    doc["passes"] = doc["passes"][-HISTORY_LIMIT:]
    target.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return target


def _job_label(key: dict) -> str:
    """Human-readable per-job label, e.g. ``cmp/li@1[BR]``."""
    triggers = ",".join(key.get("removal_triggers") or ())
    label = f"{key['model']}/{key['benchmark']}@{key['scale']}"
    if triggers:
        label += f"[{triggers}]"
    fp = key.get("config_fingerprint")
    if fp:
        label += f"#{fp[:8]}"
    return label
