"""Runner profiling: machine-readable timing of an artifact sweep.

Turns a :class:`repro.eval.runner.RunnerStats` into ``BENCH_runner.json``:
cold/warm wall-clock, the machine's CPU count next to the worker count
(so oversubscribed numbers read as what they are), a per-job breakdown
(key, provenance, wall/CPU/queue seconds) and the measured speedup
versus a one-process cold run of the same jobs (``null`` on warm passes
where nothing was simulated).

The file holds a bounded history of passes (oldest first), so a cold
sweep followed by a warm re-run records both the parallel speedup and
the zero-simulation warm behaviour.  Read the latest pass with::

    python -c "import json; print(json.load(open('BENCH_runner.json'))['passes'][-1])"
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Optional, Union

from repro.obs.session import obs_enabled, trace_dir
from repro.eval.jobs import code_fingerprint, job_label
from repro.eval.runner import RunnerStats

DEFAULT_BENCH_PATH = "BENCH_runner.json"


def stats_payload(stats: RunnerStats, scale: int,
                  report_seconds: Optional[float] = None) -> dict:
    """The JSON document describing one runner pass.

    When observability is enabled (:mod:`repro.obs`), each fresh
    simulation's :class:`~repro.obs.RunReport` is folded into its
    ``per_job`` row, so ``BENCH_runner.json`` carries the run's internal
    rates (removal fraction, IR-misp, backpressure, ...) next to its
    timing.  Failed jobs appear with ``source: "failed"`` and the
    worker's error string.
    """
    records = []
    for r in sorted(stats.records, key=lambda r: (-r.seconds, job_label(r.key))):
        record = {
            "job": job_label(r.key),
            "source": r.source,
            "seconds": round(r.seconds, 4),
            "cpu_seconds": round(r.cpu_seconds, 4),
            "queue_seconds": round(r.queue_seconds, 4),
        }
        if r.error is not None:
            record["error"] = r.error
        if r.attempts:
            record["attempts"] = [a.to_json() for a in r.attempts]
        if r.report is not None:
            record["report"] = r.report.to_json()
        records.append(record)
    directory = trace_dir()
    payload = {
        # Provenance only; excluded from every golden comparison.
        "generated_unix": int(time.time()),  # selfcheck: ok(wall-clock)
        "python": platform.python_version(),
        "code_fingerprint": code_fingerprint(),
        "scale": scale,
        "jobs": stats.jobs,
        "cpu_count": stats.cpu_count,
        "workers": stats.workers,
        "requested_jobs": stats.requested,
        "unique_jobs": stats.deduplicated,
        "simulated": stats.simulated,
        "disk_hits": stats.disk_hits,
        "memory_hits": stats.memory_hits,
        "failed": stats.failed,
        "aborted": stats.aborted,
        "retried": stats.retried,
        "timeouts": stats.timeouts,
        "pool_rebuilds": stats.pool_rebuilds,
        "poisoned": stats.poisoned,
        "warm": stats.simulated == 0,
        "wall_clock_seconds": round(stats.wall_seconds, 3),
        "sequential_estimate_seconds": round(
            stats.sequential_estimate_seconds, 3),
        # null on a warm pass: nothing was simulated, so there is no
        # sequential baseline to claim a speedup against.
        "speedup_vs_sequential": (
            None if stats.speedup_vs_sequential is None
            else round(stats.speedup_vs_sequential, 3)),
        "observability": {
            "enabled": obs_enabled(),
            "trace_dir": str(directory) if directory is not None else None,
        },
        "per_job": records,
    }
    if report_seconds is not None:
        payload["report_render_seconds"] = round(report_seconds, 3)
    return payload


#: Passes retained in the bench file before the oldest are dropped.
HISTORY_LIMIT = 8


def write_bench(stats: RunnerStats, scale: int,
                path: Union[str, Path] = DEFAULT_BENCH_PATH,
                report_seconds: Optional[float] = None) -> Path:
    """Append this pass to ``BENCH_runner.json``; returns the path.

    An unreadable or differently-shaped existing file is replaced.
    """
    target = Path(path)
    doc = {"passes": []}
    try:
        existing = json.loads(target.read_text(encoding="utf-8"))
        if isinstance(existing, dict) and isinstance(existing.get("passes"), list):
            doc = existing
    except (OSError, ValueError):
        pass
    doc["passes"].append(stats_payload(stats, scale, report_seconds))
    doc["passes"] = doc["passes"][-HISTORY_LIMIT:]
    target.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return target
