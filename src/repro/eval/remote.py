"""Remote execution and daemon federation: the eval stack as a fleet.

The slipstream paper scales throughput by spreading redundant contexts
over a CMP's processing elements; this module makes the eval stack
scale the same way over *machines*.  Two layers:

* :class:`RemoteBackend` — a :class:`~repro.eval.backends.WorkerBackend`
  whose "pool" is an eval daemon (:mod:`repro.eval.serve`) somewhere
  else.  Submitted :class:`~repro.eval.jobs.JobSpec`s are encoded with
  :func:`~repro.eval.serve.spec_to_json`, coalesced into pipelined
  ``/v1/submit`` batches over one persistent keep-alive
  :class:`~repro.eval.serve.ServeClient` connection, and resolved as
  the daemon streams result lines back.  Each line carries the result
  both as canonical JSON + sha256 digest and as a base64 pickle; the
  backend unpickles, *recomputes* the canonical digest locally and
  compares it to the wire digest — the cross-machine correctness gate.
  A mismatch raises :class:`WorkerDigestError` naming the worker.  A
  version gate runs at :meth:`RemoteBackend.start`: the worker's
  ``/v1/health`` code fingerprint must equal ours, because neither
  pickles nor digests are comparable across simulator versions.

* :class:`FederationBackend` — a front daemon's backend composing N
  :class:`RemoteBackend` workers plus a local fallback pool.  Jobs are
  sharded by :func:`~repro.eval.jobs.cache_entry_digest` — the *same*
  digest that shards the disk cache — so a job always lands on the
  worker whose disk cache is warm for it.  Each worker has a
  longest-job-first queue ordered by the
  :class:`~repro.eval.oracle.DurationOracle`'s learned estimates; a
  pump thread per worker drains its queue in pipelined batches and,
  when its own queue runs dry, *steals from the tail* (the cheapest
  jobs) of a peer backlogged beyond a full dispatch window — stealing
  moves a job off its cache-warm home, so it only pays against a real
  backlog.  A worker dying mid-batch marks it
  dead, and its un-acked jobs — queued or in flight without a result
  line — migrate to the survivors (bounded by the
  :class:`~repro.eval.resilience.RetryPolicy`'s retry budget), never
  losing or double-counting a result: a job whose result line already
  streamed back resolved its future and is not requeued.  With zero
  live workers the federation degrades gracefully to the local
  backend.

Everything is observable through the shared obs
:class:`~repro.obs.registry.MetricsRegistry` (``federation.*``
counters, per-worker queue-depth gauges), surfaced by the front
daemon's ``/v1/metrics`` endpoint.
"""

from __future__ import annotations

import base64
import http.client
import os
import pickle
import threading
import time
from bisect import insort
from collections import deque
from concurrent.futures import BrokenExecutor, Future
from concurrent.futures import CancelledError as FutureCancelledError
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.eval.backends import WorkerBackend, resolve_backend
from repro.eval.jobs import JobSpec, cache_entry_digest, code_fingerprint, job_label
from repro.eval.oracle import DurationOracle
from repro.eval.resilience import RetryPolicy
from repro.eval.serve import (
    ServeClient,
    ServeError,
    SpecError,
    canonical_result_blob,
    spec_to_json,
)
from repro.obs.registry import MetricsRegistry

#: Jobs coalesced into one pipelined ``/v1/submit`` round trip.
PIPELINE_DEPTH = 64
#: Per-worker in-flight window of the federation dispatcher.
FEDERATION_BATCH = 16
#: Environment variable naming the default remote daemon (HOST:PORT).
REMOTE_ENV = "REPRO_EVAL_REMOTE"


class RemoteError(RuntimeError):
    """Base of every remote/federation transport error."""


class RemoteVersionError(RemoteError):
    """Worker daemon runs a different simulator version than we do;
    neither its pickles nor its digests are comparable to ours."""


class RemoteProtocolError(RemoteError):
    """A worker daemon violated the wire protocol (missing pickle
    payload, stream closed without a result, unparseable line)."""


class RemoteJobError(RemoteError):
    """A job attempt failed *on* the worker (its own retries included);
    the transport itself is fine."""


class WorkerDigestError(RemoteError):
    """A worker's result does not hash to the digest it claimed — the
    cross-machine correctness gate tripped.  Structured: carries the
    offending worker's URL and the job label."""

    def __init__(self, worker: str, job: str, expected: Optional[str],
                 actual: str):
        super().__init__(
            f"digest mismatch from worker {worker} for job {job}: "
            f"wire digest {expected!r}, unpickled result hashes to "
            f"{actual!r}"
        )
        self.worker = worker
        self.job = job
        self.expected = expected
        self.actual = actual


def parse_worker_url(url: str) -> Tuple[str, int]:
    """(host, port) from ``HOST:PORT`` or ``http://HOST:PORT``."""
    trimmed = url.strip()
    for prefix in ("http://", "https://"):
        if trimmed.startswith(prefix):
            trimmed = trimmed[len(prefix):]
            break
    trimmed = trimmed.rstrip("/")
    host, sep, port = trimmed.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"worker URL {url!r} is not HOST:PORT")
    return host, int(port)


def decode_result_line(line: Any, spec: JobSpec,
                       worker: str) -> Tuple[object, float, float]:
    """(result object, wall seconds, cpu seconds) from one wire line.

    Verifies the cross-machine correctness gate: the base64 pickle is
    decoded and the canonical-JSON sha256 of the *reconstructed* object
    must equal the digest the worker sent.  Raises the structured
    :class:`WorkerDigestError` (naming ``worker``) on mismatch,
    :class:`RemoteJobError` when the worker reports the job failed, and
    :class:`RemoteProtocolError` on malformed lines.
    """
    job = job_label(spec.key)
    if not isinstance(line, dict):
        raise RemoteProtocolError(
            f"worker {worker}: non-object result line for {job}"
        )
    if not line.get("ok", False):
        raise RemoteJobError(
            f"worker {worker}: job {job} failed remotely: "
            f"{line.get('error', 'unknown error')}"
        )
    encoded = line.get("pickle")
    if not isinstance(encoded, str):
        raise RemoteProtocolError(
            f"worker {worker}: result line for {job} carries no pickle "
            f"payload (daemon too old?)"
        )
    try:
        result = pickle.loads(base64.b64decode(encoded.encode("ascii")))
    except Exception as exc:  # noqa: BLE001 - any decode failure
        raise RemoteProtocolError(
            f"worker {worker}: unpicklable result for {job}: {exc}"
        ) from exc
    _body, digest = canonical_result_blob(result)
    wire_digest = line.get("digest")
    if digest != wire_digest:
        raise WorkerDigestError(worker=worker, job=job,
                                expected=wire_digest, actual=digest)
    try:
        wall = float(line.get("wall_seconds") or 0.0)
        cpu = float(line.get("cpu_seconds") or 0.0)
    except (TypeError, ValueError):
        wall = cpu = 0.0
    return result, wall, cpu


@dataclass
class _RemoteItem:
    """One queued (spec, payload, future) awaiting a wire round trip."""

    spec: JobSpec
    payload: Dict[str, Any]
    future: "Future"


class RemoteBackend(WorkerBackend):
    """A worker pool that lives behind an eval daemon's HTTP API.

    The five :class:`~repro.eval.backends.WorkerBackend` methods over
    the wire: :meth:`start` connects and version-gates, :meth:`submit`
    enqueues and returns a future, a dispatcher thread coalesces the
    queue into pipelined batches over one keep-alive connection and
    resolves futures as result lines stream back.  A connection lost
    mid-stream marks the backend ``broken()`` and fails the un-acked
    futures with ``BrokenExecutor`` — exactly the crash contract the
    runner and the federation layer already handle (shutdown, restart,
    or migrate).
    """

    name = "remote"
    can_crash = True

    def __init__(self, url: Optional[str] = None, timeout: float = 600.0):
        super().__init__()
        self.url = url if url is not None else os.environ.get(REMOTE_ENV)
        self.timeout = timeout
        self.remote_fingerprint: Optional[str] = None
        self._client: Optional[ServeClient] = None
        self._queue: Deque[_RemoteItem] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._broken = False

    @property
    def running(self) -> bool:
        return self._running

    def broken(self) -> bool:
        return self._broken

    def start(self, workers: int) -> None:
        """Connect, health-probe, and version-gate the worker daemon.

        The effective pool width is the *daemon's* worker count, not
        the caller's ``workers`` argument — parallelism lives on the
        far side.
        """
        if self._running:
            raise RuntimeError("remote backend already running")
        if not self.url:
            raise ValueError(
                "remote backend needs a worker URL: use "
                f"'remote:HOST:PORT' or set ${REMOTE_ENV}"
            )
        host, port = parse_worker_url(self.url)
        client = ServeClient(host=host, port=port, timeout=self.timeout)
        health = client.health()
        theirs = health.get("code_fingerprint")
        ours = code_fingerprint()
        if theirs != ours:
            client.close()
            raise RemoteVersionError(
                f"worker {self.url} runs code fingerprint {theirs!r}, "
                f"this process runs {ours!r}: results are not comparable"
            )
        self.remote_fingerprint = theirs
        self._client = client
        self._workers = max(1, int(health.get("workers")
                                   or health.get("jobs") or 1))
        self._broken = False
        self._running = True
        self._thread = threading.Thread(
            target=self._dispatch_loop,
            name=f"repro-remote-{host}-{port}", daemon=True,
        )
        self._thread.start()

    def submit(self, spec: JobSpec,
               timeout_seconds: Optional[float] = None) -> "Future":
        future: Future = Future()
        if not self._running:
            raise RuntimeError("remote backend is not running")
        if self._broken:
            raise BrokenExecutor(f"worker {self.url} connection is broken")
        try:
            payload = spec_to_json(spec)
        except SpecError as exc:
            # Not remotable (chaos jobs, non-whitelisted configs):
            # fail the attempt, never ship a lossy encoding.
            future.set_exception(exc)
            return future
        with self._wake:
            self._queue.append(_RemoteItem(spec, payload, future))
            self._wake.notify()
        return future

    def shutdown(self, wait: bool = False) -> None:
        with self._wake:
            self._running = False
            leftovers = list(self._queue)
            self._queue.clear()
            self._wake.notify_all()
        for item in leftovers:
            item.future.cancel()
        thread, self._thread = self._thread, None
        if not wait and self._client is not None:
            # Interrupt a dispatcher blocked mid-stream.
            self._client.close()
        if thread is not None and wait:
            thread.join(timeout=self.timeout)
        if self._client is not None:
            self._client.close()
            self._client = None
        self._workers = 0

    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                while self._running and not self._queue:
                    self._wake.wait(timeout=0.5)
                if not self._running:
                    return
                items = [self._queue.popleft()
                         for _ in range(min(len(self._queue),
                                            PIPELINE_DEPTH))]
                broken = self._broken
            if broken:
                err = BrokenExecutor(
                    f"worker {self.url} connection is broken"
                )
                for item in items:
                    if not item.future.done():
                        item.future.set_exception(err)
                continue
            self._send_batch(items)

    def _send_batch(self, items: List[_RemoteItem]) -> None:
        """One pipelined round trip: N jobs out, N result lines back,
        futures resolved in the daemon's completion order."""
        assert self._client is not None
        pending = {index: item for index, item in enumerate(items)}
        started = time.monotonic()
        try:
            for line in self._client.submit(
                [item.payload for item in items], include_pickle=True
            ):
                item = pending.pop(line.get("index"), None)  # type: ignore[arg-type]
                if item is None:
                    continue
                try:
                    result, wall, cpu = decode_result_line(
                        line, item.spec, self.url or "?"
                    )
                except RemoteError as exc:
                    if not item.future.done():
                        item.future.set_exception(exc)
                    continue
                if not item.future.done():
                    item.future.set_result(
                        (result, wall, cpu, started, None)
                    )
            for item in pending.values():
                if not item.future.done():
                    item.future.set_exception(RemoteProtocolError(
                        f"worker {self.url} closed the stream without a "
                        f"result for {job_label(item.spec.key)}"
                    ))
        except (ServeError, http.client.HTTPException, ConnectionError,
                OSError, AttributeError, ValueError) as exc:
            # The daemon died or the connection dropped mid-stream:
            # every un-acked future fails broken; already-streamed
            # lines already resolved theirs (exactly-once).
            # (AttributeError/ValueError are how http.client surfaces a
            # socket closed under it — e.g. shutdown(wait=False) racing
            # a dispatcher still draining the chunked-stream trailer.)
            if not self._running:
                for item in pending.values():
                    item.future.cancel()
                return
            self._broken = True
            err = BrokenExecutor(
                f"worker {self.url} failed mid-batch: "
                f"{type(exc).__name__}: {exc}"
            )
            for item in pending.values():
                if not item.future.done():
                    item.future.set_exception(err)


@dataclass
class _FedEntry:
    """One federated job: outer future plus migration bookkeeping."""

    spec: JobSpec
    future: "Future"
    estimate: float
    attempts: int = 0


@dataclass
class _FedWorker:
    """One remote worker daemon's queue and liveness state."""

    index: int
    url: str
    backend: RemoteBackend
    queue: List[_FedEntry] = field(default_factory=list)
    alive: bool = False
    error: Optional[str] = None
    dispatched: int = 0


class FederationBackend(WorkerBackend):
    """Shard jobs across worker daemons; survive their deaths.

    Composes N :class:`RemoteBackend` workers behind the one
    :class:`~repro.eval.backends.WorkerBackend` surface the eval
    service already drives.  Dispatch policy:

    * **Home worker by cache digest.**  ``cache_entry_digest(key)`` —
      the digest that shards the disk cache — picks the home worker,
      so re-runs of a grid land each job back on the worker whose
      cache already holds it.  A dead home falls through to the next
      live worker in ring order.
    * **Longest-job-first queues.**  Each worker's queue is kept
      sorted by the duration oracle's estimate; pumps drain from the
      front (the expensive jobs) so no worker idles behind a late
      straggler.
    * **Work stealing.**  A pump whose queue is empty steals the
      *tail* (cheapest jobs) of the most-loaded live peer's queue —
      but only from a peer backlogged beyond one dispatch window,
      because a stolen job runs against a cache-cold worker.
    * **Migration.**  A worker failure requeues its un-acked jobs on
      the survivors, each migration counting against the retry
      policy's budget; with no survivors the jobs run on the local
      fallback backend.  Jobs whose result line already streamed back
      are resolved and never requeued — no result is lost or double
      counted.

    ``can_crash`` is False: worker death is handled *inside* the
    backend; the service never sees a broken pool.
    """

    name = "federation"
    can_crash = False

    def __init__(
        self,
        urls: Sequence[str],
        local: Union[str, WorkerBackend, None] = None,
        policy: Optional[RetryPolicy] = None,
        oracle: Optional[DurationOracle] = None,
        metrics: Optional[MetricsRegistry] = None,
        timeout: float = 600.0,
    ):
        super().__init__()
        if not urls:
            raise ValueError("federation needs at least one worker URL")
        self.policy = policy if policy is not None else RetryPolicy()
        self.oracle = oracle if oracle is not None else DurationOracle(None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timeout = timeout
        self._fleet = [
            _FedWorker(index, url, RemoteBackend(url, timeout=timeout))
            for index, url in enumerate(urls)
        ]
        self._local = resolve_backend(local, default="thread")
        self._local_jobs = 1
        self._local_lock = threading.Lock()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._running = False
        self._threads: List[threading.Thread] = []
        for counter in ("federation.jobs_forwarded", "federation.jobs_local",
                        "federation.jobs_migrated", "federation.jobs_stolen",
                        "federation.worker_failures"):
            self.metrics.counter(counter)
        self.metrics.gauge("federation.workers_alive")
        for worker in self._fleet:
            self.metrics.gauge(f"federation.queue_depth.{worker.index}")

    # -- lifecycle ------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    @property
    def workers(self) -> int:
        """Effective fleet width: live remote workers' pool sizes, or
        the local fallback width when the whole fleet is dead."""
        if not self._running:
            return 0
        with self._lock:
            width = sum(max(1, w.backend.workers)
                        for w in self._fleet if w.alive)
        return width or self._local_jobs

    def start(self, workers: int) -> None:
        """Probe every worker daemon; dead ones are recorded, not
        fatal — a fully-dead fleet degrades to local execution."""
        if self._running:
            raise RuntimeError("federation backend already running")
        self._local_jobs = max(1, workers)
        alive = 0
        for worker in self._fleet:
            try:
                worker.backend.start(1)
            except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                worker.alive = False
                worker.error = f"{type(exc).__name__}: {exc}"
                self.metrics.counter("federation.worker_failures").inc()
            else:
                worker.alive = True
                worker.error = None
                alive += 1
        self.metrics.gauge("federation.workers_alive").set(alive)
        self._running = True
        self._threads = []
        for worker in self._fleet:
            if not worker.alive:
                continue
            thread = threading.Thread(
                target=self._pump, args=(worker,),
                name=f"repro-fed-pump-{worker.index}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, wait: bool = False) -> None:
        with self._wake:
            self._running = False
            leftovers: List[_FedEntry] = []
            for worker in self._fleet:
                leftovers.extend(worker.queue)
                worker.queue.clear()
            self._wake.notify_all()
        for entry in leftovers:
            entry.future.cancel()
        for worker in self._fleet:
            if worker.backend.running:
                worker.backend.shutdown(wait=wait)
        threads, self._threads = self._threads, []
        if wait:
            for thread in threads:
                thread.join(timeout=self.timeout)
        with self._local_lock:
            if self._local.running:
                self._local.shutdown(wait=wait)
        self._workers = 0

    # -- submission -----------------------------------------------------

    def submit(self, spec: JobSpec,
               timeout_seconds: Optional[float] = None) -> "Future":
        if not self._running:
            raise RuntimeError("federation backend is not running")
        try:
            spec_to_json(spec)
        except SpecError:
            # Not expressible on the wire: the local pool runs it.
            return self._submit_local(spec, timeout_seconds)
        with self._wake:
            worker = self._home_worker(spec)
            if worker is not None:
                entry = _FedEntry(spec, Future(),
                                  self.oracle.estimate(spec.key))
                self._enqueue(worker, entry)
                self._wake.notify_all()
                return entry.future
        # Zero live workers: graceful degradation to local execution.
        return self._submit_local(spec, timeout_seconds)

    def _home_worker(self, spec: JobSpec) -> Optional[_FedWorker]:
        """The job's digest-sharded home, or the next live worker in
        ring order when the home is dead (lock held)."""
        home = int(cache_entry_digest(spec.key)[:2], 16) % len(self._fleet)
        for offset in range(len(self._fleet)):
            worker = self._fleet[(home + offset) % len(self._fleet)]
            if worker.alive:
                return worker
        return None

    def _enqueue(self, worker: _FedWorker, entry: _FedEntry) -> None:
        """Insert keeping the queue longest-estimate-first (lock held)."""
        insort(worker.queue, entry, key=lambda e: -e.estimate)
        self.metrics.gauge(
            f"federation.queue_depth.{worker.index}"
        ).set(len(worker.queue))

    def _submit_local(self, spec: JobSpec,
                      timeout_seconds: Optional[float]) -> "Future":
        with self._local_lock:
            self.metrics.counter("federation.jobs_local").inc()
            if not self._local.running:
                self._local.start(self._local_jobs)
            return self._local.submit(spec, timeout_seconds)

    # -- the per-worker pump --------------------------------------------

    def _pump(self, worker: _FedWorker) -> None:
        """Drain one worker's queue in pipelined batches; steal when
        dry; hand the worker's jobs to the survivors when it dies."""
        while True:
            with self._wake:
                while (self._running and worker.alive
                       and not worker.queue
                       and self._steal_victim(worker) is None):
                    self._wake.wait(timeout=0.25)
                if not self._running or not worker.alive:
                    return
                batch = self._take_batch(worker)
            if batch:
                self._dispatch(worker, batch)

    def _steal_victim(self, worker: _FedWorker) -> Optional[_FedWorker]:
        """The most-loaded live peer worth stealing from (lock held).

        A steal moves a job off its digest-sharded home, so the
        executing worker's cache is cold for it — re-running the grid
        later would re-simulate it.  Stealing therefore only kicks in
        when a peer is backlogged beyond a full dispatch window (more
        queued than it can even start): below that, cache affinity is
        worth more than the rebalance.
        """
        victim = None
        for peer in self._fleet:
            if (peer is worker or not peer.alive
                    or len(peer.queue) <= FEDERATION_BATCH):
                continue
            if victim is None or len(peer.queue) > len(victim.queue):
                victim = peer
        return victim

    def _take_batch(self, worker: _FedWorker) -> List[_FedEntry]:
        """Up to FEDERATION_BATCH entries: own queue front (longest
        jobs first), else the tail (cheapest jobs) of the most-loaded
        live peer (lock held)."""
        batch = worker.queue[:FEDERATION_BATCH]
        if batch:
            del worker.queue[:len(batch)]
            self.metrics.gauge(
                f"federation.queue_depth.{worker.index}"
            ).set(len(worker.queue))
            return batch
        victim = self._steal_victim(worker)
        if victim is None:
            return []
        steal = max(1, min(len(victim.queue) // 2, FEDERATION_BATCH))
        batch = victim.queue[-steal:]
        del victim.queue[-steal:]
        self.metrics.counter("federation.jobs_stolen").inc(len(batch))
        self.metrics.gauge(
            f"federation.queue_depth.{victim.index}"
        ).set(len(victim.queue))
        return batch

    def _dispatch(self, worker: _FedWorker, batch: List[_FedEntry]) -> None:
        """Submit one batch to ``worker``, resolving outer futures in
        completion order; collect the un-acked on failure."""
        with self._lock:
            self.metrics.counter("federation.jobs_forwarded").inc(len(batch))
            worker.dispatched += len(batch)
        inner: Dict["Future", _FedEntry] = {}
        failed: List[_FedEntry] = []
        failure: Optional[BaseException] = None
        for entry in batch:
            try:
                inner[worker.backend.submit(entry.spec, None)] = entry
            except Exception as exc:  # noqa: BLE001 - broken worker
                failed.append(entry)
                failure = exc
        for future in as_completed(inner):
            entry = inner[future]
            try:
                value = future.result()
            except FutureCancelledError:
                entry.future.cancel()
            except (BrokenExecutor, RemoteProtocolError) as exc:
                # Un-acked on a dying worker: candidate for migration.
                failed.append(entry)
                failure = exc
            except Exception as exc:  # noqa: BLE001 - surfaced per-job
                # RemoteJobError / WorkerDigestError / codec errors:
                # real per-job outcomes, never migrated (a digest
                # mismatch on another worker would mask the bug).
                if not entry.future.done():
                    entry.future.set_exception(exc)
            else:
                if not entry.future.done():
                    entry.future.set_result(value)
        if failed:
            self._worker_failed(worker, failed, failure)

    def _worker_failed(self, worker: _FedWorker, unacked: List[_FedEntry],
                       cause: Optional[BaseException]) -> None:
        """Mark ``worker`` dead and migrate every un-acked job — the
        failed batch entries plus whatever was still queued — to the
        survivors (or the local pool when none remain)."""
        reason = (f"{type(cause).__name__}: {cause}" if cause is not None
                  else "worker failed")
        local_fallback: List[_FedEntry] = []
        with self._wake:
            if worker.alive:
                worker.alive = False
                worker.error = reason
                self.metrics.counter("federation.worker_failures").inc()
                self.metrics.gauge("federation.workers_alive").set(
                    sum(1 for w in self._fleet if w.alive)
                )
            entries = unacked + worker.queue[:]
            worker.queue.clear()
            self.metrics.gauge(
                f"federation.queue_depth.{worker.index}"
            ).set(0)
            if not self._running:
                for entry in entries:
                    entry.future.cancel()
                entries = []
            migrated = 0
            for entry in entries:
                entry.attempts += 1
                if entry.attempts > self.policy.max_retries:
                    if not entry.future.done():
                        entry.future.set_exception(BrokenExecutor(
                            f"job {job_label(entry.spec.key)} exhausted "
                            f"{self.policy.max_retries} migrations; last "
                            f"worker failure: {reason}"
                        ))
                    continue
                target = self._home_worker(entry.spec)
                if target is None:
                    local_fallback.append(entry)
                    continue
                self._enqueue(target, entry)
                migrated += 1
            if migrated:
                self.metrics.counter("federation.jobs_migrated").inc(migrated)
                self._wake.notify_all()
        if worker.backend.running:
            worker.backend.shutdown(wait=False)
        for entry in local_fallback:
            self.metrics.counter("federation.jobs_migrated").inc()
            self._chain_local(entry)

    def _chain_local(self, entry: _FedEntry) -> None:
        """Run one migrated job on the local fallback pool, forwarding
        its outcome to the outer future."""
        try:
            inner = self._submit_local(entry.spec,
                                       self.policy.timeout_seconds)
        except Exception as exc:  # noqa: BLE001 - forwarded to caller
            if not entry.future.done():
                entry.future.set_exception(exc)
            return

        def forward(done: "Future", outer: "Future" = entry.future) -> None:
            if outer.done():
                return
            try:
                outer.set_result(done.result())
            except FutureCancelledError:
                outer.cancel()
            except BaseException as exc:  # noqa: BLE001 - forwarded
                outer.set_exception(exc)

        inner.add_done_callback(forward)

    # -- introspection --------------------------------------------------

    def worker_states(self) -> List[Dict[str, Any]]:
        """Per-worker fleet state, reported by the front daemon's
        ``/v1/health`` under ``"federation"``."""
        with self._lock:
            return [
                {
                    "url": worker.url,
                    "alive": worker.alive,
                    "queue_depth": len(worker.queue),
                    "dispatched": worker.dispatched,
                    "error": worker.error,
                }
                for worker in self._fleet
            ]


__all__ = [
    "FEDERATION_BATCH",
    "FederationBackend",
    "PIPELINE_DEPTH",
    "REMOTE_ENV",
    "RemoteBackend",
    "RemoteError",
    "RemoteJobError",
    "RemoteProtocolError",
    "RemoteVersionError",
    "WorkerDigestError",
    "decode_result_line",
    "parse_worker_url",
]
