"""Paper-style text rendering of experiment results.

Also home to the small renderers the observability CLI
(``python -m repro.obs``) shares: counter tables of
:class:`~repro.obs.RunReport` snapshots and trace summaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union


def render_table(
    rows: Sequence[Dict],
    columns: Sequence[str],
    headers: Optional[Sequence[str]] = None,
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render dict rows as a fixed-width text table."""
    headers = list(headers or columns)
    rendered: List[List[str]] = [headers]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for i, cells in enumerate(rendered):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(cells)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_bar_series(
    rows: Sequence[Dict],
    label_key: str,
    value_key: str,
    title: str = "",
    unit: str = "%",
    width: int = 40,
    vmax: Optional[float] = None,
) -> str:
    """Render one numeric series as horizontal ASCII bars (the paper's
    bar figures, in text)."""
    values = [float(row[value_key]) for row in rows]
    top = vmax if vmax is not None else max((abs(v) for v in values), default=1.0)
    top = top or 1.0
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    label_width = max((len(str(row[label_key])) for row in rows), default=0)
    for row, value in zip(rows, values):
        bar = "#" * max(int(round(abs(value) / top * width)), 0)
        sign = "-" if value < 0 else ""
        lines.append(
            f"{str(row[label_key]).ljust(label_width)}  "
            f"{sign}{bar} {value:.1f}{unit}"
        )
    return "\n".join(lines)


def render_counter_table(counters: Dict[str, Union[int, float]],
                         title: str = "") -> str:
    """Render a flat metrics snapshot (name → value), sorted by name.

    Used by ``python -m repro.obs summarize`` for a trace's final
    ``summary`` event and for :class:`~repro.obs.RunReport` counters.
    """
    rows = [{"counter": name, "value": counters[name]}
            for name in sorted(counters)]
    return render_table(rows, columns=["counter", "value"], title=title,
                        float_format="{:.4f}")


def render_stacked_fractions(
    rows: Sequence[Dict],
    categories: Sequence[str],
    title: str = "",
) -> str:
    """Render Figure 8's stacked-category breakdown as a table of
    per-category percentages."""
    table_rows = []
    for row in rows:
        entry = {"benchmark": row["benchmark"],
                 "total": 100.0 * row["total_fraction"]}
        for category in categories:
            entry[category] = 100.0 * row["categories"].get(category, 0.0)
        table_rows.append(entry)
    return render_table(
        table_rows,
        columns=["benchmark", "total", *categories],
        title=title,
        float_format="{:.1f}",
    )
