"""Execution-resilience primitives for the experiment runner.

Scaling the artifact sweep (and the fault campaigns of
:mod:`repro.fault.campaign`) to thousands of jobs means the runner must
survive the failure modes a long pass will eventually hit: a worker
OOM-killed or segfaulted mid-job, a job stuck past any reasonable wall
clock, and transient environment failures that succeed on retry.  This
module holds the policy and bookkeeping the hardened
:class:`repro.eval.runner.ExperimentRunner` runs under:

* :class:`RetryPolicy` — every knob in one dataclass: per-attempt
  wall-clock timeout, bounded retries with *deterministic* exponential
  backoff, the poison-quarantine threshold for pool crashes, and the
  pool-rebuild budget.  Surfaced as ``python -m repro.eval --timeout``
  / ``--retries`` (and the same flags on ``python -m repro.fault``).
* :class:`AttemptRecord` — per-attempt provenance, recorded on every
  :class:`~repro.eval.runner.JobRecord` and folded into
  ``BENCH_runner.json``.
* :class:`JobTimeout` — raised *inside* the worker when an attempt
  exceeds the policy's wall clock: by a ``SIGALRM`` itimer on a worker
  main thread (spawned backend), so a stuck job dies without taking
  the worker (or the pass) with it; off the main thread (the in-process
  backend, the serve daemon's threads) by the post-hoc monotonic
  deadline in :func:`repro.eval.jobs.run_attempt` — same exception,
  same classification, but a wedged attempt cannot be interrupted
  there (see that docstring for the trade-off).
* :class:`ChaosPlan` — first-class synthetic failure jobs (sleep past
  the timeout, ``os._exit`` mid-job, fail-N-times-then-succeed via a
  state file).  The resilience tests and the CI ``fault-smoke`` job
  injure the runner with these on purpose; they run through the exact
  same job pipeline as real simulations.

The same :class:`RetryPolicy` budget also governs cross-machine
failure handling: the daemon federation (:mod:`repro.eval.remote`)
counts each migration of an un-acked job off a dead worker daemon as
one attempt against ``max_retries``, so a job that keeps landing on
dying workers is bounded exactly like a job that keeps crashing a
local pool.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional


class JobTimeout(TimeoutError):
    """One job attempt exceeded its per-attempt wall-clock budget."""


class ChaosError(RuntimeError):
    """A synthetic failure raised by a :class:`ChaosPlan` job."""


@dataclass(frozen=True)
class RetryPolicy:
    """Every resilience knob of one runner pass.

    The defaults keep the historical behaviour *augmented*: no timeout
    (simulations are open-ended unless the caller bounds them), two
    retries for transient failures, and poison quarantine after two
    consecutive pool crashes with the job in flight.
    """

    #: Per-attempt wall-clock budget in seconds; None disables timeout
    #: enforcement entirely.
    timeout_seconds: Optional[float] = None
    #: Re-attempts after a failed attempt (error or timeout).  0 restores
    #: fail-fast behaviour.
    max_retries: int = 2
    #: First retry waits this long; each further retry doubles it
    #: (deterministic exponential backoff — no jitter, so passes are
    #: reproducible).
    backoff_base_seconds: float = 0.25
    #: Ceiling on any single backoff wait.
    backoff_cap_seconds: float = 8.0
    #: A job in flight during this many *consecutive* pool crashes is
    #: quarantined as poison (recorded ``"failed"``, never resubmitted).
    poison_threshold: int = 2
    #: Pool rebuilds allowed within one pass before the runner gives up
    #: and aborts the remaining queue (victims tagged ``"aborted"``).
    max_pool_rebuilds: int = 5
    #: Driver-side hard deadline: a worker that has not answered after
    #: ``timeout_seconds * hard_timeout_factor`` is presumed wedged
    #: beyond ``SIGALRM``'s reach (blocked in C code) and its pool is
    #: killed and rebuilt.  Only active when ``timeout_seconds`` is set.
    hard_timeout_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if self.backoff_base_seconds < 0 or self.backoff_cap_seconds < 0:
            raise ValueError("backoff seconds must be >= 0")
        if self.hard_timeout_factor < 1.0:
            raise ValueError("hard_timeout_factor must be >= 1.0")

    def backoff_seconds(self, retry_index: int) -> float:
        """Wait before retry ``retry_index`` (1-based), deterministic."""
        if retry_index < 1:
            return 0.0
        return min(
            self.backoff_base_seconds * (2.0 ** (retry_index - 1)),
            self.backoff_cap_seconds,
        )

    @property
    def hard_deadline_seconds(self) -> Optional[float]:
        """Driver-side give-up-on-the-worker deadline, or None."""
        if self.timeout_seconds is None:
            return None
        return self.timeout_seconds * self.hard_timeout_factor


@dataclass
class AttemptRecord:
    """Provenance of one attempt at one job.

    ``outcome`` is one of ``"ok"`` (returned a result), ``"error"`` (the
    job raised), ``"timeout"`` (exceeded the per-attempt wall clock) or
    ``"crash"`` (the worker process died with the job in flight).
    """

    index: int
    outcome: str
    seconds: float
    error: Optional[str] = None

    def to_json(self) -> dict:
        record = {
            "index": self.index,
            "outcome": self.outcome,
            "seconds": round(self.seconds, 4),
        }
        if self.error is not None:
            record["error"] = self.error
        return record


# ----------------------------------------------------------------------
# Synthetic failure jobs (chaos engineering for the runner itself).
# ----------------------------------------------------------------------

#: Behaviours a :class:`ChaosPlan` can request.
CHAOS_BEHAVIORS = ("ok", "raise", "exit", "sleep", "flaky", "interrupt")


@dataclass(frozen=True)
class ChaosPlan:
    """One synthetic job's scripted (mis)behaviour.

    * ``"ok"`` — sleep ``seconds`` (if any) and return ``"ok"``.
    * ``"raise"`` — raise :class:`ChaosError` every time.
    * ``"exit"`` — ``os._exit(exit_code)``: the worker process dies
      mid-job without unwinding, exactly like an OOM kill or segfault.
    * ``"sleep"`` — sleep ``seconds`` then return; pair with a policy
      timeout shorter than ``seconds`` to exercise the timeout path.
    * ``"flaky"`` — fail the first ``fail_times`` attempts (counted in
      ``state_file``, which survives process boundaries), then succeed.
    * ``"interrupt"`` — raise ``KeyboardInterrupt``, aborting the pass
      the way a real Ctrl-C would (checkpoint/resume tests).
    """

    behavior: str
    seconds: float = 0.0
    exit_code: int = 1
    fail_times: int = 0
    state_file: str = ""

    def __post_init__(self) -> None:
        if self.behavior not in CHAOS_BEHAVIORS:
            raise ValueError(
                f"unknown chaos behavior {self.behavior!r}; "
                f"expected one of {CHAOS_BEHAVIORS}"
            )
        if self.behavior == "flaky" and not self.state_file:
            raise ValueError("flaky chaos requires a state_file")


def execute_chaos(plan: ChaosPlan) -> str:
    """Carry out one chaos job's scripted behaviour (the worker side)."""
    if plan.seconds > 0:
        time.sleep(plan.seconds)
    if plan.behavior in ("ok", "sleep"):
        return "ok"
    if plan.behavior == "raise":
        raise ChaosError("chaos: scripted failure")
    if plan.behavior == "interrupt":
        raise KeyboardInterrupt("chaos: scripted interrupt")
    if plan.behavior == "exit":
        os._exit(plan.exit_code)
    # "flaky": fail the first N attempts, tallied in a state file so the
    # count survives pool-worker process boundaries.
    attempts = 0
    try:
        with open(plan.state_file, "r", encoding="utf-8") as handle:
            attempts = int(handle.read().strip() or 0)
    except (OSError, ValueError):
        attempts = 0
    with open(plan.state_file, "w", encoding="utf-8") as handle:
        handle.write(str(attempts + 1))
    if attempts < plan.fail_times:
        raise ChaosError(
            f"chaos: flaky failure {attempts + 1}/{plan.fail_times}"
        )
    return "ok"


__all__ = [
    "AttemptRecord",
    "CHAOS_BEHAVIORS",
    "ChaosError",
    "ChaosPlan",
    "JobTimeout",
    "RetryPolicy",
    "execute_chaos",
]
