"""Parallel experiment runner: fan simulation jobs out over processes.

The artifact suite's jobs (:func:`repro.eval.jobs.enumerate_artifact_jobs`)
are embarrassingly parallel, so the runner:

1. deduplicates the requested specs by :class:`~repro.eval.jobs.JobKey`;
2. satisfies what it can from the in-process and persistent caches;
3. fans the remaining cold jobs out over a
   ``concurrent.futures.ProcessPoolExecutor`` (``--jobs N``), longest
   expected jobs first so the pool drains evenly — expected durations
   come from the :class:`~repro.eval.oracle.DurationOracle`, which
   learns each job's measured CPU seconds across passes (static
   per-model weights bootstrap the first sweep);
4. stores every fresh result in both caches, making the subsequent
   report rendering (and the next cold start) pure cache hits.

``jobs=1`` runs inline — no pool, no pickling — and is the reference
the parallel path is tested against: results must be bit-identical.

The pool itself is a pluggable :class:`~repro.eval.backends.WorkerBackend`
(``backend="spawn"`` — the historical process pool — or ``"thread"``
for an in-process pool with no pickling or startup cost; the eval
daemon of :mod:`repro.eval.serve` shares the same abstraction).

The runner is **resilient** (:mod:`repro.eval.resilience`): each job
attempt runs under the :class:`~repro.eval.resilience.RetryPolicy`'s
wall-clock timeout (a ``SIGALRM`` itimer inside the executing process,
so a stuck job dies without taking its worker along; in-process
backends fall back to the post-hoc monotonic deadline documented on
:func:`repro.eval.jobs.run_attempt`), failed attempts are retried with
deterministic exponential backoff, a crashed pool (worker OOM-killed
or segfaulted: ``BrokenExecutor``) is rebuilt and the innocent
in-flight jobs requeued, and a job in flight across
``poison_threshold`` consecutive crashes is quarantined as poison
instead of sinking the pass.  Because every completed job is absorbed
into the persistent :class:`~repro.eval.jobs.DiskCache` *as it
finishes*, an interrupted pass checkpoints itself: rerunning the same
specs resumes from the last absorbed job with zero re-simulation.

Per-job wall-clock, cache provenance and per-attempt outcomes are
recorded in a :class:`RunnerStats`, which :mod:`repro.eval.profiling`
turns into ``BENCH_runner.json``.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.eval import models
from repro.eval.backends import WorkerBackend, resolve_backend
from repro.eval.jobs import (
    MISS,
    JobKey,
    JobSpec,
    job_label,
    run_attempt,
)
from repro.eval.oracle import DurationOracle
from repro.eval.resilience import AttemptRecord, JobTimeout, RetryPolicy
from repro.obs import RunReport


@dataclass
class JobRecord:
    """Provenance and timing of one job within a runner pass.

    ``seconds`` is the wall clock inside the worker (inflated when
    workers outnumber cores); ``cpu_seconds`` is the job's process CPU
    time, the contention-independent cost; ``queue_seconds`` is how
    long the job sat between the driver submitting it and the worker
    starting it (submission overhead plus the wait behind busy
    workers — the scheduling cost the duration-oracle ordering is
    there to shrink).  ``error`` is set when the
    job did not produce a result; ``source`` then distinguishes
    ``"failed"`` (the job itself raised, timed out, or was quarantined
    as poison) from ``"aborted"`` (an innocent victim: the pass gave up
    before the job could run, e.g. after exhausting the pool-rebuild
    budget).  ``attempts`` carries the per-attempt provenance whenever
    resilience machinery engaged (a retry, timeout, crash or failure);
    a clean first-attempt success leaves it empty to keep warm passes
    lean.  ``report`` is the job's observability aggregation
    (:class:`repro.obs.RunReport`), present only for fresh simulations
    run with observability enabled.
    """

    key: JobKey
    source: str  # "simulated" | "disk" | "memory" | "failed" | "aborted"
    seconds: float
    cpu_seconds: float = 0.0
    queue_seconds: float = 0.0
    error: Optional[str] = None
    report: Optional[RunReport] = None
    attempts: List[AttemptRecord] = field(default_factory=list)


class RunnerError(RuntimeError):
    """One or more jobs of a runner pass failed.

    Raised *after* the pass completes, so the surviving results are
    already absorbed into the caches and :attr:`stats` is fully
    populated (``wall_seconds`` included) with a ``"failed"``
    :class:`JobRecord` per casualty.  ``failures`` pairs each failed
    job's key with the exception its final attempt raised; ``aborted``
    lists the innocent victims the pass gave up on (their records carry
    ``source="aborted"``), so blame is attributed correctly.
    """

    def __init__(self, failures: List[Tuple[JobKey, BaseException]],
                 stats: "RunnerStats",
                 aborted: Optional[List[JobKey]] = None):
        self.failures = failures
        self.stats = stats
        self.aborted = list(aborted or [])
        shown = "; ".join(
            f"{job_label(key)}: {type(exc).__name__}: {exc}"
            for key, exc in failures[:3]
        )
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        victims = (
            f"; {len(self.aborted)} pending job(s) aborted"
            if self.aborted else ""
        )
        super().__init__(
            f"{len(failures)} of {stats.deduplicated} jobs failed: "
            f"{shown}{more}{victims}"
        )


@dataclass
class RunnerStats:
    """What one :meth:`ExperimentRunner.run` pass did."""

    jobs: int = 1
    #: Physical parallelism context: CPUs the machine reports, and the
    #: workers the pass actually used.  ``workers > cpu_count`` means
    #: the pool was oversubscribed — worker wall clocks are inflated by
    #: time-slicing and the wall-clock speedup is bounded by
    #: ``cpu_count``, not ``jobs``.
    cpu_count: int = 0
    workers: int = 0
    requested: int = 0
    deduplicated: int = 0
    simulated: int = 0
    disk_hits: int = 0
    memory_hits: int = 0
    failed: int = 0
    #: Innocent jobs the pass gave up on (``source="aborted"`` records).
    aborted: int = 0
    #: Attempts beyond the first, across all jobs.
    retried: int = 0
    #: Attempts that exceeded the per-attempt wall clock.
    timeouts: int = 0
    #: Times the process pool crashed and was rebuilt.
    pool_rebuilds: int = 0
    #: Jobs quarantined after repeated pool crashes with them in flight.
    poisoned: int = 0
    wall_seconds: float = 0.0
    records: List[JobRecord] = field(default_factory=list)

    @property
    def reports(self) -> List[RunReport]:
        """Every job's :class:`~repro.obs.RunReport`, when observability
        was enabled for the pass (fresh simulations only)."""
        return [r.report for r in self.records if r.report is not None]

    @property
    def sequential_estimate_seconds(self) -> float:
        """Sum of per-job CPU time: what a one-process cold run of the
        same work would cost (cache lookups excluded).  CPU time, not
        worker wall clock, so oversubscribing a small machine does not
        inflate the estimate."""
        return sum(
            r.cpu_seconds for r in self.records if r.source == "simulated"
        )

    @property
    def speedup_vs_sequential(self) -> Optional[float]:
        """None on a warm pass: with zero simulations the estimate is
        zero CPU seconds over pure cache-lookup wall clock, and the
        resulting 0.0x said "parallelism is broken" when it actually
        meant "there was nothing to parallelize"."""
        if self.simulated == 0 or self.wall_seconds <= 0.0:
            return None
        return self.sequential_estimate_seconds / self.wall_seconds


class _PendingJob:
    """Driver-side state of one not-yet-completed cold job."""

    __slots__ = ("spec", "attempt", "crash_count", "not_before", "attempts")

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.attempt = 0          # 0-based index of the next attempt
        self.crash_count = 0      # consecutive pool crashes while in flight
        self.not_before = 0.0     # monotonic time before which not to resubmit
        self.attempts: List[AttemptRecord] = []


class ExperimentRunner:
    """Run a batch of simulation jobs, in parallel, through the caches."""

    def __init__(self, jobs: int = 1, use_disk_cache: bool = True,
                 policy: Optional[RetryPolicy] = None,
                 backend: Union[str, WorkerBackend, None] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.use_disk_cache = use_disk_cache
        self.policy = policy if policy is not None else RetryPolicy()
        #: Worker backend for the ``jobs > 1`` pool path: a
        #: :mod:`repro.eval.backends` name ("spawn", "thread",
        #: "inline"), a ready instance, or None for the default spawned
        #: process pool.  ``jobs=1`` always runs inline, backend-free.
        self.backend = backend

    def run(self, specs: Sequence[JobSpec]) -> RunnerStats:
        """Execute ``specs`` (deduplicated), warming both cache levels.

        Returns the pass's :class:`RunnerStats`; the results themselves
        are read back through :mod:`repro.eval.models` accessors.

        A job that fails (after its policy's retries) does not abort the
        pass: every other job still runs and is absorbed, the casualty
        is recorded as a ``"failed"`` :class:`JobRecord`, and one
        aggregated :class:`RunnerError` (carrying the fully-populated
        stats) is raised once the pass completes.  The ``jobs=1`` inline
        path behaves identically, minus the pool-crash machinery.
        """
        stats = RunnerStats(jobs=self.jobs, requested=len(specs),
                            cpu_count=os.cpu_count() or 1)
        failures: List[Tuple[JobKey, BaseException]] = []
        aborted: List[JobKey] = []
        t0 = time.perf_counter()

        unique: Dict[JobKey, JobSpec] = {}
        for spec in specs:
            unique.setdefault(spec.key, spec)
        stats.deduplicated = len(unique)

        disk = models.disk_cache() if self.use_disk_cache else None
        cold: List[JobSpec] = []
        for key, spec in unique.items():
            if key in models._CACHE:
                stats.memory_hits += 1
                stats.records.append(JobRecord(key, "memory", 0.0))
                continue
            if disk is not None:
                hit = disk.load(key)
                if hit is not MISS:
                    models._CACHE[key] = hit
                    stats.disk_hits += 1
                    stats.records.append(JobRecord(key, "disk", 0.0))
                    continue
            cold.append(spec)

        if cold:
            # Longest expected job first, by learned CPU seconds (static
            # model weights for jobs never measured), so the pool drains
            # evenly instead of idling behind one late-submitted biggie.
            oracle = DurationOracle.for_cache_root(
                disk.root if disk is not None else None
            )
            cold[:] = oracle.rank_longest_first(cold)
            if self.jobs == 1:
                self._run_inline(cold, disk, stats, failures, oracle)
            else:
                self._run_pool(cold, disk, stats, failures, aborted, oracle)
            oracle.save()

        stats.wall_seconds = time.perf_counter() - t0
        if failures:
            raise RunnerError(failures, stats, aborted)
        return stats

    # ------------------------------------------------------------------
    # Inline path (jobs=1): attempts with timeout + retry, no pool.
    # ------------------------------------------------------------------

    def _run_inline(self, cold: List[JobSpec], disk, stats: RunnerStats,
                    failures: List[Tuple[JobKey, BaseException]],
                    oracle: DurationOracle) -> None:
        policy = self.policy
        stats.workers = 1
        for spec in cold:
            job = _PendingJob(spec)
            while True:
                a0 = time.perf_counter()
                submitted = time.monotonic()
                try:
                    result, seconds, cpu, started, report = run_attempt(
                        spec, policy.timeout_seconds
                    )
                except JobTimeout as exc:
                    stats.timeouts += 1
                    retrying = self._attempt_failed(
                        job, "timeout", exc, time.perf_counter() - a0,
                        stats, failures,
                    )
                except Exception as exc:
                    retrying = self._attempt_failed(
                        job, "error", exc, time.perf_counter() - a0,
                        stats, failures,
                    )
                else:
                    if job.attempts:
                        job.attempts.append(AttemptRecord(
                            job.attempt, "ok", time.perf_counter() - a0))
                    self._absorb(spec.key, result, seconds, cpu,
                                 max(0.0, started - submitted), report,
                                 disk, stats, oracle, job.attempts)
                    break
                if not retrying:
                    break
                wait_s = policy.backoff_seconds(job.attempt)
                if wait_s > 0:
                    time.sleep(wait_s)

    # ------------------------------------------------------------------
    # Pool path: bounded in-flight submission over a rebuildable pool.
    # ------------------------------------------------------------------

    def _run_pool(self, cold: List[JobSpec], disk, stats: RunnerStats,
                  failures: List[Tuple[JobKey, BaseException]],
                  aborted: List[JobKey],
                  oracle: DurationOracle) -> None:
        """Drain ``cold`` through a worker backend, surviving crashes.

        At most ``workers`` jobs are in flight at once, so when the pool
        crashes the suspect set is exactly the in-flight jobs: each
        suspect's crash count rises and it is requeued (until
        ``poison_threshold`` quarantines it); queued jobs were never
        submitted and are requeued blamelessly.  The pool itself is
        rebuilt up to ``max_pool_rebuilds`` times, after which the pass
        gives up: suspects are recorded ``"failed"``, never-run victims
        ``"aborted"``.  Crash recovery and the driver-side hard
        deadline engage only as far as the backend supports them
        (``can_crash`` / ``can_kill_workers``): an in-process thread
        pool cannot lose a worker, and its wedged jobs cannot be
        killed, so there the per-attempt post-hoc deadline is the
        timeout story.
        """
        policy = self.policy
        workers = min(self.jobs, len(cold))
        stats.workers = workers
        queue: Deque[_PendingJob] = deque(_PendingJob(s) for s in cold)
        inflight: Dict[Future, Tuple[_PendingJob, float]] = {}
        backend = resolve_backend(self.backend)
        rebuilds = 0
        hard_blamed: Optional[_PendingJob] = None

        try:
            while queue or inflight:
                if not backend.running:
                    backend.start(workers)
                    # A backend may resolve to a different effective
                    # width than asked (a remote daemon reports *its*
                    # pool size); record what the pass actually got.
                    stats.workers = backend.workers or workers
                now = time.monotonic()

                # Submit ready jobs up to the in-flight bound.  Crash
                # suspects (in flight during a previous pool crash) are
                # *probed*: resubmitted strictly alone, so a repeat
                # crash is unambiguously theirs and an innocent
                # bystander is never blamed twice by collocation.
                probing = any(
                    job.crash_count > 0 for job, _ in inflight.values()
                )
                while not probing and len(inflight) < workers:
                    ready = [i for i, job in enumerate(queue)
                             if job.not_before <= now]
                    if not ready:
                        break
                    index = next(
                        (i for i in ready if queue[i].crash_count == 0),
                        None,
                    )
                    if index is None:
                        # Only suspects remain: probe one, alone.
                        if inflight:
                            break  # drain the clean jobs first
                        index = ready[0]
                        probing = True
                    queue.rotate(-index)
                    job = queue.popleft()
                    queue.rotate(index)
                    future = backend.submit(job.spec, policy.timeout_seconds)
                    # Submit-time monotonic stamp: the worker reports
                    # its own start-time reading back, and the
                    # difference is the job's queue delay.
                    inflight[future] = (job, time.monotonic())

                if not inflight:
                    # Everything queued is backing off: sleep it out.
                    time.sleep(max(
                        0.005,
                        min(job.not_before for job in queue) - now,
                    ))
                    continue

                done, _ = wait(
                    inflight, timeout=self._wait_timeout(inflight, queue, now),
                    return_when=FIRST_COMPLETED,
                )

                crashed: List[Tuple[_PendingJob, BaseException, float]] = []
                for future in done:
                    job, submitted = inflight.pop(future)
                    elapsed = time.monotonic() - submitted
                    try:
                        result, seconds, cpu, started, report = \
                            future.result()
                    except JobTimeout as exc:
                        stats.timeouts += 1
                        if self._attempt_failed(job, "timeout", exc, elapsed,
                                                stats, failures):
                            job.not_before = (
                                time.monotonic()
                                + policy.backoff_seconds(job.attempt)
                            )
                            queue.append(job)
                    except BrokenExecutor as exc:
                        crashed.append((job, exc, elapsed))
                    except Exception as exc:
                        if self._attempt_failed(job, "error", exc, elapsed,
                                                stats, failures):
                            job.not_before = (
                                time.monotonic()
                                + policy.backoff_seconds(job.attempt)
                            )
                            queue.append(job)
                    else:
                        if job.attempts:
                            job.attempts.append(AttemptRecord(
                                job.attempt, "ok", elapsed))
                        self._absorb(job.spec.key, result, seconds, cpu,
                                     max(0.0, started - submitted), report,
                                     disk, stats, oracle, job.attempts)

                if crashed or backend.broken():
                    # The pool is dead: every remaining in-flight future
                    # is doomed — fold them into the suspect set.
                    for future, (job, submitted) in list(inflight.items()):
                        crashed.append((
                            job,
                            BrokenExecutor(
                                "worker pool crashed with the job in flight"
                            ),
                            time.monotonic() - submitted,
                        ))
                    inflight.clear()
                    backend.shutdown(wait=False)
                    rebuilds += 1
                    stats.pool_rebuilds += 1
                    if rebuilds > policy.max_pool_rebuilds:
                        self._abort(crashed, queue, stats, failures, aborted)
                        return
                    self._handle_crash(crashed, queue, stats, failures,
                                       hard_blamed)
                    hard_blamed = None
                    continue

                # Driver-side hard deadline: a worker silent past the
                # policy's hard deadline is presumed wedged beyond
                # SIGALRM's reach; kill its pool and let the crash path
                # attribute blame to it alone.  Only enforceable on
                # backends whose workers can actually be killed.
                hard = policy.hard_deadline_seconds
                if hard is not None and inflight and backend.can_kill_workers:
                    now = time.monotonic()
                    overdue = [
                        (job, submitted)
                        for job, submitted in inflight.values()
                        if now - submitted > hard
                    ]
                    if overdue:
                        hard_blamed = overdue[0][0]
                        backend.kill_workers()
        finally:
            if backend.running:
                backend.shutdown(wait=False)

    def _wait_timeout(self, inflight, queue, now: float) -> Optional[float]:
        """How long :func:`wait` may block: until the next backoff expiry
        or the next hard deadline, whichever is sooner."""
        deadlines = []
        hard = self.policy.hard_deadline_seconds
        if hard is not None:
            deadlines.extend(
                submitted + hard for _, submitted in inflight.values()
            )
        deadlines.extend(
            job.not_before for job in queue if job.not_before > now
        )
        if not deadlines:
            return None
        return max(0.01, min(deadlines) - now)

    def _handle_crash(self, crashed, queue, stats: RunnerStats,
                      failures, hard_blamed: Optional[_PendingJob]) -> None:
        """Attribute one pool crash to its in-flight suspects.

        Every suspect's consecutive-crash count rises (unless a
        driver-side hard timeout already pinned blame on one job, in
        which case the others are innocent bystanders we killed
        ourselves); a suspect reaching ``poison_threshold`` is
        quarantined, the rest are requeued behind their backoff.
        """
        policy = self.policy
        now = time.monotonic()
        for job, exc, elapsed in crashed:
            blamed = hard_blamed is None or job is hard_blamed
            outcome = "crash"
            if job is hard_blamed:
                outcome = "timeout"
                stats.timeouts += 1
                exc = JobTimeout(
                    f"{job_label(job.spec.key)}: no response within the "
                    f"hard deadline ({policy.hard_deadline_seconds:.1f}s); "
                    "worker killed"
                )
            if blamed:
                job.crash_count += 1
            job.attempts.append(AttemptRecord(
                job.attempt, outcome, elapsed,
                error=f"{type(exc).__name__}: {exc}",
            ))
            if job.crash_count >= policy.poison_threshold:
                stats.poisoned += 1
                poison_exc = RuntimeError(
                    f"poison job: in flight during {job.crash_count} "
                    f"consecutive pool crashes (last: {exc})"
                )
                self._record_failure(job.spec.key, poison_exc, failures,
                                     stats, job.attempts)
                continue
            job.attempt += 1
            stats.retried += 1
            job.not_before = now + policy.backoff_seconds(job.attempt)
            queue.append(job)

    def _abort(self, crashed, queue, stats: RunnerStats, failures,
               aborted: List[JobKey]) -> None:
        """The pool-rebuild budget is exhausted: give up on the pass.

        Crash suspects are the candidate culprits — recorded
        ``"failed"`` — while the jobs still waiting in the queue never
        ran at all and are tagged ``"aborted"`` so they are not blamed.
        """
        for job, exc, elapsed in crashed:
            job.attempts.append(AttemptRecord(
                job.attempt, "crash", elapsed,
                error=f"{type(exc).__name__}: {exc}",
            ))
            final = RuntimeError(
                f"pool-rebuild budget exhausted "
                f"({self.policy.max_pool_rebuilds}) with the job in "
                f"flight (last: {exc})"
            )
            self._record_failure(job.spec.key, final, failures, stats,
                                 job.attempts)
        while queue:
            job = queue.popleft()
            aborted.append(job.spec.key)
            stats.aborted += 1
            stats.records.append(JobRecord(
                job.spec.key, "aborted", 0.0,
                error="aborted: pool-rebuild budget exhausted before the "
                      "job could run",
                attempts=job.attempts,
            ))

    # ------------------------------------------------------------------
    # Shared bookkeeping.
    # ------------------------------------------------------------------

    def _attempt_failed(self, job: _PendingJob, outcome: str,
                        exc: BaseException, elapsed: float,
                        stats: RunnerStats, failures) -> bool:
        """Record one failed attempt; returns True when it will retry."""
        job.attempts.append(AttemptRecord(
            job.attempt, outcome, elapsed,
            error=f"{type(exc).__name__}: {exc}",
        ))
        if job.attempt < self.policy.max_retries:
            job.attempt += 1
            stats.retried += 1
            return True
        self._record_failure(job.spec.key, exc, failures, stats,
                             job.attempts)
        return False

    @staticmethod
    def _record_failure(key: JobKey, exc: BaseException,
                        failures: List[Tuple[JobKey, BaseException]],
                        stats: RunnerStats,
                        attempts: Optional[List[AttemptRecord]] = None) -> None:
        failures.append((key, exc))
        stats.failed += 1
        stats.records.append(
            JobRecord(key, "failed", 0.0,
                      error=f"{type(exc).__name__}: {exc}",
                      attempts=list(attempts or []))
        )

    @staticmethod
    def _absorb(key: JobKey, result, seconds: float, cpu_seconds: float,
                queue_seconds: float, report: Optional[RunReport], disk,
                stats: RunnerStats, oracle: DurationOracle,
                attempts: Optional[List[AttemptRecord]] = None) -> None:
        models._CACHE[key] = result
        if disk is not None:
            disk.store(key, result)
        oracle.observe(key, cpu_seconds)
        stats.simulated += 1
        stats.records.append(
            JobRecord(key, "simulated", seconds, cpu_seconds, queue_seconds,
                      report=report, attempts=list(attempts or []))
        )


def run_artifact_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    use_disk_cache: bool = True,
    policy: Optional[RetryPolicy] = None,
    backend: Union[str, WorkerBackend, None] = None,
) -> RunnerStats:
    """Convenience wrapper: one runner pass over ``specs``."""
    return ExperimentRunner(
        jobs=jobs, use_disk_cache=use_disk_cache, policy=policy,
        backend=backend,
    ).run(specs)


__all__ = [
    "ExperimentRunner",
    "JobRecord",
    "RunnerError",
    "RunnerStats",
    "run_artifact_jobs",
]
