"""Parallel experiment runner: fan simulation jobs out over processes.

The artifact suite's jobs (:func:`repro.eval.jobs.enumerate_artifact_jobs`)
are embarrassingly parallel, so the runner:

1. deduplicates the requested specs by :class:`~repro.eval.jobs.JobKey`;
2. satisfies what it can from the in-process and persistent caches;
3. fans the remaining cold jobs out over a
   ``concurrent.futures.ProcessPoolExecutor`` (``--jobs N``), largest
   expected jobs first so the pool drains evenly;
4. stores every fresh result in both caches, making the subsequent
   report rendering (and the next cold start) pure cache hits.

``jobs=1`` runs inline — no pool, no pickling — and is the reference
the parallel path is tested against: results must be bit-identical.

Per-job wall-clock and cache provenance are recorded in a
:class:`RunnerStats`, which :mod:`repro.eval.profiling` turns into
``BENCH_runner.json``.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.eval import models
from repro.eval.jobs import MISS, JobKey, JobSpec, timed_simulate

#: Rough relative cost of each job kind, used only to order submissions
#: (longest first) so a nearly-drained pool is not left waiting on one
#: big straggler.
_MODEL_WEIGHT = {"cmp": 4, "fault": 3, "ss128": 2, "ss64": 2, "count": 1}


@dataclass
class JobRecord:
    """Provenance and timing of one job within a runner pass.

    ``seconds`` is the wall clock inside the worker (inflated when
    workers outnumber cores); ``cpu_seconds`` is the job's process CPU
    time, the contention-independent cost.
    """

    key: JobKey
    source: str  # "simulated" | "disk" | "memory"
    seconds: float
    cpu_seconds: float = 0.0


@dataclass
class RunnerStats:
    """What one :meth:`ExperimentRunner.run` pass did."""

    jobs: int = 1
    requested: int = 0
    deduplicated: int = 0
    simulated: int = 0
    disk_hits: int = 0
    memory_hits: int = 0
    wall_seconds: float = 0.0
    records: List[JobRecord] = field(default_factory=list)

    @property
    def sequential_estimate_seconds(self) -> float:
        """Sum of per-job CPU time: what a one-process cold run of the
        same work would cost (cache lookups excluded).  CPU time, not
        worker wall clock, so oversubscribing a small machine does not
        inflate the estimate."""
        return sum(
            r.cpu_seconds for r in self.records if r.source == "simulated"
        )

    @property
    def speedup_vs_sequential(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.sequential_estimate_seconds / self.wall_seconds


class ExperimentRunner:
    """Run a batch of simulation jobs, in parallel, through the caches."""

    def __init__(self, jobs: int = 1, use_disk_cache: bool = True):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.use_disk_cache = use_disk_cache

    def run(self, specs: Sequence[JobSpec]) -> RunnerStats:
        """Execute ``specs`` (deduplicated), warming both cache levels.

        Returns the pass's :class:`RunnerStats`; the results themselves
        are read back through :mod:`repro.eval.models` accessors.
        """
        stats = RunnerStats(jobs=self.jobs, requested=len(specs))
        t0 = time.perf_counter()

        unique: Dict[JobKey, JobSpec] = {}
        for spec in specs:
            unique.setdefault(spec.key, spec)
        stats.deduplicated = len(unique)

        disk = models.disk_cache() if self.use_disk_cache else None
        cold: List[JobSpec] = []
        for key, spec in unique.items():
            if key in models._CACHE:
                stats.memory_hits += 1
                stats.records.append(JobRecord(key, "memory", 0.0))
                continue
            if disk is not None:
                hit = disk.load(key)
                if hit is not MISS:
                    models._CACHE[key] = hit
                    stats.disk_hits += 1
                    stats.records.append(JobRecord(key, "disk", 0.0))
                    continue
            cold.append(spec)

        if cold:
            cold.sort(
                key=lambda s: _MODEL_WEIGHT.get(s.key.model, 1), reverse=True
            )
            if self.jobs == 1:
                for spec in cold:
                    result, seconds, cpu = timed_simulate(spec)
                    self._absorb(spec.key, result, seconds, cpu, disk, stats)
            else:
                self._run_pool(cold, disk, stats)

        stats.wall_seconds = time.perf_counter() - t0
        return stats

    def _run_pool(self, cold: List[JobSpec], disk, stats: RunnerStats) -> None:
        workers = min(self.jobs, len(cold))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(timed_simulate, spec): spec for spec in cold
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    spec = pending.pop(future)
                    result, seconds, cpu = future.result()
                    self._absorb(spec.key, result, seconds, cpu, disk, stats)

    @staticmethod
    def _absorb(key: JobKey, result, seconds: float, cpu_seconds: float,
                disk, stats: RunnerStats) -> None:
        models._CACHE[key] = result
        if disk is not None:
            disk.store(key, result)
        stats.simulated += 1
        stats.records.append(JobRecord(key, "simulated", seconds, cpu_seconds))


def run_artifact_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    use_disk_cache: bool = True,
) -> RunnerStats:
    """Convenience wrapper: one runner pass over ``specs``."""
    return ExperimentRunner(jobs=jobs, use_disk_cache=use_disk_cache).run(specs)


__all__ = [
    "ExperimentRunner",
    "JobRecord",
    "RunnerStats",
    "run_artifact_jobs",
]
