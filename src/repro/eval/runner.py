"""Parallel experiment runner: fan simulation jobs out over processes.

The artifact suite's jobs (:func:`repro.eval.jobs.enumerate_artifact_jobs`)
are embarrassingly parallel, so the runner:

1. deduplicates the requested specs by :class:`~repro.eval.jobs.JobKey`;
2. satisfies what it can from the in-process and persistent caches;
3. fans the remaining cold jobs out over a
   ``concurrent.futures.ProcessPoolExecutor`` (``--jobs N``), largest
   expected jobs first so the pool drains evenly;
4. stores every fresh result in both caches, making the subsequent
   report rendering (and the next cold start) pure cache hits.

``jobs=1`` runs inline — no pool, no pickling — and is the reference
the parallel path is tested against: results must be bit-identical.

Per-job wall-clock and cache provenance are recorded in a
:class:`RunnerStats`, which :mod:`repro.eval.profiling` turns into
``BENCH_runner.json``.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval import models
from repro.eval.jobs import MISS, JobKey, JobSpec, job_label, timed_simulate
from repro.obs import RunReport

#: Rough relative cost of each job kind, used only to order submissions
#: (longest first) so a nearly-drained pool is not left waiting on one
#: big straggler.
_MODEL_WEIGHT = {"cmp": 4, "fault": 3, "ss128": 2, "ss64": 2, "count": 1}


@dataclass
class JobRecord:
    """Provenance and timing of one job within a runner pass.

    ``seconds`` is the wall clock inside the worker (inflated when
    workers outnumber cores); ``cpu_seconds`` is the job's process CPU
    time, the contention-independent cost.  ``error`` is set (and the
    source is ``"failed"``) when the job raised instead of returning.
    ``report`` is the job's observability aggregation
    (:class:`repro.obs.RunReport`), present only for fresh simulations
    run with observability enabled.
    """

    key: JobKey
    source: str  # "simulated" | "disk" | "memory" | "failed"
    seconds: float
    cpu_seconds: float = 0.0
    error: Optional[str] = None
    report: Optional[RunReport] = None


class RunnerError(RuntimeError):
    """One or more jobs of a runner pass failed.

    Raised *after* the pass completes, so the surviving results are
    already absorbed into the caches and :attr:`stats` is fully
    populated (``wall_seconds`` included) with a ``"failed"``
    :class:`JobRecord` per casualty.  ``failures`` pairs each failed
    job's key with the exception the worker raised.
    """

    def __init__(self, failures: List[Tuple[JobKey, BaseException]],
                 stats: "RunnerStats"):
        self.failures = failures
        self.stats = stats
        shown = "; ".join(
            f"{job_label(key)}: {type(exc).__name__}: {exc}"
            for key, exc in failures[:3]
        )
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(
            f"{len(failures)} of {stats.deduplicated} jobs failed: "
            f"{shown}{more}"
        )


@dataclass
class RunnerStats:
    """What one :meth:`ExperimentRunner.run` pass did."""

    jobs: int = 1
    requested: int = 0
    deduplicated: int = 0
    simulated: int = 0
    disk_hits: int = 0
    memory_hits: int = 0
    failed: int = 0
    wall_seconds: float = 0.0
    records: List[JobRecord] = field(default_factory=list)

    @property
    def reports(self) -> List[RunReport]:
        """Every job's :class:`~repro.obs.RunReport`, when observability
        was enabled for the pass (fresh simulations only)."""
        return [r.report for r in self.records if r.report is not None]

    @property
    def sequential_estimate_seconds(self) -> float:
        """Sum of per-job CPU time: what a one-process cold run of the
        same work would cost (cache lookups excluded).  CPU time, not
        worker wall clock, so oversubscribing a small machine does not
        inflate the estimate."""
        return sum(
            r.cpu_seconds for r in self.records if r.source == "simulated"
        )

    @property
    def speedup_vs_sequential(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.sequential_estimate_seconds / self.wall_seconds


class ExperimentRunner:
    """Run a batch of simulation jobs, in parallel, through the caches."""

    def __init__(self, jobs: int = 1, use_disk_cache: bool = True):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.use_disk_cache = use_disk_cache

    def run(self, specs: Sequence[JobSpec]) -> RunnerStats:
        """Execute ``specs`` (deduplicated), warming both cache levels.

        Returns the pass's :class:`RunnerStats`; the results themselves
        are read back through :mod:`repro.eval.models` accessors.

        A job that raises does not abort the pass: every other job still
        runs and is absorbed, the casualty is recorded as a ``"failed"``
        :class:`JobRecord`, and one aggregated :class:`RunnerError`
        (carrying the fully-populated stats) is raised once the pass
        completes.  The ``jobs=1`` inline path behaves identically.
        """
        stats = RunnerStats(jobs=self.jobs, requested=len(specs))
        failures: List[Tuple[JobKey, BaseException]] = []
        t0 = time.perf_counter()

        unique: Dict[JobKey, JobSpec] = {}
        for spec in specs:
            unique.setdefault(spec.key, spec)
        stats.deduplicated = len(unique)

        disk = models.disk_cache() if self.use_disk_cache else None
        cold: List[JobSpec] = []
        for key, spec in unique.items():
            if key in models._CACHE:
                stats.memory_hits += 1
                stats.records.append(JobRecord(key, "memory", 0.0))
                continue
            if disk is not None:
                hit = disk.load(key)
                if hit is not MISS:
                    models._CACHE[key] = hit
                    stats.disk_hits += 1
                    stats.records.append(JobRecord(key, "disk", 0.0))
                    continue
            cold.append(spec)

        if cold:
            cold.sort(
                key=lambda s: _MODEL_WEIGHT.get(s.key.model, 1), reverse=True
            )
            if self.jobs == 1:
                for spec in cold:
                    try:
                        result, seconds, cpu, report = timed_simulate(spec)
                    except Exception as exc:
                        self._record_failure(spec.key, exc, failures, stats)
                        continue
                    self._absorb(spec.key, result, seconds, cpu, report,
                                 disk, stats)
            else:
                self._run_pool(cold, disk, stats, failures)

        stats.wall_seconds = time.perf_counter() - t0
        if failures:
            raise RunnerError(failures, stats)
        return stats

    def _run_pool(self, cold: List[JobSpec], disk, stats: RunnerStats,
                  failures: List[Tuple[JobKey, BaseException]]) -> None:
        workers = min(self.jobs, len(cold))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(timed_simulate, spec): spec for spec in cold
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    spec = pending.pop(future)
                    try:
                        result, seconds, cpu, report = future.result()
                    except Exception as exc:
                        # One bad job must not lose the whole pass (or
                        # the provenance of already-absorbed jobs): note
                        # it and keep draining the pool.
                        self._record_failure(spec.key, exc, failures, stats)
                        continue
                    self._absorb(spec.key, result, seconds, cpu, report,
                                 disk, stats)

    @staticmethod
    def _record_failure(key: JobKey, exc: BaseException,
                        failures: List[Tuple[JobKey, BaseException]],
                        stats: RunnerStats) -> None:
        failures.append((key, exc))
        stats.failed += 1
        stats.records.append(
            JobRecord(key, "failed", 0.0,
                      error=f"{type(exc).__name__}: {exc}")
        )

    @staticmethod
    def _absorb(key: JobKey, result, seconds: float, cpu_seconds: float,
                report: Optional[RunReport], disk,
                stats: RunnerStats) -> None:
        models._CACHE[key] = result
        if disk is not None:
            disk.store(key, result)
        stats.simulated += 1
        stats.records.append(
            JobRecord(key, "simulated", seconds, cpu_seconds, report=report)
        )


def run_artifact_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    use_disk_cache: bool = True,
) -> RunnerStats:
    """Convenience wrapper: one runner pass over ``specs``."""
    return ExperimentRunner(jobs=jobs, use_disk_cache=use_disk_cache).run(specs)


__all__ = [
    "ExperimentRunner",
    "JobRecord",
    "RunnerError",
    "RunnerStats",
    "run_artifact_jobs",
]
