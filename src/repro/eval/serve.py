"""Eval-as-a-service: a local HTTP/JSON daemon over the job machinery.

``python -m repro.eval serve`` starts an asyncio daemon (stdlib only)
that accepts batched job submissions, runs them through the same
cache/retry machinery as the inline runner, and streams per-job results
back as JSONL while they land.  The point is *multi-tenancy*: many
clients — sweep scripts, fault campaigns, a notebook — share one
daemon, one worker pool, and one sharded disk-cache root, instead of
each paying cold simulations for overlapping grids.

Three properties carry the design:

* **In-flight dedup.**  Every submitted job is keyed by its
  :class:`~repro.eval.jobs.JobKey`; a key already being computed for
  one tenant is *joined*, not recomputed, by every other tenant that
  asks for it before it lands (``source: "inflight"`` in their result
  line).  Combined with the memory/disk caches this makes N clients
  sweeping the same grid cost one client's simulations.
* **Byte-identical results.**  A result line carries the job's result
  as :func:`repro.fingerprint.canonical` JSON plus a sha256 digest of
  that JSON, so clients can assert — and the tests/benchmarks do —
  that daemon results are identical to inline execution.  Simulations
  are deterministic; where they ran must not matter.
* **Graceful degradation.**  The worker pool is a pluggable
  :class:`~repro.eval.backends.WorkerBackend`.  On a 1-CPU box the
  daemon still wins through dedup and cache hits (run ``--jobs 1
  --backend thread``); on multi-core the spawned pool gives real
  parallelism.  All service state (in-flight table, stats) lives on
  the single event loop thread, so no locks are needed around it.

Wire protocol (HTTP/1.1, persistent ``keep-alive`` connections; the
daemon answers every well-formed request with ``Connection:
keep-alive`` and serves the next request on the same socket, closing
only on client request, protocol errors, or the idle timeout):

* ``POST /v1/submit`` with ``{"jobs": [{...}, ...]}`` — responds
  ``200`` with chunked ``application/x-ndjson``: one JSON line per job
  *in completion order*, each carrying the submission ``index``, the
  result digest, and the measured ``cpu_seconds``/``wall_seconds``.
  With ``{"jobs": [...], "pickle": true}`` each line also carries the
  base64-pickled result object, which is how a
  :class:`~repro.eval.remote.RemoteBackend` reconstructs real result
  objects on the far side (the digest over the canonical JSON is
  recomputed from the unpickled object — the cross-machine
  correctness gate).  Malformed requests get a ``400`` with
  ``{"ok": false, "error": ...}``.
* ``GET /v1/health`` — backend, worker count, in-flight size, counters,
  the code fingerprint (version gate for federation), and per-worker
  federation state when the daemon fronts a fleet.
* ``GET /v1/metrics`` — the obs :class:`~repro.obs.registry.MetricsRegistry`
  snapshot (``serve.*`` service counters plus ``federation.*`` fleet
  counters) as canonical JSON.
* ``POST /v1/shutdown`` — acknowledge, then stop the daemon.

**Federation**: started with ``--worker URL`` (repeatable), the daemon
becomes a *front*: submitted jobs are sharded across the worker
daemons by the same key digest that shards the disk cache, results
stream back merged in completion order, and worker failures migrate
un-acked jobs to the survivors (see :mod:`repro.eval.remote`).

:class:`ServeClient` is the stdlib (``http.client``) client used by the
tests, the stress benchmark, CI's serve-smoke job, and the remote
backend.  It holds one persistent keep-alive connection and reconnects
transparently when the daemon (or the idle timeout) dropped it —
every API request is idempotent, so a replay after a stale socket is
safe.
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import contextlib
import http.client
import json
import os
import pickle
import signal
import sys
import threading
from dataclasses import asdict, dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import (
    Any, AsyncIterator, Dict, Iterator, List, Optional, Sequence, Tuple,
    Union,
)

from repro.core.modes import CAMPAIGN_MODES
from repro.core.slipstream import SlipstreamConfig
from repro.eval import models
from repro.eval.backends import BACKENDS, WorkerBackend, resolve_backend
from repro.eval.jobs import (
    MISS,
    JobKey,
    JobSpec,
    baseline_spec,
    big_core_spec,
    ceiling_spec,
    code_fingerprint,
    count_spec,
    crosscheck_spec,
    fault_spec,
    injection_spec,
    job_label,
    mode_reference_spec,
    slipstream_spec,
)
from repro.eval.oracle import DurationOracle
from repro.eval.resilience import RetryPolicy
from repro.fault.injector import FaultSite
from repro.fingerprint import canonical
from repro.obs.registry import MetricsRegistry
from repro.workloads.suite import benchmark_suite

#: Upper bound on a submit body; a full artifact grid is ~kilobytes.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Upper bound on jobs per batch (matches the runner's practical scale).
MAX_BATCH_JOBS = 4096
#: asyncio stream limit: caps request-line/header length.
_STREAM_LIMIT = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


# ----------------------------------------------------------------------
# JSON job codec.
# ----------------------------------------------------------------------


class SpecError(ValueError):
    """A malformed job object in a submit payload (maps to HTTP 400)."""


#: Scalar SlipstreamConfig fields a "cmp" job may override over the
#: wire.  Whitelisted: nested objects (cores, predictor) stay
#: server-side defaults so a request can never smuggle arbitrary
#: structure into the simulator.
CONFIG_FIELDS: Dict[str, type] = {
    "trace_length": int,
    "ir_scope_traces": int,
    "confidence_threshold": int,
    "delay_buffer_capacity": int,
    "transfer_latency": int,
    "delay_merge_width": int,
    "max_instructions": int,
    "removal_mechanism": str,
    "static_hints": bool,
    "decorrelated": bool,
}

_REMOVAL_TRIGGERS = ("BR", "WW", "SV")

_BASE_KEYS = frozenset({"model", "benchmark", "scale"})
_ALLOWED_KEYS = {
    "count": _BASE_KEYS,
    "ss64": _BASE_KEYS,
    "ss128": _BASE_KEYS,
    "xcheck": _BASE_KEYS,
    "ceiling": _BASE_KEYS,
    "cmp": _BASE_KEYS | {"removal_triggers", "config"},
    "fault": _BASE_KEYS | {"points", "sites"},
    "finj": _BASE_KEYS | {"site", "target_seq", "bit", "ecc", "mode"},
    "nref": _BASE_KEYS | {"mode"},
}

#: N-stream fault-free references the daemon will simulate on request;
#: the pairwise modes reuse the existing "cmp" model instead.
_NREF_MODES = ("tmr", "replay")

_BENCHMARK_NAMES: Optional[Tuple[str, ...]] = None


def _benchmark_names() -> Tuple[str, ...]:
    global _BENCHMARK_NAMES
    if _BENCHMARK_NAMES is None:
        _BENCHMARK_NAMES = tuple(b.name for b in benchmark_suite())
    return _BENCHMARK_NAMES


def _require_int(payload: Dict[str, Any], key: str, default: int,
                 minimum: int, maximum: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{key!r} must be an integer, got {value!r}")
    if not minimum <= value <= maximum:
        raise SpecError(f"{key!r} must be in [{minimum}, {maximum}], "
                        f"got {value}")
    return value


def _parse_triggers(raw: Any) -> Tuple[str, ...]:
    if raw is None:
        return _REMOVAL_TRIGGERS
    if (not isinstance(raw, list)
            or not all(isinstance(t, str) for t in raw)):
        raise SpecError("'removal_triggers' must be a list of strings")
    bad = [t for t in raw if t not in _REMOVAL_TRIGGERS]
    if bad:
        raise SpecError(f"unknown removal triggers {bad}; "
                        f"expected a subset of {list(_REMOVAL_TRIGGERS)}")
    return tuple(raw)


def _parse_config(raw: Any, triggers: Tuple[str, ...]) -> SlipstreamConfig:
    if not isinstance(raw, dict):
        raise SpecError("'config' must be an object")
    fields: Dict[str, Any] = {}
    for name in sorted(raw):
        expected = CONFIG_FIELDS.get(name)
        if expected is None:
            raise SpecError(
                f"unknown config field {name!r}; "
                f"expected a subset of {sorted(CONFIG_FIELDS)}"
            )
        value = raw[name]
        if expected is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(f"config field {name!r} must be an integer")
            if value < 1:
                raise SpecError(f"config field {name!r} must be >= 1")
        elif not isinstance(value, expected):
            raise SpecError(
                f"config field {name!r} must be {expected.__name__}"
            )
        fields[name] = value
    if fields.get("removal_mechanism", "trace") not in ("trace", "pc"):
        raise SpecError("config field 'removal_mechanism' must be "
                        "'trace' or 'pc'")
    return SlipstreamConfig(removal_triggers=triggers, **fields)


def _parse_sites(raw: Any) -> Tuple[FaultSite, ...]:
    if raw is None:
        return (FaultSite.A_RESULT, FaultSite.R_TRANSIENT)
    if (not isinstance(raw, list) or not raw
            or not all(isinstance(s, str) for s in raw)):
        raise SpecError("'sites' must be a non-empty list of strings")
    sites = []
    for name in raw:
        try:
            sites.append(FaultSite[name])
        except KeyError:
            raise SpecError(
                f"unknown fault site {name!r}; expected a subset of "
                f"{sorted(FaultSite.__members__)}"
            ) from None
    return tuple(sites)


def _parse_site(raw: Any) -> FaultSite:
    if not isinstance(raw, str):
        raise SpecError(f"'site' must be a string, got {raw!r}")
    try:
        return FaultSite[raw]
    except KeyError:
        raise SpecError(
            f"unknown fault site {raw!r}; expected one of "
            f"{sorted(FaultSite.__members__)}"
        ) from None


def _parse_mode(raw: Any, allowed: Tuple[str, ...],
                default: Optional[str] = None) -> str:
    if raw is None:
        if default is None:
            raise SpecError(f"'mode' is required; "
                            f"expected one of {list(allowed)}")
        return default
    if not isinstance(raw, str) or raw not in allowed:
        raise SpecError(f"unknown mode {raw!r}; "
                        f"expected one of {list(allowed)}")
    return raw


def _require_bool(payload: Dict[str, Any], key: str) -> bool:
    value = payload.get(key, False)
    if not isinstance(value, bool):
        raise SpecError(f"{key!r} must be a boolean, got {value!r}")
    return value


def spec_from_json(payload: Any) -> JobSpec:
    """Decode one job object from a submit payload into a
    :class:`~repro.eval.jobs.JobSpec`; :class:`SpecError` on anything
    malformed (unknown model/benchmark/field, wrong types, bad ranges).
    """
    if not isinstance(payload, dict):
        raise SpecError(f"job must be an object, got {type(payload).__name__}")
    model = payload.get("model")
    allowed = _ALLOWED_KEYS.get(model) if isinstance(model, str) else None
    if allowed is None:
        raise SpecError(f"unknown model {model!r}; "
                        f"expected one of {sorted(_ALLOWED_KEYS)}")
    unexpected = sorted(set(payload) - allowed)
    if unexpected:
        raise SpecError(f"unexpected fields {unexpected} for model "
                        f"{model!r}; allowed: {sorted(allowed)}")
    benchmark = payload.get("benchmark")
    if benchmark not in _benchmark_names():
        raise SpecError(f"unknown benchmark {benchmark!r}; "
                        f"expected one of {list(_benchmark_names())}")
    scale = _require_int(payload, "scale", default=1, minimum=1, maximum=4096)
    if model == "count":
        return count_spec(benchmark, scale)
    if model == "ss64":
        return baseline_spec(benchmark, scale)
    if model == "ss128":
        return big_core_spec(benchmark, scale)
    if model == "xcheck":
        return crosscheck_spec(benchmark, scale)
    if model == "ceiling":
        return ceiling_spec(benchmark, scale)
    if model == "cmp":
        triggers = _parse_triggers(payload.get("removal_triggers"))
        if "config" in payload:
            config = _parse_config(payload["config"], triggers)
            return slipstream_spec(benchmark, scale, config=config)
        return slipstream_spec(benchmark, scale, triggers)
    if model == "finj":
        site = _parse_site(payload.get("site"))
        if "target_seq" not in payload:
            raise SpecError("'target_seq' is required for model 'finj'")
        target_seq = _require_int(payload, "target_seq", default=0,
                                  minimum=0, maximum=2 ** 31)
        bit = _require_int(payload, "bit", default=7, minimum=0, maximum=31)
        ecc = _require_bool(payload, "ecc")
        mode = _parse_mode(payload.get("mode"), CAMPAIGN_MODES,
                           default="slipstream")
        return injection_spec(benchmark, site, target_seq, bit, scale,
                              ecc, mode)
    if model == "nref":
        mode = _parse_mode(payload.get("mode"), _NREF_MODES)
        return mode_reference_spec(benchmark, mode, scale)
    # model == "fault"
    points = _require_int(payload, "points", default=6, minimum=1,
                          maximum=1024)
    return fault_spec(benchmark, scale, points,
                      _parse_sites(payload.get("sites")))


def spec_to_json(spec: JobSpec) -> Dict[str, Any]:
    """Encode a :class:`~repro.eval.jobs.JobSpec` as a submit-payload
    job object — the inverse of :func:`spec_from_json`, used by the
    remote backend to forward specs over the wire.

    Every encoding is *verified* by decoding it back and comparing job
    keys, so a spec the codec cannot faithfully express — a chaos job,
    or a cmp config with non-whitelisted structure (core overrides, a
    custom predictor) — raises :class:`SpecError` instead of silently
    computing the wrong job on the far side.  Federation routes such
    jobs to the local backend.
    """
    key = spec.key
    model = key.model
    if model not in _ALLOWED_KEYS:
        raise SpecError(f"model {model!r} is not remotable")
    payload: Dict[str, Any] = {"model": model, "benchmark": key.benchmark}
    if key.scale != 1:
        payload["scale"] = key.scale
    if model == "cmp":
        config = spec.config if spec.config is not None else SlipstreamConfig(
            removal_triggers=key.removal_triggers
        )
        payload["removal_triggers"] = list(config.removal_triggers)
        defaults = SlipstreamConfig()
        overrides = {
            name: getattr(config, name)
            for name in sorted(CONFIG_FIELDS)
            if getattr(config, name) != getattr(defaults, name)
        }
        if overrides:
            payload["config"] = overrides
    elif model == "fault":
        payload["points"] = spec.points
        payload["sites"] = [site.name for site in spec.sites]
    elif model == "finj":
        if spec.fault is None:
            raise SpecError("finj spec carries no fault")
        payload["site"] = spec.fault.site.name
        payload["target_seq"] = spec.fault.target_seq
        payload["bit"] = spec.fault.bit
        payload["ecc"] = spec.ecc
        payload["mode"] = spec.mode
    elif model == "nref":
        payload["mode"] = spec.mode
    try:
        decoded = spec_from_json(payload)
    except SpecError as exc:
        raise SpecError(
            f"job {job_label(key)} is not remotable: {exc}"
        ) from exc
    if decoded.key != key:
        raise SpecError(
            f"job {job_label(key)} does not survive the wire codec "
            f"(decoded as {job_label(decoded.key)}); not remotable"
        )
    return payload


def canonical_result_blob(result: object) -> Tuple[Any, str]:
    """(canonical JSON body, sha256 hex digest) of one job result — the
    byte identity every transport (daemon, federation, remote backend)
    must preserve bit-for-bit."""
    try:
        body: Any = canonical(result)
    except TypeError:
        body = {"repr": repr(result)}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return body, sha256(blob.encode("utf-8")).hexdigest()


def result_payload(index: int, key: JobKey, source: str,
                   result: object, cpu_seconds: float = 0.0,
                   wall_seconds: float = 0.0,
                   include_pickle: bool = False) -> Dict[str, Any]:
    """One JSONL result line: the canonical result body plus a sha256
    digest of its sorted-key JSON, the identity clients compare against
    inline runs.  ``include_pickle`` adds the base64-pickled result
    object for remote backends that need to reconstruct it; the digest
    stays over the canonical JSON either way."""
    body, digest = canonical_result_blob(result)
    line = {
        "index": index,
        "job": job_label(key),
        "ok": True,
        "source": source,
        "digest": digest,
        "result": body,
        "cpu_seconds": cpu_seconds,
        "wall_seconds": wall_seconds,
    }
    if include_pickle:
        line["pickle"] = base64.b64encode(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
    return line


def error_payload(index: int, key: JobKey, exc: BaseException) -> Dict[str, Any]:
    return {
        "index": index,
        "job": job_label(key),
        "ok": False,
        "error": f"{type(exc).__name__}: {exc}",
    }


# ----------------------------------------------------------------------
# The service: dedup + caches + backend, all on one event loop.
# ----------------------------------------------------------------------


@dataclass
class ServiceStats:
    """Lifetime counters, reported by ``/v1/health``."""

    batches: int = 0
    submitted: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    deduped: int = 0
    simulated: int = 0
    retries: int = 0
    failures: int = 0


class EvalService:
    """Job execution shared by every connection of one daemon.

    All mutable state (the in-flight table, the stats counters, the
    memory cache adoption) is touched only from the event loop thread;
    worker attempts run on the backend and blocking disk I/O on
    ``asyncio.to_thread``, both rejoined via await.
    """

    def __init__(
        self,
        jobs: int = 1,
        backend: Union[str, WorkerBackend, None] = None,
        policy: Optional[RetryPolicy] = None,
        use_disk_cache: bool = True,
        workers: Optional[Sequence[str]] = None,
    ):
        self.jobs = max(1, jobs)
        self.policy = policy if policy is not None else RetryPolicy()
        self.disk = models.disk_cache() if use_disk_cache else None
        self.oracle = DurationOracle.for_cache_root(
            self.disk.root if self.disk is not None else None
        )
        self.stats = ServiceStats()
        self.metrics = MetricsRegistry()
        for name in ("serve.connections", "serve.requests", "serve.batches",
                     "serve.jobs_submitted", "serve.jobs_served",
                     "serve.dedup_joins", "serve.memory_hits",
                     "serve.disk_hits", "serve.simulated", "serve.retries",
                     "serve.failures"):
            self.metrics.counter(name)
        self.metrics.gauge("serve.inflight")
        if workers:
            # Federation front: shard jobs across worker daemons; the
            # requested backend becomes the local fallback pool for
            # non-remotable jobs and dead-fleet degradation.
            from repro.eval.remote import FederationBackend

            self.backend: WorkerBackend = FederationBackend(
                workers,
                local=resolve_backend(backend, default="thread"),
                policy=self.policy,
                oracle=self.oracle,
                metrics=self.metrics,
            )
        else:
            self.backend = resolve_backend(backend, default="thread")
        self._inflight: Dict[
            JobKey, "asyncio.Task[Tuple[str, object, float, float]]"
        ] = {}

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if not self.backend.running:
            self.backend.start(self.jobs)

    def close(self) -> None:
        if self.backend.running:
            self.backend.shutdown(wait=False)
        self.oracle.save()

    # -- execution ------------------------------------------------------

    def submit(self, spec: JobSpec) -> Tuple[
        "asyncio.Task[Tuple[str, object, float, float]]", bool
    ]:
        """The in-flight task computing ``spec`` and whether this caller
        *joined* an existing one (the dedup path) instead of starting it."""
        key = spec.key
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats.deduped += 1
            self.metrics.counter("serve.dedup_joins").inc()
            return existing, True
        task = asyncio.ensure_future(self._compute(spec))
        self._inflight[key] = task
        task.add_done_callback(
            lambda _t, key=key: self._job_done(key)
        )
        self.metrics.gauge("serve.inflight").set(len(self._inflight))
        return task, False

    def _job_done(self, key: JobKey) -> None:
        self._inflight.pop(key, None)
        self.metrics.gauge("serve.inflight").set(len(self._inflight))

    async def _compute(
        self, spec: JobSpec
    ) -> Tuple[str, object, float, float]:
        """memory cache -> disk cache -> backend attempt(s) with the
        policy's retries; stores fresh results at both cache levels.
        Returns (source, result, cpu seconds, wall seconds); cache hits
        report zero cost."""
        key = spec.key
        cached = models._CACHE.get(key)
        if cached is not None:
            self.stats.memory_hits += 1
            self.metrics.counter("serve.memory_hits").inc()
            return "memory", cached, 0.0, 0.0
        if self.disk is not None:
            hit = await asyncio.to_thread(self.disk.load, key)
            if hit is not MISS:
                models._CACHE[key] = hit
                self.stats.disk_hits += 1
                self.metrics.counter("serve.disk_hits").inc()
                return "disk", hit, 0.0, 0.0
        attempt = 0
        while True:
            self.start()
            try:
                future = self.backend.submit(spec, self.policy.timeout_seconds)
                (result, wall, cpu, _started,
                 _report) = await asyncio.wrap_future(future)
            except Exception:
                # JobTimeout, BrokenExecutor, or whatever the attempt
                # raised: all retryable up to the policy's budget.
                if self.backend.can_crash and self.backend.broken():
                    self.backend.shutdown(wait=False)
                if attempt >= self.policy.max_retries:
                    self.stats.failures += 1
                    self.metrics.counter("serve.failures").inc()
                    raise
                attempt += 1
                self.stats.retries += 1
                self.metrics.counter("serve.retries").inc()
                await asyncio.sleep(self.policy.backoff_seconds(attempt))
                continue
            models._CACHE[key] = result
            if self.disk is not None:
                await asyncio.to_thread(self.disk.store, key, result)
            self.oracle.observe(key, cpu)
            self.stats.simulated += 1
            self.metrics.counter("serve.simulated").inc()
            return "fresh", result, cpu, wall

    async def stream_batch(
        self, specs: Sequence[JobSpec], include_pickle: bool = False
    ) -> AsyncIterator[Dict[str, Any]]:
        """Result lines for one batch, yielded in completion order.

        Shared in-flight tasks are shielded: a tenant disconnecting
        mid-batch never cancels a computation other tenants may be
        waiting on (or would benefit from via the cache).
        """
        self.stats.batches += 1
        self.stats.submitted += len(specs)
        self.metrics.counter("serve.batches").inc()
        self.metrics.counter("serve.jobs_submitted").inc(len(specs))

        async def finish(
            index: int, spec: JobSpec,
            task: "asyncio.Task[Tuple[str, object, float, float]]",
            joined: bool,
        ) -> Dict[str, Any]:
            try:
                source, result, cpu, wall = await asyncio.shield(task)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - reported per-job
                return error_payload(index, spec.key, exc)
            return result_payload(
                index, spec.key, "inflight" if joined else source, result,
                cpu_seconds=cpu, wall_seconds=wall,
                include_pickle=include_pickle,
            )

        waiters = []
        for index, spec in enumerate(specs):
            task, joined = self.submit(spec)
            waiters.append(finish(index, spec, task, joined))
        try:
            for done in asyncio.as_completed(waiters):
                line = await done
                self.metrics.counter("serve.jobs_served").inc()
                yield line
        finally:
            await asyncio.to_thread(self.oracle.save)

    # -- introspection --------------------------------------------------

    def health_payload(self) -> Dict[str, Any]:
        payload = {
            "ok": True,
            "backend": self.backend.name,
            "workers": self.backend.workers,
            "jobs": self.jobs,
            "inflight": len(self._inflight),
            "cache_root": str(self.disk.root) if self.disk is not None
            else None,
            "code_fingerprint": code_fingerprint(),
            "stats": asdict(self.stats),
        }
        # Federation fronts report per-worker fleet state.
        worker_states = getattr(self.backend, "worker_states", None)
        if worker_states is not None:
            payload["federation"] = worker_states()
        return payload


# ----------------------------------------------------------------------
# The HTTP layer.
# ----------------------------------------------------------------------


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


#: Default seconds an idle keep-alive connection is held open before
#: the daemon reclaims it; clients reconnect transparently.
KEEPALIVE_IDLE_SECONDS = 120.0


class EvalServer:
    """One listening daemon bound to an :class:`EvalService`.

    Connections are persistent: each handler loops over requests on
    its socket (``Connection: keep-alive``) until the client closes,
    asks to close, errors, or sits idle past
    ``keepalive_idle_seconds``.  Open connections are tracked so
    shutdown can reclaim idle keep-alive sockets instead of waiting
    on them.
    """

    def __init__(self, service: EvalService, host: str = "127.0.0.1",
                 port: int = 0,
                 keepalive_idle_seconds: float = KEEPALIVE_IDLE_SECONDS):
        self.service = service
        self.host = host
        self.requested_port = port
        self.keepalive_idle_seconds = keepalive_idle_seconds
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        self._writers: set = set()

    async def start(self) -> None:
        self._stop = asyncio.Event()
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.requested_port,
            limit=_STREAM_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or ``POST /v1/shutdown``),
        then tear down the listener and the service."""
        assert self._server is not None and self._stop is not None
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            # Reclaim lingering keep-alive connections so shutdown is
            # never held hostage by an idle client socket.
            for writer in list(self._writers):
                with contextlib.suppress(ConnectionError, OSError):
                    writer.close()
            await self._server.wait_closed()
            self.service.close()

    # -- request plumbing ----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """One connection: serve requests until close/idle/error.

        Well-formed requests are answered ``Connection: keep-alive``
        and the loop reads the next request off the same socket; error
        responses close the connection so framing stays unambiguous.
        """
        self.service.metrics.counter("serve.connections").inc()
        self._writers.add(writer)
        headers_sent = False
        try:
            while True:
                headers_sent = False
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.keepalive_idle_seconds,
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection: reclaim it
                if request is None:
                    break
                method, path, headers, body = request
                self.service.metrics.counter("serve.requests").inc()
                keep_alive = headers.get("connection", "").lower() != "close"
                stopping = False
                try:
                    if path == "/v1/health":
                        if method != "GET":
                            raise _HttpError(405, "use GET /v1/health")
                        self._plain(writer, 200,
                                    self.service.health_payload(),
                                    keep_alive=keep_alive)
                    elif path == "/v1/metrics":
                        if method != "GET":
                            raise _HttpError(405, "use GET /v1/metrics")
                        self._plain(writer, 200, {
                            "ok": True,
                            "metrics": self.service.metrics.snapshot(),
                        }, keep_alive=keep_alive)
                    elif path == "/v1/shutdown":
                        if method != "POST":
                            raise _HttpError(405, "use POST /v1/shutdown")
                        self._plain(writer, 200,
                                    {"ok": True, "stopping": True},
                                    keep_alive=False)
                        stopping = True
                    elif path == "/v1/submit":
                        if method != "POST":
                            raise _HttpError(405, "use POST /v1/submit")
                        specs, want_pickle = self._parse_submit(body)
                        headers_sent = True
                        await self._stream_submit(writer, specs, want_pickle,
                                                  keep_alive=keep_alive)
                    else:
                        raise _HttpError(404, f"no such endpoint: {path}")
                    await writer.drain()
                except _HttpError as err:
                    if not headers_sent:
                        self._plain(writer, err.status,
                                    {"ok": False, "error": err.message},
                                    keep_alive=False)
                        await writer.drain()
                    break
                if stopping:
                    self.request_stop()
                    break
                if not keep_alive:
                    break
        except _HttpError as err:
            # Malformed framing from _read_request: answer and close.
            if not headers_sent:
                with contextlib.suppress(ConnectionError, OSError):
                    self._plain(writer, err.status,
                                {"ok": False, "error": err.message},
                                keep_alive=False)
                    await writer.drain()
        except asyncio.CancelledError:
            # Daemon teardown cancelled this handler (keep-alive
            # handlers outlive requests): close the connection quietly
            # instead of surfacing a cancellation traceback.
            pass
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # client went away; in-flight jobs keep running
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            if not headers_sent:
                with contextlib.suppress(ConnectionError, OSError):
                    self._plain(writer, 500, {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }, keep_alive=False)
                    await writer.drain()
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as exc:
            raise _HttpError(400, "request line too long") from exc
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed request line")
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        for _ in range(100):
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError) as exc:
                raise _HttpError(400, "header line too long") from exc
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many headers")
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise _HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _parse_submit(self, body: bytes) -> Tuple[List[JobSpec], bool]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"body is not JSON: {exc}") from exc
        if not isinstance(payload, dict) or "jobs" not in payload:
            raise _HttpError(400, 'body must be {"jobs": [...]}')
        want_pickle = payload.get("pickle", False)
        if not isinstance(want_pickle, bool):
            raise _HttpError(400, "'pickle' must be a boolean")
        jobs = payload["jobs"]
        if not isinstance(jobs, list):
            raise _HttpError(400, "'jobs' must be a list")
        if len(jobs) > MAX_BATCH_JOBS:
            raise _HttpError(413, f"batch exceeds {MAX_BATCH_JOBS} jobs")
        specs = []
        for position, job in enumerate(jobs):
            try:
                specs.append(spec_from_json(job))
            except SpecError as exc:
                raise _HttpError(400, f"jobs[{position}]: {exc}") from exc
        return specs, want_pickle

    async def _stream_submit(self, writer: asyncio.StreamWriter,
                             specs: List[JobSpec], want_pickle: bool,
                             keep_alive: bool = True) -> None:
        connection = "keep-alive" if keep_alive else "close"
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            + f"Connection: {connection}\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        async for line in self.service.stream_batch(
            specs, include_pickle=want_pickle
        ):
            data = (json.dumps(line, sort_keys=True) + "\n").encode("utf-8")
            writer.write(f"{len(data):x}\r\n".encode("latin-1")
                         + data + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    def _plain(writer: asyncio.StreamWriter, status: int,
               payload: Dict[str, Any], keep_alive: bool = False) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)


# ----------------------------------------------------------------------
# Embedded server (tests, benchmarks) and CLI entry point.
# ----------------------------------------------------------------------


@dataclass
class ServerHandle:
    """A daemon running on a background thread of this process."""

    host: str
    port: int
    thread: threading.Thread
    _loop: asyncio.AbstractEventLoop
    _server: EvalServer
    service: EvalService = field(init=False)

    def __post_init__(self) -> None:
        self.service = self._server.service

    def stop(self, timeout: float = 30.0) -> None:
        self._loop.call_soon_threadsafe(self._server.request_stop)
        self.thread.join(timeout=timeout)


def start_server_thread(
    service: Optional[EvalService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    keepalive_idle_seconds: float = KEEPALIVE_IDLE_SECONDS,
    **service_kwargs: Any,
) -> ServerHandle:
    """Run a daemon on a dedicated thread with its own event loop; used
    by the tests and the ``--serve`` stress benchmark to self-host.
    ``service_kwargs`` construct the :class:`EvalService` when none is
    supplied."""
    svc = service if service is not None else EvalService(**service_kwargs)
    ready = threading.Event()
    box: Dict[str, Any] = {}

    async def amain() -> None:
        server = EvalServer(svc, host=host, port=port,
                            keepalive_idle_seconds=keepalive_idle_seconds)
        await server.start()
        box["server"] = server
        box["loop"] = asyncio.get_running_loop()
        ready.set()
        await server.serve_until_stopped()

    def run() -> None:
        try:
            asyncio.run(amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            box["error"] = exc
            ready.set()

    thread = threading.Thread(target=run, name="repro-eval-serve",
                              daemon=True)
    thread.start()
    ready.wait(timeout=30.0)
    if "error" in box:
        raise RuntimeError("eval server failed to start") from box["error"]
    if "server" not in box:
        raise RuntimeError("eval server did not come up within 30s")
    server: EvalServer = box["server"]
    assert server.port is not None
    return ServerHandle(host=host, port=server.port, thread=thread,
                        _loop=box["loop"], _server=server)


class ServeError(RuntimeError):
    """A non-200 daemon response."""

    def __init__(self, status: int, detail: str):
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail


class ServeClient:
    """Minimal stdlib client for the daemon's API.

    One persistent keep-alive connection serves every request —
    pipelined batches over a warm socket instead of a TCP+parse
    handshake per call.  A stale socket (daemon restarted, idle
    timeout fired, connection dropped) is detected on the next request
    and replayed once over a fresh connection; every daemon API
    request is idempotent (submits are deduped/cached server-side), so
    the transparent replay is safe.

    :meth:`submit` is a generator yielding result lines as the daemon
    streams them — iterate promptly.  Draining the stream fully keeps
    the connection reusable; abandoning the generator mid-stream
    closes it (the socket holds unread data).
    """

    #: A request over a previously-good connection that fails with one
    #: of these gets one transparent replay on a fresh connection.
    _STALE_ERRORS = (http.client.HTTPException, ConnectionError,
                     BrokenPipeError, OSError)

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 600.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        """Drop the persistent connection (safe to call any time; the
        next request reconnects)."""
        conn, self._conn = self._conn, None
        if conn is not None:
            with contextlib.suppress(OSError):
                conn.close()

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None):
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        response = None
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                break
            except TimeoutError:
                # A genuine deadline, not a stale socket: don't double
                # the caller's wait with a replay.
                self.close()
                raise
            except self._STALE_ERRORS:
                self.close()
                if attempt:
                    raise
        assert response is not None
        if response.status != 200:
            raw = response.read().decode("utf-8", "replace")
            if response.will_close:
                self.close()
            try:
                detail = json.loads(raw).get("error", raw)
            except ValueError:
                detail = raw
            raise ServeError(response.status, detail)
        return response

    def _json_body(self, response) -> Dict[str, Any]:
        try:
            raw = response.read()
        except self._STALE_ERRORS:
            self.close()
            raise
        if response.will_close:
            self.close()
        return json.loads(raw.decode("utf-8"))

    def health(self) -> Dict[str, Any]:
        return self._json_body(self._request("GET", "/v1/health"))

    def metrics(self) -> Dict[str, Any]:
        return self._json_body(self._request("GET", "/v1/metrics"))

    def shutdown(self) -> Dict[str, Any]:
        try:
            return self._json_body(
                self._request("POST", "/v1/shutdown", payload={})
            )
        finally:
            self.close()  # the daemon is going away; don't reuse

    def submit(self, jobs: Sequence[Dict[str, Any]],
               include_pickle: bool = False) -> Iterator[Dict[str, Any]]:
        """Yield one result line per job, in the daemon's completion
        order (``http.client`` de-chunks the stream transparently).
        ``include_pickle`` asks the daemon for base64-pickled result
        objects on every line (the remote backend's transport)."""
        payload: Dict[str, Any] = {"jobs": list(jobs)}
        if include_pickle:
            payload["pickle"] = True
        response = self._request("POST", "/v1/submit", payload=payload)
        drained = False
        try:
            while True:
                try:
                    line = response.readline()
                except self._STALE_ERRORS:
                    self.close()
                    raise
                if not line:
                    drained = True
                    break
                yield json.loads(line.decode("utf-8"))
        finally:
            if not drained or response.will_close:
                # Abandoned mid-stream (or the daemon is closing): the
                # socket holds unread data and cannot be reused.
                self.close()

    def submit_all(self, jobs: Sequence[Dict[str, Any]],
                   include_pickle: bool = False) -> List[Dict[str, Any]]:
        return list(self.submit(jobs, include_pickle=include_pickle))


def default_backend_name() -> str:
    """"spawn" where parallelism can pay, "thread" on a 1-CPU box (the
    graceful degradation: dedup + cache hits, no process overhead)."""
    return "spawn" if (os.cpu_count() or 1) > 1 else "thread"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval serve",
        description="Serve the evaluation job API over local HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback only)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port; 0 picks a free one (default)")
    parser.add_argument("--port-file", default=None, metavar="PATH",
                        help="write the bound port here once listening")
    parser.add_argument("--jobs", type=int,
                        default=max(1, min(4, os.cpu_count() or 1)),
                        help="worker pool size")
    parser.add_argument("--backend", choices=sorted(BACKENDS), default=None,
                        help="worker backend (default: spawn on multi-core, "
                             "thread on 1 CPU)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-attempt wall-clock budget")
    parser.add_argument("--retries", type=int, default=2,
                        help="re-attempts per failed job")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk-cache root to serve from")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent disk cache")
    parser.add_argument("--worker", action="append", default=None,
                        metavar="URL",
                        help="federate: shard submitted jobs across these "
                             "worker daemons (host:port, repeatable); the "
                             "local backend then only runs non-remotable "
                             "jobs and dead-fleet fallbacks")
    parser.add_argument("--keepalive-idle", type=float,
                        default=KEEPALIVE_IDLE_SECONDS, metavar="SEC",
                        help="seconds an idle keep-alive connection is "
                             "held open")
    return parser


async def _amain(service: EvalService, args: argparse.Namespace) -> int:
    server = EvalServer(service, host=args.host, port=args.port,
                        keepalive_idle_seconds=args.keepalive_idle)
    await server.start()
    loop = asyncio.get_running_loop()
    for signame in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, server.request_stop)
    if args.port_file:
        Path(args.port_file).write_text(f"{server.port}\n", encoding="utf-8")
    print(
        f"repro-eval serve: http://{args.host}:{server.port} "
        f"(backend={service.backend.name}, jobs={service.jobs}, "
        f"cache={'off' if service.disk is None else service.disk.root})",
        file=sys.stderr, flush=True,
    )
    await server.serve_until_stopped()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.no_cache:
        models.configure_disk_cache(enabled=False)
    elif args.cache_dir:
        models.configure_disk_cache(enabled=True, cache_dir=args.cache_dir)
    policy = RetryPolicy(timeout_seconds=args.timeout,
                         max_retries=max(0, args.retries))
    service = EvalService(
        jobs=args.jobs,
        backend=args.backend or default_backend_name(),
        policy=policy,
        use_disk_cache=not args.no_cache,
        workers=args.worker,
    )
    try:
        return asyncio.run(_amain(service, args))
    except KeyboardInterrupt:
        return 130


__all__ = [
    "CONFIG_FIELDS",
    "EvalServer",
    "EvalService",
    "KEEPALIVE_IDLE_SECONDS",
    "MAX_BATCH_JOBS",
    "MAX_BODY_BYTES",
    "ServeClient",
    "ServeError",
    "ServerHandle",
    "ServiceStats",
    "SpecError",
    "canonical_result_blob",
    "default_backend_name",
    "error_payload",
    "main",
    "result_payload",
    "spec_from_json",
    "spec_to_json",
    "start_server_thread",
]
