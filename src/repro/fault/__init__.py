"""Transient-fault injection and coverage analysis (paper, section 3).

The slipstream fault-tolerance story: a transient fault manifesting as
an erroneous value is indistinguishable from an IR-misprediction, so
the existing detection/recovery machinery transparently handles faults
that strike *redundantly executed* instructions.  Coverage is partial:
instructions the A-stream skipped are not compared, and faults that
corrupt the R-stream's architectural state are unrecoverable (the
R-stream is the recovery source).

* :mod:`repro.fault.injector` — deterministic single-fault injection
  at a chosen dynamic instruction, at one of three sites (A-stream
  result, R-stream transient, R-stream architectural).
* :mod:`repro.fault.scenarios` — the paper's three analysis scenarios
  as runnable experiments.
* :mod:`repro.fault.coverage` — fault-injection campaigns classifying
  outcomes (detected+recovered / masked / silent corruption /
  detected-unrecoverable).
"""

from repro.fault.injector import FaultInjector, FaultSite, TransientFault
from repro.fault.coverage import FaultOutcome, run_campaign, classify_run
from repro.fault.scenarios import run_scenario, SCENARIOS

__all__ = [
    "FaultInjector",
    "FaultSite",
    "TransientFault",
    "FaultOutcome",
    "run_campaign",
    "classify_run",
    "run_scenario",
    "SCENARIOS",
]
