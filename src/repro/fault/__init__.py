"""Transient-fault injection and coverage analysis (paper, section 3).

The slipstream fault-tolerance story: a transient fault manifesting as
an erroneous value is indistinguishable from an IR-misprediction, so
the existing detection/recovery machinery transparently handles faults
that strike *redundantly executed* instructions.  Coverage is partial:
instructions the A-stream skipped are not compared, and faults that
corrupt the R-stream's architectural state are unrecoverable (the
R-stream is the recovery source).

* :mod:`repro.fault.injector` — deterministic single-fault injection
  at a chosen dynamic instruction, at one of three sites (A-stream
  result, R-stream transient, R-stream architectural).
* :mod:`repro.fault.scenarios` — the paper's three analysis scenarios
  as runnable experiments.
* :mod:`repro.fault.coverage` — fault-injection campaigns classifying
  outcomes (detected+recovered / ecc-corrected / masked / silent
  corruption / detected-unrecoverable).
* :mod:`repro.fault.ecc` — ECC on the R-stream's architectural state,
  the paper's fix for the unrecoverable hole.
* :mod:`repro.fault.campaign` — seeded campaigns scaled across the
  benchmark suite, fanned through the hardened experiment runner
  (``python -m repro.fault``).
"""

from repro.fault.injector import FaultInjector, FaultSite, TransientFault
from repro.fault.coverage import (
    HANDLED_OUTCOMES,
    HARMFUL_OUTCOMES,
    FaultOutcome,
    classify_run,
    hang_budget,
    inject_one,
    run_campaign,
)
from repro.fault.ecc import ECCModel, PROTECTED_SITES
from repro.fault.campaign import (
    CampaignConfig,
    CampaignPoint,
    ScaledCampaignResult,
    run_scaled_campaign,
    sample_points,
    write_fault_bench,
)
from repro.fault.scenarios import run_scenario, SCENARIOS

__all__ = [
    "FaultInjector",
    "FaultSite",
    "TransientFault",
    "FaultOutcome",
    "HANDLED_OUTCOMES",
    "HARMFUL_OUTCOMES",
    "ECCModel",
    "PROTECTED_SITES",
    "CampaignConfig",
    "CampaignPoint",
    "ScaledCampaignResult",
    "run_scaled_campaign",
    "sample_points",
    "write_fault_bench",
    "hang_budget",
    "inject_one",
    "run_campaign",
    "classify_run",
    "run_scenario",
    "SCENARIOS",
]
