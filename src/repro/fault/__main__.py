"""CLI: scaled fault-injection campaigns — ``python -m repro.fault``.

Runs a seeded campaign (:mod:`repro.fault.campaign`) across the
benchmark suite, prints the outcome × site × workload coverage table
and writes the deterministic ``BENCH_fault.json`` artifact.

Examples::

    # default campaign: 8 workloads x 12 points, no ECC
    python -m repro.fault

    # ECC on the R-stream's architectural state, 4-way parallel
    python -m repro.fault --ecc --jobs 4

    # quick seeded smoke on one cheap workload
    python -m repro.fault --benchmarks jpeg --points 6 --seed 7

    # coverage-vs-throughput frontier over every redundancy mode
    python -m repro.fault --benchmarks jpeg li --modes all --points 6
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.modes import CAMPAIGN_MODES
from repro.eval.resilience import RetryPolicy
from repro.fault.campaign import (
    DEFAULT_BENCH_FAULT_PATH,
    DEFAULT_SITES,
    CampaignConfig,
    format_coverage_table,
    run_scaled_campaign,
    write_fault_bench,
)
from repro.fault.injector import FaultSite
from repro.workloads.suite import benchmark_suite

_SITE_NAMES = {site.value: site for site in FaultSite}


def _parse_sites(names: List[str]) -> tuple:
    sites = []
    for name in names:
        site = _SITE_NAMES.get(name)
        if site is None:
            raise SystemExit(
                f"unknown fault site {name!r} "
                f"(choose from: {', '.join(sorted(_SITE_NAMES))})"
            )
        sites.append(site)
    return tuple(sites)


def _parse_modes(raw: str) -> tuple:
    names = [m.strip() for m in raw.split(",") if m.strip()]
    if names == ["all"]:
        return CAMPAIGN_MODES
    unknown = [m for m in names if m not in CAMPAIGN_MODES]
    if unknown or not names:
        raise SystemExit(
            f"unknown redundancy mode(s) {unknown or [raw]} "
            f"(choose from: {', '.join(CAMPAIGN_MODES)}, or 'all')"
        )
    deduped = tuple(dict.fromkeys(names))
    return deduped


def main(argv: Optional[List[str]] = None) -> int:
    suite_names = [b.name for b in benchmark_suite()]
    parser = argparse.ArgumentParser(
        prog="python -m repro.fault",
        description="Seeded fault-injection campaign across the suite.",
    )
    parser.add_argument("--benchmarks", nargs="+", metavar="NAME",
                        default=None, choices=suite_names,
                        help="workloads to strike (default: all eight)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default: 1)")
    parser.add_argument("--points", type=int, default=12,
                        help="strike points per workload (default: 12)")
    parser.add_argument("--seed", type=int, default=2000,
                        help="campaign RNG seed (default: 2000)")
    parser.add_argument("--sites", nargs="+", metavar="SITE",
                        default=[s.value for s in DEFAULT_SITES],
                        help="fault sites to sample "
                             f"(default: {' '.join(s.value for s in DEFAULT_SITES)})")
    parser.add_argument("--modes", default="slipstream", metavar="M[,M...]",
                        help="redundancy modes to strike, comma-separated "
                             f"({', '.join(CAMPAIGN_MODES)}); 'all' runs "
                             "every mode (default: slipstream)")
    parser.add_argument("--ecc", action="store_true",
                        help="model ECC on the R-stream's architectural "
                             "state (corrects single-bit r_arch strikes)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1, inline)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-job attempt wall-clock timeout")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries per failed job (default: 2)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")
    parser.add_argument("--bench-out", default=DEFAULT_BENCH_FAULT_PATH,
                        metavar="PATH",
                        help=f"artifact path (default: {DEFAULT_BENCH_FAULT_PATH}); "
                             "'-' to skip writing")
    parser.add_argument("--format", choices=("table", "json"),
                        default="table", help="stdout format")
    args = parser.parse_args(argv)

    config = CampaignConfig(
        benchmarks=tuple(args.benchmarks or suite_names),
        scale=args.scale,
        points_per_benchmark=args.points,
        seed=args.seed,
        sites=_parse_sites(args.sites),
        ecc=args.ecc,
        modes=_parse_modes(args.modes),
    )
    policy = RetryPolicy(timeout_seconds=args.timeout,
                         max_retries=args.retries)

    result, stats = run_scaled_campaign(
        config,
        jobs=args.jobs,
        policy=policy,
        use_disk_cache=not args.no_cache,
    )

    if args.format == "json":
        print(json.dumps(result.to_payload(), indent=2, sort_keys=True))
    else:
        print(format_coverage_table(result))
        print()
        print(f"runner: {stats.simulated} simulated, "
              f"{stats.disk_hits + stats.memory_hits} cache hits, "
              f"{stats.failed} failed, {stats.retried} retried, "
              f"{stats.pool_rebuilds} pool rebuilds "
              f"({stats.wall_seconds:.1f}s wall)")

    if args.bench_out != "-":
        path = write_fault_bench(result, args.bench_out)
        print(f"wrote {path}", file=sys.stderr)

    return 1 if result.failed_points else 0


if __name__ == "__main__":
    sys.exit(main())
