"""Scaled fault-injection campaigns across the benchmark suite.

:mod:`repro.fault.coverage` classifies *one* injected fault;
this module scales that to a statistical campaign (paper, section 3):
a seeded RNG samples (site × dynamic-instruction × bit) strike points
across all eight workloads, every point becomes a cached
:class:`~repro.eval.jobs.JobSpec` fanned through the hardened
:class:`~repro.eval.runner.ExperimentRunner`, and the classified
outcomes aggregate into an outcome × site × workload coverage table.

Campaigns can sweep several **redundancy modes**
(:data:`repro.core.modes.CAMPAIGN_MODES`) over the same workloads: the
paper's slipstream A/R pair, Elzar-style TMR voting, RepTFD-style
replay-window detection, and DME-style decorrelated streams.  Each
(mode, benchmark) pair gets its own strike points (sampled against
that mode's own stream lengths and fault-site list) and the aggregate
exposes a **coverage-vs-throughput frontier**: per-mode coverage,
throughput IPC, and mean detection latency.

Determinism is load-bearing: the sampler derives one
``random.Random(f"{seed}:{benchmark}")`` stream per workload for the
slipstream mode (byte-compatible with single-mode campaigns from
before the N-stream framework) and ``f"{seed}:{benchmark}:{mode}"``
for the other modes, sites rotate round-robin so every site is
exercised on every workload, and the emitted ``BENCH_fault.json``
payload contains no wall-clock — the same seed yields a byte-identical
artifact, whether run with ``--jobs 1`` or a full pool, cold or
resumed from the disk cache.

With ``ecc=True`` the campaign models ECC on the R-stream's
architectural state (:mod:`repro.fault.ecc`): ``R_ARCH`` strikes
classify as ``ECC_CORRECTED`` instead of ``DETECTED_UNRECOVERABLE`` /
``SILENT_CORRUPTION``, closing the paper's unrecoverable hole —
coverage of redundantly-executed instructions reaches 100%.  Under TMR
the voter claims strikes before any ECC scrub, so TMR campaigns report
``MASKED_BY_VOTE``, never ``ECC_CORRECTED``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import json
import random

from repro.core.modes import CAMPAIGN_MODES, resolve_mode
from repro.fault.coverage import (
    HANDLED_OUTCOMES,
    HARMFUL_OUTCOMES,
    CampaignResult,
    FaultOutcome,
    InjectionResult,
)
from repro.fault.injector import FaultSite, TransientFault
from repro.obs.registry import MetricsRegistry
from repro.workloads.suite import benchmark_suite

DEFAULT_BENCH_FAULT_PATH = "BENCH_fault.json"

#: Default strike sites: both streams' pipelines plus the R-stream's
#: architectural state (the paper's three section-3 fault classes).
DEFAULT_SITES: Tuple[FaultSite, ...] = (
    FaultSite.A_RESULT,
    FaultSite.R_TRANSIENT,
    FaultSite.R_ARCH,
)

#: Sequence-number stream each site's strikes are sampled against.
#: ``CORRELATED`` strikes target the A-stream's numbering (the A-side
#: hit lands first; its R-stream companion is located by pc + value).
_A_NUMBERED_SITES = (FaultSite.A_RESULT, FaultSite.CORRELATED)


def _default_benchmarks() -> Tuple[str, ...]:
    return tuple(b.name for b in benchmark_suite())


def mode_sites(
    mode: str, configured: Tuple[FaultSite, ...]
) -> Tuple[FaultSite, ...]:
    """The fault sites a mode's campaign points rotate through.

    The slipstream mode keeps the campaign's configured sites verbatim
    (back-compatible).  Other modes intersect the configured list with
    the sites their :class:`~repro.core.modes.RedundancyMode` spec
    declares meaningful, falling back to the spec's full list when the
    intersection is empty (so a default-sites campaign still exercises
    TMR/replay, which have no A-stream).  The decorrelated mode
    additionally appends ``CORRELATED`` — the site it exists to handle.
    """
    if mode == "slipstream":
        return configured
    spec = resolve_mode(mode)
    allowed = tuple(FaultSite(value) for value in spec.campaign_sites)
    sites = tuple(s for s in configured if s in allowed)
    if not sites:
        sites = allowed
    if mode == "decorrelated" and FaultSite.CORRELATED not in sites:
        sites = sites + (FaultSite.CORRELATED,)
    return sites


@dataclass(frozen=True)
class CampaignConfig:
    """One scaled campaign, fully determined by its fields.

    ``warmup_fraction`` skips the first part of each stream's dynamic
    instructions so strikes land in steady state rather than in loop
    preambles whose values are often dead (mostly-``MASKED`` strikes
    carry no information).  ``points_per_benchmark`` counts sampled
    strike points per (mode, workload) pair; sites rotate round-robin
    across them, so with the default three sites each site receives one
    third.  ``modes`` lists the redundancy modes to sweep
    (:data:`repro.core.modes.CAMPAIGN_MODES`).
    """

    benchmarks: Tuple[str, ...] = field(default_factory=_default_benchmarks)
    scale: int = 1
    points_per_benchmark: int = 12
    seed: int = 2000
    sites: Tuple[FaultSite, ...] = DEFAULT_SITES
    ecc: bool = False
    warmup_fraction: float = 0.25
    modes: Tuple[str, ...] = ("slipstream",)

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("campaign needs at least one benchmark")
        if not self.sites:
            raise ValueError("campaign needs at least one fault site")
        if self.points_per_benchmark < 1:
            raise ValueError("points_per_benchmark must be >= 1")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if not self.modes:
            raise ValueError("campaign needs at least one mode")
        for mode in self.modes:
            if mode not in CAMPAIGN_MODES:
                raise ValueError(
                    f"unknown campaign mode {mode!r}; "
                    f"known: {', '.join(CAMPAIGN_MODES)}"
                )


@dataclass(frozen=True)
class CampaignPoint:
    """One sampled strike point of a campaign."""

    benchmark: str
    fault: TransientFault
    mode: str = "slipstream"


def sample_points(
    config: CampaignConfig,
    stream_lengths: Dict[str, Dict[str, object]],
) -> List[CampaignPoint]:
    """Sample the campaign's strike points, deterministically.

    ``stream_lengths`` bounds the sampled sequence numbers, in one of
    two shapes: ``{benchmark: {"A": executed_by_a, "R": retired}}``
    (single-mode campaigns — every configured mode reuses the same
    lengths), or ``{mode: {benchmark: {"A": ..., "R": ...}}}`` with one
    inner table per configured mode (A-stream numbering only covers the
    instructions the A-stream actually executed; TMR/replay use their
    own retirement counts for both keys).

    Each (mode, benchmark) pair gets its own seeded RNG stream —
    ``f"{seed}:{benchmark}"`` for the slipstream mode, byte-compatible
    with pre-framework campaigns, and ``f"{seed}:{benchmark}:{mode}"``
    otherwise — so adding a benchmark or a mode to the campaign does
    not perturb the points sampled for the others.
    """
    by_mode: Dict[str, Dict[str, Dict[str, int]]]
    if stream_lengths and all(key in CAMPAIGN_MODES for key in stream_lengths):
        by_mode = stream_lengths  # type: ignore[assignment]
    else:
        by_mode = {mode: stream_lengths for mode in config.modes}  # type: ignore[dict-item]
    points: List[CampaignPoint] = []
    for mode in config.modes:
        sites = mode_sites(mode, config.sites)
        for benchmark in config.benchmarks:
            lengths = by_mode[mode][benchmark]
            stream = (
                f"{config.seed}:{benchmark}"
                if mode == "slipstream"
                else f"{config.seed}:{benchmark}:{mode}"
            )
            rng = random.Random(stream)
            for index in range(config.points_per_benchmark):
                site = sites[index % len(sites)]
                n = lengths["A" if site in _A_NUMBERED_SITES else "R"]
                lo = int(n * config.warmup_fraction)
                seq = rng.randrange(lo, n) if n > lo else 0
                bit = rng.randrange(32)
                points.append(CampaignPoint(
                    benchmark=benchmark,
                    fault=TransientFault(site=site, target_seq=seq, bit=bit),
                    mode=mode,
                ))
    return points


def _geomean(values: Sequence[float]) -> Optional[float]:
    clean = [v for v in values if v and v > 0]
    if not clean:
        return None
    product = 1.0
    for v in clean:
        product *= v
    return product ** (1.0 / len(clean))


@dataclass
class ScaledCampaignResult:
    """Aggregate of one scaled campaign.

    ``per_benchmark`` holds each workload's classified injections
    (every mode's results merged; each :class:`InjectionResult` carries
    its ``mode``); ``failed_points`` lists the job labels of campaign
    points that did not complete (the hardened runner retries,
    quarantines and reports — a lost point is recorded, never silently
    dropped).  ``mode_ipc`` carries each mode's fault-free throughput
    IPC (geometric mean across the campaign's benchmarks) and
    ``baseline_ipc`` the single-core superscalar reference, both filled
    in by :func:`run_scaled_campaign`.
    """

    config: CampaignConfig
    points: List[CampaignPoint] = field(default_factory=list)
    per_benchmark: Dict[str, CampaignResult] = field(default_factory=dict)
    failed_points: List[str] = field(default_factory=list)
    mode_ipc: Dict[str, Optional[float]] = field(default_factory=dict)
    baseline_ipc: Optional[float] = None

    # -- aggregation -------------------------------------------------

    @property
    def results(self) -> List[InjectionResult]:
        out: List[InjectionResult] = []
        for benchmark in sorted(self.per_benchmark):
            out.extend(self.per_benchmark[benchmark].results)
        return out

    @property
    def combined(self) -> CampaignResult:
        """All benchmarks' injections as one campaign."""
        return CampaignResult(results=self.results)

    def for_mode(self, mode: str) -> CampaignResult:
        """One mode's injections across all benchmarks."""
        return CampaignResult(
            results=[r for r in self.results if r.mode == mode]
        )

    @property
    def coverage(self) -> Optional[float]:
        """Fraction of harmful faults handled safely, suite-wide."""
        return self.combined.coverage

    @property
    def redundant_coverage(self) -> Optional[float]:
        """Coverage restricted to strikes on *redundantly executed*
        (compared) instructions — the paper's transparent-coverage
        claim.  Without ECC, ``R_ARCH`` strikes keep this below 1.0
        (the comparison saw the correct value; the storage lied later);
        with ECC it reaches 1.0.
        """
        harmful = [
            r for r in self.results
            if r.outcome in HARMFUL_OUTCOMES and r.struck_compared
        ]
        if not harmful:
            return None
        good = sum(1 for r in harmful if r.outcome in HANDLED_OUTCOMES)
        return good / len(harmful)

    @property
    def ecc_corrections(self) -> int:
        return sum(1 for r in self.results if r.ecc_corrected)

    def table(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Outcome tallies as ``benchmark -> site -> outcome -> n``."""
        out: Dict[str, Dict[str, Dict[str, int]]] = {}
        for benchmark in sorted(self.per_benchmark):
            sites: Dict[str, Dict[str, int]] = {}
            for result in self.per_benchmark[benchmark].results:
                cell = sites.setdefault(result.fault.site.value, {})
                name = result.outcome.value
                cell[name] = cell.get(name, 0) + 1
            out[benchmark] = {
                site: dict(sorted(counts.items()))
                for site, counts in sorted(sites.items())
            }
        return out

    def frontier(self) -> List[dict]:
        """The coverage-vs-throughput frontier, one row per mode.

        Each row reports the mode's stream count, harmful/handled
        tallies, coverage, fault-free throughput IPC, and mean
        detection latency in retirements.  ``relative_ipc`` is the
        *useful* throughput per context — the mode's IPC divided by its
        stream count, over the single-core baseline — so the redundancy
        cost shows on the throughput axis: TMR retires one useful
        stream on three contexts (~0.33), replay keeps nearly the whole
        core (~0.9), the pairwise modes sit in between (~0.5).
        """
        rows: List[dict] = []
        for mode in self.config.modes:
            sub = self.for_mode(mode)
            latencies = [
                r.detect_latency
                for r in sub.results
                if r.detect_latency is not None
            ]
            ipc = self.mode_ipc.get(mode)
            n_streams = resolve_mode(mode).n_streams
            relative = None
            if ipc is not None and self.baseline_ipc:
                relative = ipc / n_streams / self.baseline_ipc
            rows.append({
                "mode": mode,
                "n_streams": n_streams,
                "points": len(sub.results),
                "fired": sub.fired,
                "harmful": sub.harmful,
                "coverage": sub.coverage,
                "throughput_ipc": ipc,
                "relative_ipc": relative,
                "mean_detect_latency": (
                    sum(latencies) / len(latencies) if latencies else None
                ),
            })
        return rows

    def metrics(self) -> MetricsRegistry:
        """Detection-latency and recovery-penalty distributions.

        Latency is counted in R-stream retirements between strike and
        detection; penalty is the triggered recovery's cost in cycles.
        Only detected outcomes contribute (an ECC correction has no
        detection event — the error never becomes architectural).
        Per-mode outcome counters (``fault.mode.<mode>.<outcome>``)
        break the same tallies down by redundancy mode.
        """
        registry = MetricsRegistry()
        latency = registry.histogram("fault.detect_latency")
        penalty = registry.histogram("fault.recovery_penalty")
        outcomes = registry.counter  # one counter per outcome
        for result in self.results:
            outcomes(f"fault.outcome.{result.outcome.value}").inc()
            outcomes(f"fault.mode.{result.mode}.{result.outcome.value}").inc()
            if result.detect_latency is not None:
                latency.observe(result.detect_latency)
                registry.histogram(
                    f"fault.mode.{result.mode}.detect_latency"
                ).observe(result.detect_latency)
            if result.recovery_penalty is not None:
                penalty.observe(result.recovery_penalty)
        return registry

    # -- serialisation ----------------------------------------------

    def to_payload(self) -> dict:
        """The deterministic ``BENCH_fault.json`` document.

        Contains *no* wall-clock or host-specific fields: the same
        campaign config produces a byte-identical payload regardless of
        parallelism, cache temperature or machine.
        """
        combined = self.combined
        registry = self.metrics()
        coverage = self.coverage
        redundant = self.redundant_coverage

        def _round(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value, 4)

        return {
            "config": {
                "benchmarks": list(self.config.benchmarks),
                "scale": self.config.scale,
                "points_per_benchmark": self.config.points_per_benchmark,
                "seed": self.config.seed,
                "sites": [s.value for s in self.config.sites],
                "ecc": self.config.ecc,
                "warmup_fraction": self.config.warmup_fraction,
                "modes": list(self.config.modes),
            },
            "modes": list(self.config.modes),
            "points": len(self.points),
            "completed": len(self.results),
            "failed_points": sorted(self.failed_points),
            "fired": combined.fired,
            "harmful": combined.harmful,
            "coverage": _round(coverage),
            "redundant_coverage": _round(redundant),
            "ecc_corrections": self.ecc_corrections,
            "outcomes": {
                outcome.value: count
                for outcome, count in sorted(
                    combined.counts().items(), key=lambda kv: kv[0].value
                )
            },
            "table": self.table(),
            "per_benchmark": {
                benchmark: {
                    "coverage": _round(campaign.coverage),
                    "fired": campaign.fired,
                    "harmful": campaign.harmful,
                }
                for benchmark, campaign in sorted(self.per_benchmark.items())
            },
            "per_mode": {
                mode: {
                    "coverage": _round(self.for_mode(mode).coverage),
                    "fired": self.for_mode(mode).fired,
                    "harmful": self.for_mode(mode).harmful,
                    "outcomes": {
                        outcome.value: count
                        for outcome, count in sorted(
                            self.for_mode(mode).counts().items(),
                            key=lambda kv: kv[0].value,
                        )
                    },
                }
                for mode in self.config.modes
            },
            "frontier": [
                {
                    **row,
                    "coverage": _round(row["coverage"]),
                    "throughput_ipc": _round(row["throughput_ipc"]),
                    "relative_ipc": _round(row["relative_ipc"]),
                    "mean_detect_latency": _round(row["mean_detect_latency"]),
                }
                for row in self.frontier()
            ],
            "metrics": registry.snapshot(),
        }


def campaign_specs(config: CampaignConfig,
                   points: Sequence[CampaignPoint]) -> List["JobSpec"]:
    """The campaign's points as runner job specs."""
    from repro.eval.jobs import injection_spec

    return [
        injection_spec(
            point.benchmark,
            point.fault.site,
            point.fault.target_seq,
            bit=point.fault.bit,
            scale=config.scale,
            ecc=config.ecc,
            mode=point.mode,
        )
        for point in points
    ]


def _reference_specs(config: CampaignConfig) -> List["JobSpec"]:
    """Fault-free reference jobs for every (mode, benchmark) pair."""
    from repro.eval.jobs import (
        baseline_spec,
        mode_reference_spec,
        slipstream_spec,
    )
    from repro.core.modes import decorrelated_config

    specs: List["JobSpec"] = []
    seen = set()

    def add(spec: "JobSpec") -> None:
        if spec.key not in seen:
            seen.add(spec.key)
            specs.append(spec)

    for mode in config.modes:
        for benchmark in config.benchmarks:
            if mode == "slipstream":
                add(slipstream_spec(benchmark, config.scale))
            elif mode == "decorrelated":
                add(slipstream_spec(
                    benchmark, config.scale, config=decorrelated_config()
                ))
            else:
                add(baseline_spec(benchmark, config.scale))
                add(mode_reference_spec(benchmark, mode, config.scale))
    return specs


def _mode_stream_lengths(
    config: CampaignConfig,
) -> Dict[str, Dict[str, Dict[str, int]]]:
    """Per-mode stream lengths, from the cached fault-free references."""
    from repro.core.modes import decorrelated_config
    from repro.eval import models

    lengths: Dict[str, Dict[str, Dict[str, int]]] = {}
    for mode in config.modes:
        table: Dict[str, Dict[str, int]] = {}
        for benchmark in config.benchmarks:
            if mode in ("slipstream", "decorrelated"):
                cfg = decorrelated_config() if mode == "decorrelated" else None
                ref = models.run_slipstream_model(
                    benchmark, config.scale, config=cfg
                )
                table[benchmark] = {
                    "R": ref.retired,
                    "A": ref.retired - ref.a_removed,
                }
            else:
                ref = models.run_mode_reference(benchmark, mode, config.scale)
                table[benchmark] = {"R": ref.retired, "A": ref.retired}
        lengths[mode] = table
    return lengths


def _mode_throughput(
    config: CampaignConfig,
) -> Tuple[Dict[str, Optional[float]], Optional[float]]:
    """(per-mode fault-free IPC geomeans, single-core baseline IPC)."""
    from repro.core.modes import decorrelated_config
    from repro.eval import models

    mode_ipc: Dict[str, Optional[float]] = {}
    for mode in config.modes:
        ipcs: List[float] = []
        for benchmark in config.benchmarks:
            if mode in ("slipstream", "decorrelated"):
                cfg = decorrelated_config() if mode == "decorrelated" else None
                ref = models.run_slipstream_model(
                    benchmark, config.scale, config=cfg
                )
            else:
                ref = models.run_mode_reference(benchmark, mode, config.scale)
            ipcs.append(ref.ipc)
        mode_ipc[mode] = _geomean(ipcs)
    baseline = None
    if len(config.modes) > 1 or any(
        mode in ("tmr", "replay") for mode in config.modes
    ):
        # The n-stream references already forced the ss64 baselines
        # into the cache, so for tmr/replay this adds no simulation.
        baseline = _geomean([
            models.run_baseline(benchmark, config.scale).ipc
            for benchmark in config.benchmarks
        ])
    return mode_ipc, baseline


def run_scaled_campaign(
    config: CampaignConfig,
    jobs: int = 1,
    policy: Optional["RetryPolicy"] = None,
    use_disk_cache: bool = True,
) -> Tuple[ScaledCampaignResult, "RunnerStats"]:
    """Run one scaled campaign through the hardened runner.

    Two runner passes: first the fault-free reference runs per (mode,
    benchmark) pair — one slipstream/decorrelated co-simulation or one
    baseline + N-stream reference, also the source of the stream
    lengths the sampler needs — then every sampled strike point as a
    ``finj`` job.  Both passes absorb into the persistent cache, so an
    interrupted campaign resumes where it stopped and a repeated one is
    pure cache hits.  A failing point does not sink the campaign: the
    runner's casualties land in ``failed_points`` and the aggregation
    covers what completed.

    Returns ``(result, stats)`` where ``stats`` is the injection pass's
    :class:`~repro.eval.runner.RunnerStats` (reference-pass timing is
    not included; with a warm cache it is pure hits anyway).
    """
    from repro.eval import models
    from repro.eval.jobs import job_label
    from repro.eval.runner import ExperimentRunner, RunnerError

    runner = ExperimentRunner(jobs=jobs, use_disk_cache=use_disk_cache,
                              policy=policy)

    # Pass 1: fault-free references (stream lengths + reference outputs).
    runner.run(_reference_specs(config))
    stream_lengths = _mode_stream_lengths(config)

    points = sample_points(config, stream_lengths)
    specs = campaign_specs(config, points)

    # Pass 2: the strike points, fanned through the hardened runner.
    try:
        stats = runner.run(specs)
    except RunnerError as error:
        stats = error.stats

    result = ScaledCampaignResult(config=config, points=points)
    for point, spec in zip(points, specs):
        injection = models._CACHE.get(spec.key)
        if injection is None:
            result.failed_points.append(job_label(spec.key))
            continue
        campaign = result.per_benchmark.setdefault(
            point.benchmark, CampaignResult()
        )
        campaign.results.append(injection)
    result.mode_ipc, result.baseline_ipc = _mode_throughput(config)
    return result, stats


def write_fault_bench(
    result: ScaledCampaignResult,
    path: Union[str, Path] = DEFAULT_BENCH_FAULT_PATH,
) -> Path:
    """Write the campaign's ``BENCH_fault.json``; returns the path.

    Unlike ``BENCH_runner.json`` (timing: inherently run-dependent),
    this artifact is fully deterministic, so it *overwrites* rather
    than appends — the file is a function of the campaign config and
    the simulator code, and meaningful to diff across commits.
    """
    target = Path(path)
    target.write_text(
        json.dumps(result.to_payload(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def format_frontier_table(result: ScaledCampaignResult) -> str:
    """Human-readable coverage-vs-throughput frontier for the CLI."""
    rows = result.frontier()
    if not rows:
        return "(no modes)"
    header = (f"{'mode':<14}{'streams':>8}{'harmful':>9}{'coverage':>10}"
              f"{'ipc':>8}{'rel':>7}{'latency':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        cov = row["coverage"]
        ipc = row["throughput_ipc"]
        rel = row["relative_ipc"]
        lat = row["mean_detect_latency"]
        lines.append(
            f"{row['mode']:<14}{row['n_streams']:>8}{row['harmful']:>9}"
            + (f"{cov:>10.1%}" if cov is not None else f"{'n/a':>10}")
            + (f"{ipc:>8.3f}" if ipc is not None else f"{'n/a':>8}")
            + (f"{rel:>7.2f}" if rel is not None else f"{'n/a':>7}")
            + (f"{lat:>9.1f}" if lat is not None else f"{'n/a':>9}")
        )
    return "\n".join(lines)


def format_coverage_table(result: ScaledCampaignResult) -> str:
    """Human-readable outcome × site × workload table for the CLI."""
    lines: List[str] = []
    outcome_order = [o.value for o in FaultOutcome]
    present = sorted(
        {r.outcome.value for r in result.results},
        key=outcome_order.index,
    )
    if not present:
        return "(no completed campaign points)"
    all_sites = sorted(
        {r.fault.site for r in result.results} | set(result.config.sites),
        key=lambda s: s.value,
    )
    site_width = max(len("site"), max(
        (len(s.value) for s in all_sites), default=4))
    bench_width = max(len("workload"), max(
        (len(b) for b in result.config.benchmarks), default=8))
    header = (f"{'workload':<{bench_width}}  {'site':<{site_width}}  "
              + "  ".join(f"{name:>{len(name)}}" for name in present))
    lines.append(header)
    lines.append("-" * len(header))
    table = result.table()
    for benchmark in sorted(table):
        for site, counts in table[benchmark].items():
            row = (f"{benchmark:<{bench_width}}  {site:<{site_width}}  "
                   + "  ".join(f"{counts.get(name, 0):>{len(name)}}"
                               for name in present))
            lines.append(row)
    lines.append("")
    cov = result.coverage
    red = result.redundant_coverage
    lines.append(
        "coverage (harmful faults handled): "
        + ("n/a (no harmful faults)" if cov is None else f"{cov:.1%}")
    )
    lines.append(
        "redundant-instruction coverage:    "
        + ("n/a" if red is None else f"{red:.1%}")
    )
    if result.config.ecc:
        lines.append(f"ECC corrections:                   "
                     f"{result.ecc_corrections}")
    if len(result.config.modes) > 1:
        lines.append("")
        lines.append("coverage-vs-throughput frontier:")
        lines.append(format_frontier_table(result))
    if result.failed_points:
        lines.append(f"failed points: {len(result.failed_points)} "
                     f"({', '.join(result.failed_points[:4])}...)")
    return "\n".join(lines)


__all__ = [
    "CampaignConfig",
    "CampaignPoint",
    "DEFAULT_SITES",
    "ScaledCampaignResult",
    "campaign_specs",
    "format_coverage_table",
    "format_frontier_table",
    "mode_sites",
    "run_scaled_campaign",
    "sample_points",
    "write_fault_bench",
]
