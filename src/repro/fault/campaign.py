"""Scaled fault-injection campaigns across the benchmark suite.

:mod:`repro.fault.coverage` classifies *one* injected fault;
this module scales that to a statistical campaign (paper, section 3):
a seeded RNG samples (site × dynamic-instruction × bit) strike points
across all eight workloads, every point becomes a cached
:class:`~repro.eval.jobs.JobSpec` fanned through the hardened
:class:`~repro.eval.runner.ExperimentRunner`, and the classified
outcomes aggregate into an outcome × site × workload coverage table.

Determinism is load-bearing: the sampler derives one
``random.Random(f"{seed}:{benchmark}")`` stream per workload (string
seeds hash independently of ``PYTHONHASHSEED``), sites rotate
round-robin so every site is exercised on every workload, and the
emitted ``BENCH_fault.json`` payload contains no wall-clock — the same
seed yields a byte-identical artifact, whether run with ``--jobs 1`` or
a full pool, cold or resumed from the disk cache.

With ``ecc=True`` the campaign models ECC on the R-stream's
architectural state (:mod:`repro.fault.ecc`): ``R_ARCH`` strikes
classify as ``ECC_CORRECTED`` instead of ``DETECTED_UNRECOVERABLE`` /
``SILENT_CORRUPTION``, closing the paper's unrecoverable hole —
coverage of redundantly-executed instructions reaches 100%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import json
import random

from repro.fault.coverage import (
    HANDLED_OUTCOMES,
    HARMFUL_OUTCOMES,
    CampaignResult,
    FaultOutcome,
    InjectionResult,
)
from repro.fault.injector import FaultSite, TransientFault
from repro.obs.registry import MetricsRegistry
from repro.workloads.suite import benchmark_suite

DEFAULT_BENCH_FAULT_PATH = "BENCH_fault.json"

#: Default strike sites: both streams' pipelines plus the R-stream's
#: architectural state (the paper's three section-3 fault classes).
DEFAULT_SITES: Tuple[FaultSite, ...] = (
    FaultSite.A_RESULT,
    FaultSite.R_TRANSIENT,
    FaultSite.R_ARCH,
)


def _default_benchmarks() -> Tuple[str, ...]:
    return tuple(b.name for b in benchmark_suite())


@dataclass(frozen=True)
class CampaignConfig:
    """One scaled campaign, fully determined by its fields.

    ``warmup_fraction`` skips the first part of each stream's dynamic
    instructions so strikes land in steady state rather than in loop
    preambles whose values are often dead (mostly-``MASKED`` strikes
    carry no information).  ``points_per_benchmark`` counts sampled
    strike points per workload; sites rotate round-robin across them,
    so with the default three sites each site receives one third.
    """

    benchmarks: Tuple[str, ...] = field(default_factory=_default_benchmarks)
    scale: int = 1
    points_per_benchmark: int = 12
    seed: int = 2000
    sites: Tuple[FaultSite, ...] = DEFAULT_SITES
    ecc: bool = False
    warmup_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("campaign needs at least one benchmark")
        if not self.sites:
            raise ValueError("campaign needs at least one fault site")
        if self.points_per_benchmark < 1:
            raise ValueError("points_per_benchmark must be >= 1")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")


@dataclass(frozen=True)
class CampaignPoint:
    """One sampled strike point of a campaign."""

    benchmark: str
    fault: TransientFault


def sample_points(
    config: CampaignConfig,
    stream_lengths: Dict[str, Dict[str, int]],
) -> List[CampaignPoint]:
    """Sample the campaign's strike points, deterministically.

    ``stream_lengths`` maps each benchmark to its per-stream dynamic
    instruction counts — ``{"A": executed_by_a, "R": retired}`` — which
    bound the sampled sequence numbers (A-stream numbering only covers
    the instructions the A-stream actually executed).  Each benchmark
    gets its own seeded RNG stream, so adding a benchmark to the
    campaign does not perturb the points sampled for the others.
    """
    points: List[CampaignPoint] = []
    for benchmark in config.benchmarks:
        lengths = stream_lengths[benchmark]
        rng = random.Random(f"{config.seed}:{benchmark}")
        for index in range(config.points_per_benchmark):
            site = config.sites[index % len(config.sites)]
            n = lengths["A" if site is FaultSite.A_RESULT else "R"]
            lo = int(n * config.warmup_fraction)
            seq = rng.randrange(lo, n) if n > lo else 0
            bit = rng.randrange(32)
            points.append(CampaignPoint(
                benchmark=benchmark,
                fault=TransientFault(site=site, target_seq=seq, bit=bit),
            ))
    return points


@dataclass
class ScaledCampaignResult:
    """Aggregate of one scaled campaign.

    ``per_benchmark`` holds each workload's classified injections;
    ``failed_points`` lists the job labels of campaign points that did
    not complete (the hardened runner retries, quarantines and reports
    — a lost point is recorded, never silently dropped).
    """

    config: CampaignConfig
    points: List[CampaignPoint] = field(default_factory=list)
    per_benchmark: Dict[str, CampaignResult] = field(default_factory=dict)
    failed_points: List[str] = field(default_factory=list)

    # -- aggregation -------------------------------------------------

    @property
    def results(self) -> List[InjectionResult]:
        out: List[InjectionResult] = []
        for benchmark in sorted(self.per_benchmark):
            out.extend(self.per_benchmark[benchmark].results)
        return out

    @property
    def combined(self) -> CampaignResult:
        """All benchmarks' injections as one campaign."""
        return CampaignResult(results=self.results)

    @property
    def coverage(self) -> Optional[float]:
        """Fraction of harmful faults handled safely, suite-wide."""
        return self.combined.coverage

    @property
    def redundant_coverage(self) -> Optional[float]:
        """Coverage restricted to strikes on *redundantly executed*
        (compared) instructions — the paper's transparent-coverage
        claim.  Without ECC, ``R_ARCH`` strikes keep this below 1.0
        (the comparison saw the correct value; the storage lied later);
        with ECC it reaches 1.0.
        """
        harmful = [
            r for r in self.results
            if r.outcome in HARMFUL_OUTCOMES and r.struck_compared
        ]
        if not harmful:
            return None
        good = sum(1 for r in harmful if r.outcome in HANDLED_OUTCOMES)
        return good / len(harmful)

    @property
    def ecc_corrections(self) -> int:
        return sum(1 for r in self.results if r.ecc_corrected)

    def table(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Outcome tallies as ``benchmark -> site -> outcome -> n``."""
        out: Dict[str, Dict[str, Dict[str, int]]] = {}
        for benchmark in sorted(self.per_benchmark):
            sites: Dict[str, Dict[str, int]] = {}
            for result in self.per_benchmark[benchmark].results:
                cell = sites.setdefault(result.fault.site.value, {})
                name = result.outcome.value
                cell[name] = cell.get(name, 0) + 1
            out[benchmark] = {
                site: dict(sorted(counts.items()))
                for site, counts in sorted(sites.items())
            }
        return out

    def metrics(self) -> MetricsRegistry:
        """Detection-latency and recovery-penalty distributions.

        Latency is counted in R-stream retirements between strike and
        detection; penalty is the triggered recovery's cost in cycles.
        Only detected outcomes contribute (an ECC correction has no
        detection event — the error never becomes architectural).
        """
        registry = MetricsRegistry()
        latency = registry.histogram("fault.detect_latency")
        penalty = registry.histogram("fault.recovery_penalty")
        outcomes = registry.counter  # one counter per outcome
        for result in self.results:
            outcomes(f"fault.outcome.{result.outcome.value}").inc()
            if result.detect_latency is not None:
                latency.observe(result.detect_latency)
            if result.recovery_penalty is not None:
                penalty.observe(result.recovery_penalty)
        return registry

    # -- serialisation ----------------------------------------------

    def to_payload(self) -> dict:
        """The deterministic ``BENCH_fault.json`` document.

        Contains *no* wall-clock or host-specific fields: the same
        campaign config produces a byte-identical payload regardless of
        parallelism, cache temperature or machine.
        """
        combined = self.combined
        registry = self.metrics()
        coverage = self.coverage
        redundant = self.redundant_coverage

        def _round(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value, 4)

        return {
            "config": {
                "benchmarks": list(self.config.benchmarks),
                "scale": self.config.scale,
                "points_per_benchmark": self.config.points_per_benchmark,
                "seed": self.config.seed,
                "sites": [s.value for s in self.config.sites],
                "ecc": self.config.ecc,
                "warmup_fraction": self.config.warmup_fraction,
            },
            "points": len(self.points),
            "completed": len(self.results),
            "failed_points": sorted(self.failed_points),
            "fired": combined.fired,
            "harmful": combined.harmful,
            "coverage": _round(coverage),
            "redundant_coverage": _round(redundant),
            "ecc_corrections": self.ecc_corrections,
            "outcomes": {
                outcome.value: count
                for outcome, count in sorted(
                    combined.counts().items(), key=lambda kv: kv[0].value
                )
            },
            "table": self.table(),
            "per_benchmark": {
                benchmark: {
                    "coverage": _round(campaign.coverage),
                    "fired": campaign.fired,
                    "harmful": campaign.harmful,
                }
                for benchmark, campaign in sorted(self.per_benchmark.items())
            },
            "metrics": registry.snapshot(),
        }


def campaign_specs(config: CampaignConfig,
                   points: Sequence[CampaignPoint]) -> List["JobSpec"]:
    """The campaign's points as runner job specs."""
    from repro.eval.jobs import injection_spec

    return [
        injection_spec(
            point.benchmark,
            point.fault.site,
            point.fault.target_seq,
            bit=point.fault.bit,
            scale=config.scale,
            ecc=config.ecc,
        )
        for point in points
    ]


def run_scaled_campaign(
    config: CampaignConfig,
    jobs: int = 1,
    policy: Optional["RetryPolicy"] = None,
    use_disk_cache: bool = True,
) -> Tuple[ScaledCampaignResult, "RunnerStats"]:
    """Run one scaled campaign through the hardened runner.

    Two runner passes: first the fault-free reference runs (one
    slipstream simulation per workload — also the source of the stream
    lengths the sampler needs), then every sampled strike point as a
    ``finj`` job.  Both passes absorb into the persistent cache, so an
    interrupted campaign resumes where it stopped and a repeated one is
    pure cache hits.  A failing point does not sink the campaign: the
    runner's casualties land in ``failed_points`` and the aggregation
    covers what completed.

    Returns ``(result, stats)`` where ``stats`` is the injection pass's
    :class:`~repro.eval.runner.RunnerStats` (reference-pass timing is
    not included; with a warm cache it is pure hits anyway).
    """
    from repro.eval import models
    from repro.eval.jobs import job_label, slipstream_spec
    from repro.eval.runner import ExperimentRunner, RunnerError

    runner = ExperimentRunner(jobs=jobs, use_disk_cache=use_disk_cache,
                              policy=policy)

    # Pass 1: fault-free references (stream lengths + reference outputs).
    runner.run([
        slipstream_spec(benchmark, config.scale)
        for benchmark in config.benchmarks
    ])
    stream_lengths: Dict[str, Dict[str, int]] = {}
    for benchmark in config.benchmarks:
        reference = models.run_slipstream_model(benchmark, config.scale)
        stream_lengths[benchmark] = {
            "R": reference.retired,
            "A": reference.retired - reference.a_removed,
        }

    points = sample_points(config, stream_lengths)
    specs = campaign_specs(config, points)

    # Pass 2: the strike points, fanned through the hardened runner.
    try:
        stats = runner.run(specs)
    except RunnerError as error:
        stats = error.stats

    result = ScaledCampaignResult(config=config, points=points)
    for point, spec in zip(points, specs):
        injection = models._CACHE.get(spec.key)
        if injection is None:
            result.failed_points.append(job_label(spec.key))
            continue
        campaign = result.per_benchmark.setdefault(
            point.benchmark, CampaignResult()
        )
        campaign.results.append(injection)
    return result, stats


def write_fault_bench(
    result: ScaledCampaignResult,
    path: Union[str, Path] = DEFAULT_BENCH_FAULT_PATH,
) -> Path:
    """Write the campaign's ``BENCH_fault.json``; returns the path.

    Unlike ``BENCH_runner.json`` (timing: inherently run-dependent),
    this artifact is fully deterministic, so it *overwrites* rather
    than appends — the file is a function of the campaign config and
    the simulator code, and meaningful to diff across commits.
    """
    target = Path(path)
    target.write_text(
        json.dumps(result.to_payload(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def format_coverage_table(result: ScaledCampaignResult) -> str:
    """Human-readable outcome × site × workload table for the CLI."""
    lines: List[str] = []
    outcome_order = [o.value for o in FaultOutcome]
    present = sorted(
        {r.outcome.value for r in result.results},
        key=outcome_order.index,
    )
    if not present:
        return "(no completed campaign points)"
    site_width = max(len("site"), max(
        (len(s.value) for s in result.config.sites), default=4))
    bench_width = max(len("workload"), max(
        (len(b) for b in result.config.benchmarks), default=8))
    header = (f"{'workload':<{bench_width}}  {'site':<{site_width}}  "
              + "  ".join(f"{name:>{len(name)}}" for name in present))
    lines.append(header)
    lines.append("-" * len(header))
    table = result.table()
    for benchmark in sorted(table):
        for site, counts in table[benchmark].items():
            row = (f"{benchmark:<{bench_width}}  {site:<{site_width}}  "
                   + "  ".join(f"{counts.get(name, 0):>{len(name)}}"
                               for name in present))
            lines.append(row)
    lines.append("")
    cov = result.coverage
    red = result.redundant_coverage
    lines.append(
        "coverage (harmful faults handled): "
        + ("n/a (no harmful faults)" if cov is None else f"{cov:.1%}")
    )
    lines.append(
        "redundant-instruction coverage:    "
        + ("n/a" if red is None else f"{red:.1%}")
    )
    if result.config.ecc:
        lines.append(f"ECC corrections:                   "
                     f"{result.ecc_corrections}")
    if result.failed_points:
        lines.append(f"failed points: {len(result.failed_points)} "
                     f"({', '.join(result.failed_points[:4])}...)")
    return "\n".join(lines)


__all__ = [
    "CampaignConfig",
    "CampaignPoint",
    "DEFAULT_SITES",
    "ScaledCampaignResult",
    "campaign_specs",
    "format_coverage_table",
    "run_scaled_campaign",
    "sample_points",
    "write_fault_bench",
]
