"""Fault-injection campaigns and outcome classification.

Each campaign point runs the full slipstream machine with one injected
fault and classifies the run against a fault-free reference:

* ``DETECTED_RECOVERED`` — the machinery flagged a deviation (an extra
  "IR-misprediction") and the program output is correct.
* ``ECC_CORRECTED`` — the strike landed in ECC-protected architectural
  state (:mod:`repro.fault.ecc`) and was corrected before use; the
  output is correct.  Only produced when the campaign models ECC.
* ``MASKED`` — no deviation flagged, output correct anyway (the
  corrupted value never influenced architectural results, or the flip
  hit a value that is re-derived).
* ``SILENT_CORRUPTION`` — no deviation flagged and the output is
  wrong: the fault escaped the sphere of replication (scenario #2, or
  an R-stream architectural hit).
* ``DETECTED_UNRECOVERABLE`` — a deviation was flagged but the output
  is still wrong: detection happened, recovery used corrupted
  R-stream state (the paper's argument for ECC on the R-stream's
  register file and data cache).
* ``HANG`` — the injected run exceeded its *deterministic* instruction
  budget (:func:`hang_budget`, a fixed multiple of the fault-free run's
  retirement count).  A strike that corrupts loop-control state can
  make the program retire orders of magnitude more instructions than
  the clean run — or never halt at all.  No watchdog is modelled, so a
  hang is harmful and unhandled.  The budget is a function of the
  reference run, never of wall-clock, which keeps campaign artifacts
  byte-deterministic across hosts.

* ``NOT_FIRED`` — the sampled strike point was never reached (the
  stream retired fewer instructions, or the A-stream skipped past the
  targeted sequence number).  Not a fault at all: explicitly excluded
  from every coverage denominator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import (
    SimulationError,
    SlipstreamConfig,
    SlipstreamProcessor,
)
from repro.fault.ecc import ECCModel
from repro.fault.injector import FaultInjector, FaultSite, TransientFault
from repro.isa.program import Program


class FaultOutcome(enum.Enum):
    DETECTED_RECOVERED = "detected_recovered"
    ECC_CORRECTED = "ecc_corrected"
    #: A voting mode (TMR) outvoted the corrupted stream at retirement:
    #: the strike mattered (a replica's result was wrong) but the voter
    #: masked it in place, with no rollback and no ECC involvement.
    MASKED_BY_VOTE = "masked_by_vote"
    MASKED = "masked"
    SILENT_CORRUPTION = "silent_corruption"
    DETECTED_UNRECOVERABLE = "detected_unrecoverable"
    HANG = "hang"
    NOT_FIRED = "not_fired"


#: Outcomes where the fault actually changed a value that mattered —
#: the denominator of every coverage number.  ``MASKED`` strikes are
#: harmless by definition and ``NOT_FIRED`` points are not faults.
HARMFUL_OUTCOMES = frozenset({
    FaultOutcome.DETECTED_RECOVERED,
    FaultOutcome.ECC_CORRECTED,
    FaultOutcome.MASKED_BY_VOTE,
    FaultOutcome.SILENT_CORRUPTION,
    FaultOutcome.DETECTED_UNRECOVERABLE,
    FaultOutcome.HANG,
})

#: Harmful outcomes the design handled safely.
HANDLED_OUTCOMES = frozenset({
    FaultOutcome.DETECTED_RECOVERED,
    FaultOutcome.ECC_CORRECTED,
    FaultOutcome.MASKED_BY_VOTE,
})


@dataclass
class InjectionResult:
    """Outcome of one fault injection.

    ``detect_latency`` is the number of R-stream retirements between
    the strike and the deviation being flagged (None when nothing was
    detected, or the strike hit the A-stream where the numbering is
    approximate and a detection never followed); ``recovery_penalty``
    is that recovery's latency in cycles.
    """

    fault: TransientFault
    outcome: FaultOutcome
    struck_compared: Optional[bool]
    detections: int
    detect_latency: Optional[int] = None
    recovery_penalty: Optional[int] = None
    ecc_corrected: bool = False
    #: Redundancy mode the injection ran under (see
    #: ``repro.core.modes.CAMPAIGN_MODES``).
    mode: str = "slipstream"


@dataclass
class CampaignResult:
    """Aggregate of a fault-injection campaign."""

    results: List[InjectionResult] = field(default_factory=list)

    def counts(self) -> Dict[FaultOutcome, int]:
        tally: Dict[FaultOutcome, int] = {}
        for result in self.results:
            tally[result.outcome] = tally.get(result.outcome, 0) + 1
        return tally

    def by_site(self) -> Dict[FaultSite, Dict[FaultOutcome, int]]:
        grouped: Dict[FaultSite, Dict[FaultOutcome, int]] = {}
        for result in self.results:
            site = grouped.setdefault(result.fault.site, {})
            site[result.outcome] = site.get(result.outcome, 0) + 1
        return grouped

    @property
    def fired(self) -> int:
        """Points whose fault actually struck (``NOT_FIRED`` excluded)."""
        return sum(
            1 for r in self.results if r.outcome is not FaultOutcome.NOT_FIRED
        )

    @property
    def harmful(self) -> int:
        """Fired, non-masked faults: the coverage denominator."""
        return sum(1 for r in self.results if r.outcome in HARMFUL_OUTCOMES)

    @property
    def coverage(self) -> Optional[float]:
        """Fraction of harmful faults the design handled safely
        (detected-and-recovered, or ECC-corrected).

        ``NOT_FIRED`` points and ``MASKED`` strikes are explicitly
        excluded from the denominator.  When the campaign produced *no*
        harmful fault at all, there is no coverage to speak of — the
        property is ``None``, never a vacuous (and misleading) ``1.0``.
        """
        harmful = [r for r in self.results if r.outcome in HARMFUL_OUTCOMES]
        if not harmful:
            return None
        good = sum(1 for r in harmful if r.outcome in HANDLED_OUTCOMES)
        return good / len(harmful)


def classify_run(
    reference_output: Sequence[int],
    injector: FaultInjector,
    result_output: Sequence[int],
    baseline_detections: int,
    detections: int,
) -> FaultOutcome:
    """Classify one injected run against the fault-free reference."""
    if not injector.report.fired:
        return FaultOutcome.NOT_FIRED
    correct = list(result_output) == list(reference_output)
    if injector.report.ecc_corrected and correct:
        return FaultOutcome.ECC_CORRECTED
    detected = detections > baseline_detections
    if correct and detected:
        return FaultOutcome.DETECTED_RECOVERED
    if correct:
        return FaultOutcome.MASKED
    if detected:
        return FaultOutcome.DETECTED_UNRECOVERABLE
    return FaultOutcome.SILENT_CORRUPTION


def _detection_span(run, report):
    """(detect_latency, recovery_penalty) of the first recovery at or
    after the strike, from the run's recovery log.

    The log holds ``(retired_at_detection, latency_cycles)`` per
    recovery.  The strike's position in R-stream retirement numbering
    is ``report.seq + 1`` (the hook fires just after the retirement
    counter advances); A-stream strikes use the same numbering as an
    approximation — the streams retire in near lockstep.  A baseline
    (fault-independent) recovery landing between strike and detection
    would be misattributed; baseline IR-misps are rare enough (paper:
    <0.05/1000) that the first post-strike recovery is the detection.
    """
    if report.seq is None:
        return None, None
    strike_retired = report.seq + 1
    for retired_at, latency in run.recoveries:
        if retired_at >= strike_retired:
            return max(0, retired_at - strike_retired), latency
    return None, None


def hang_budget(reference_retired: int) -> int:
    """Deterministic instruction budget for one injected run.

    A corrupted loop bound can make the injected program retire
    unboundedly many instructions; an injected run past this budget
    classifies as :attr:`FaultOutcome.HANG`.  The budget is a pure
    function of the fault-free run's retirement count (generous 4x
    headroom plus a floor for tiny programs), never of wall-clock, so
    campaign results stay byte-deterministic across hosts.
    """
    return 4 * reference_retired + 10_000


def inject_one(
    program: Program,
    fault: TransientFault,
    config: Optional[SlipstreamConfig] = None,
    reference_output: Optional[Sequence[int]] = None,
    baseline_detections: Optional[int] = None,
    ecc: bool = False,
    max_instructions: Optional[int] = None,
) -> InjectionResult:
    """Run the slipstream machine with one injected fault.

    ``ecc`` models ECC on the R-stream's architectural state
    (:class:`repro.fault.ecc.ECCModel`): protected strikes are corrected
    and classify as ``ECC_CORRECTED``.

    ``max_instructions`` bounds the injected run (see
    :func:`hang_budget`); when the reference is computed here it
    defaults to the reference's budget, and an injected run exceeding
    it classifies as ``HANG``.
    """
    if reference_output is None or baseline_detections is None:
        clean = SlipstreamProcessor(program, config).run()
        reference_output = clean.output
        baseline_detections = clean.ir_mispredictions
        if max_instructions is None:
            max_instructions = hang_budget(clean.retired)
        reference = FunctionalSimulator(program).run()
        assert list(reference.output) == list(reference_output)
    run_config = config
    if max_instructions is not None:
        run_config = replace(
            config if config is not None else SlipstreamConfig(),
            max_instructions=max_instructions,
        )
    decorrelated = bool(config.decorrelated) if config is not None else False
    injector = FaultInjector(
        fault, ecc=ECCModel() if ecc else None, decorrelated=decorrelated
    )
    try:
        run = SlipstreamProcessor(program, run_config, fault_hook=injector).run()
    except SimulationError:
        if not injector.report.fired:
            # The budget covers the clean run with 4x headroom; running
            # out *before* the strike is a simulator bug, not a fault
            # effect.
            raise
        return InjectionResult(
            fault=fault,
            outcome=FaultOutcome.HANG,
            struck_compared=injector.report.struck_compared,
            detections=0,
            ecc_corrected=injector.report.ecc_corrected,
        )
    outcome = classify_run(
        reference_output, injector, run.output, baseline_detections,
        run.ir_mispredictions,
    )
    detect_latency = recovery_penalty = None
    if outcome in (FaultOutcome.DETECTED_RECOVERED,
                   FaultOutcome.DETECTED_UNRECOVERABLE):
        detect_latency, recovery_penalty = _detection_span(run, injector.report)
    return InjectionResult(
        fault=fault,
        outcome=outcome,
        struck_compared=injector.report.struck_compared,
        detections=run.ir_mispredictions,
        detect_latency=detect_latency,
        recovery_penalty=recovery_penalty,
        ecc_corrected=injector.report.ecc_corrected,
    )


def inject_one_nstream(
    program: Program,
    fault: TransientFault,
    mode: str,
    reference_output: Optional[Sequence[int]] = None,
    baseline_detections: Optional[int] = None,
    ecc: bool = False,
    max_instructions: Optional[int] = None,
    n_streams: int = 3,
    base_cycles: Optional[int] = None,
) -> InjectionResult:
    """Run an N-stream redundancy engine with one injected fault.

    ``mode`` selects the engine: ``"tmr"``
    (:class:`repro.core.nstream.TMRProcessor`) or ``"replay"``
    (:class:`repro.core.nstream.ReplayWindowProcessor`).

    Under TMR the voter claims every single-stream strike *at
    retirement*, before any ECC scrub of architectural state could run
    — so the injector is built **without** the ECC model even when the
    campaign enables ECC, and a correct-output detected run classifies
    as ``MASKED_BY_VOTE``, never ``ECC_CORRECTED``.  The replay mode
    has no voter; its ECC model applies as in the slipstream machine.
    """
    from repro.core.nstream import (
        DEFAULT_MAX_INSTRUCTIONS,
        ReplayWindowProcessor,
        TMRProcessor,
    )

    if mode not in ("tmr", "replay"):
        raise ValueError(f"unknown N-stream mode {mode!r}")
    ecc_model = ECCModel() if (ecc and mode != "tmr") else None
    injector = FaultInjector(fault, ecc=ecc_model)
    budget = (
        max_instructions
        if max_instructions is not None
        else DEFAULT_MAX_INSTRUCTIONS
    )
    if mode == "tmr":
        engine = TMRProcessor(
            program,
            n_streams=n_streams,
            fault_hook=injector,
            base_cycles=base_cycles,
            max_instructions=budget,
        )
    else:
        engine = ReplayWindowProcessor(
            program,
            fault_hook=injector,
            base_cycles=base_cycles,
            max_instructions=budget,
        )
    if reference_output is None or baseline_detections is None:
        clean = FunctionalSimulator(program).run()
        reference_output = clean.output
        baseline_detections = 0
    try:
        run = engine.run()
    except SimulationError:
        if not injector.report.fired:
            raise
        return InjectionResult(
            fault=fault,
            outcome=FaultOutcome.HANG,
            struck_compared=injector.report.struck_compared,
            detections=0,
            ecc_corrected=injector.report.ecc_corrected,
            mode=mode,
        )
    if not injector.report.fired:
        return InjectionResult(
            fault=fault,
            outcome=FaultOutcome.NOT_FIRED,
            struck_compared=None,
            detections=run.detections,
            mode=mode,
        )
    correct = list(run.output) == list(reference_output)
    detected = run.detections > baseline_detections
    if injector.report.ecc_corrected and correct:
        outcome = FaultOutcome.ECC_CORRECTED
    elif correct and detected:
        # TMR's detection *is* the masking vote; replay's detection is
        # a successful rollback to the clean shadow continuation.
        outcome = (
            FaultOutcome.MASKED_BY_VOTE
            if mode == "tmr"
            else FaultOutcome.DETECTED_RECOVERED
        )
    elif correct:
        outcome = FaultOutcome.MASKED
    elif detected:
        outcome = FaultOutcome.DETECTED_UNRECOVERABLE
    else:
        outcome = FaultOutcome.SILENT_CORRUPTION
    detect_latency = recovery_penalty = None
    if detected and outcome is not FaultOutcome.MASKED:
        detect_latency, recovery_penalty = _detection_span(
            run, injector.report
        )
    return InjectionResult(
        fault=fault,
        outcome=outcome,
        struck_compared=injector.report.struck_compared,
        detections=run.detections,
        detect_latency=detect_latency,
        recovery_penalty=recovery_penalty,
        ecc_corrected=injector.report.ecc_corrected,
        mode=mode,
    )


def run_campaign(
    program: Program,
    sites: Sequence[FaultSite],
    target_seqs: Sequence[int],
    bit: int = 7,
    config: Optional[SlipstreamConfig] = None,
    ecc: bool = False,
) -> CampaignResult:
    """Inject one fault per (site, target) pair and aggregate."""
    clean = SlipstreamProcessor(program, config).run()
    reference_output = clean.output
    baseline = clean.ir_mispredictions
    budget = hang_budget(clean.retired)
    campaign = CampaignResult()
    for site in sites:
        for seq in target_seqs:
            fault = TransientFault(site=site, target_seq=seq, bit=bit)
            campaign.results.append(
                inject_one(
                    program, fault, config,
                    reference_output=reference_output,
                    baseline_detections=baseline,
                    ecc=ecc,
                    max_instructions=budget,
                )
            )
    return campaign
