"""Fault-injection campaigns and outcome classification.

Each campaign point runs the full slipstream machine with one injected
fault and classifies the run against a fault-free reference:

* ``DETECTED_RECOVERED`` — the machinery flagged a deviation (an extra
  "IR-misprediction") and the program output is correct.
* ``MASKED`` — no deviation flagged, output correct anyway (the
  corrupted value never influenced architectural results, or the flip
  hit a value that is re-derived).
* ``SILENT_CORRUPTION`` — no deviation flagged and the output is
  wrong: the fault escaped the sphere of replication (scenario #2, or
  an R-stream architectural hit).
* ``DETECTED_UNRECOVERABLE`` — a deviation was flagged but the output
  is still wrong: detection happened, recovery used corrupted
  R-stream state (the paper's argument for ECC on the R-stream's
  register file and data cache).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamConfig, SlipstreamProcessor
from repro.fault.injector import FaultInjector, FaultSite, TransientFault
from repro.isa.program import Program


class FaultOutcome(enum.Enum):
    DETECTED_RECOVERED = "detected_recovered"
    MASKED = "masked"
    SILENT_CORRUPTION = "silent_corruption"
    DETECTED_UNRECOVERABLE = "detected_unrecoverable"
    NOT_FIRED = "not_fired"


@dataclass
class InjectionResult:
    """Outcome of one fault injection."""

    fault: TransientFault
    outcome: FaultOutcome
    struck_compared: Optional[bool]
    detections: int


@dataclass
class CampaignResult:
    """Aggregate of a fault-injection campaign."""

    results: List[InjectionResult] = field(default_factory=list)

    def counts(self) -> Dict[FaultOutcome, int]:
        tally: Dict[FaultOutcome, int] = {}
        for result in self.results:
            tally[result.outcome] = tally.get(result.outcome, 0) + 1
        return tally

    def by_site(self) -> Dict[FaultSite, Dict[FaultOutcome, int]]:
        grouped: Dict[FaultSite, Dict[FaultOutcome, int]] = {}
        for result in self.results:
            site = grouped.setdefault(result.fault.site, {})
            site[result.outcome] = site.get(result.outcome, 0) + 1
        return grouped

    @property
    def coverage(self) -> float:
        """Fraction of fired, non-masked faults that were handled
        safely (detected and recovered)."""
        harmful = [
            r for r in self.results
            if r.outcome in (
                FaultOutcome.DETECTED_RECOVERED,
                FaultOutcome.SILENT_CORRUPTION,
                FaultOutcome.DETECTED_UNRECOVERABLE,
            )
        ]
        if not harmful:
            return 1.0
        good = sum(
            1 for r in harmful if r.outcome is FaultOutcome.DETECTED_RECOVERED
        )
        return good / len(harmful)


def classify_run(
    reference_output: Sequence[int],
    injector: FaultInjector,
    result_output: Sequence[int],
    baseline_detections: int,
    detections: int,
) -> FaultOutcome:
    """Classify one injected run against the fault-free reference."""
    if not injector.report.fired:
        return FaultOutcome.NOT_FIRED
    correct = list(result_output) == list(reference_output)
    detected = detections > baseline_detections
    if correct and detected:
        return FaultOutcome.DETECTED_RECOVERED
    if correct:
        return FaultOutcome.MASKED
    if detected:
        return FaultOutcome.DETECTED_UNRECOVERABLE
    return FaultOutcome.SILENT_CORRUPTION


def inject_one(
    program: Program,
    fault: TransientFault,
    config: Optional[SlipstreamConfig] = None,
    reference_output: Optional[Sequence[int]] = None,
    baseline_detections: Optional[int] = None,
) -> InjectionResult:
    """Run the slipstream machine with one injected fault."""
    if reference_output is None or baseline_detections is None:
        clean = SlipstreamProcessor(program, config).run()
        reference_output = clean.output
        baseline_detections = clean.ir_mispredictions
        reference = FunctionalSimulator(program).run()
        assert list(reference.output) == list(reference_output)
    injector = FaultInjector(fault)
    run = SlipstreamProcessor(program, config, fault_hook=injector).run()
    outcome = classify_run(
        reference_output, injector, run.output, baseline_detections,
        run.ir_mispredictions,
    )
    return InjectionResult(
        fault=fault,
        outcome=outcome,
        struck_compared=injector.report.struck_compared,
        detections=run.ir_mispredictions,
    )


def run_campaign(
    program: Program,
    sites: Sequence[FaultSite],
    target_seqs: Sequence[int],
    bit: int = 7,
    config: Optional[SlipstreamConfig] = None,
) -> CampaignResult:
    """Inject one fault per (site, target) pair and aggregate."""
    clean = SlipstreamProcessor(program, config).run()
    reference_output = clean.output
    baseline = clean.ir_mispredictions
    campaign = CampaignResult()
    for site in sites:
        for seq in target_seqs:
            fault = TransientFault(site=site, target_seq=seq, bit=bit)
            campaign.results.append(
                inject_one(
                    program, fault, config,
                    reference_output=reference_output,
                    baseline_detections=baseline,
                )
            )
    return campaign
