"""ECC on the R-stream's architectural state (paper, section 3).

The paper's fault analysis leaves exactly one unrecoverable hole for
redundantly-executed instructions: a transient fault that corrupts the
R-stream's *architectural* state (register file or data cache) after
writeback.  The comparison hardware saw the correctly computed value,
so the strike is invisible at the faulted instruction, and any later
detection recovers from the already-corrupted R-stream context — the
``DETECTED_UNRECOVERABLE`` outcome of :mod:`repro.fault.coverage`.

The paper's fix is conventional: protect the R-stream's register file
and data cache with single-error-correcting ECC.  :class:`ECCModel`
models that protection at the fidelity of our injector: an
:data:`~repro.fault.injector.FaultSite.R_ARCH` single-bit strike is
corrected before the value is next consumed, so the architectural state
is never observed corrupted and the run classifies as
``ECC_CORRECTED``.  Strikes *computed* wrong (``R_TRANSIENT``) are not
helped — ECC faithfully encodes the wrong value — which preserves the
paper's residual caveat for instructions the A-stream bypassed
(scenario #2).  With ECC enabled, every fault on a redundantly-executed
instruction is handled: A-stream strikes and compared R-stream
transients by the existing IR-misprediction machinery, architectural
strikes by the code — the "fully recoverable" claim the campaign
(:mod:`repro.fault.campaign`) reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.fault.injector import FaultSite

#: Sites ECC protects: architectural storage only.  Transient pipeline
#: values are not ECC-protected anywhere in the design (the paper's
#: sphere-of-replication argument covers them instead).
PROTECTED_SITES: FrozenSet[FaultSite] = frozenset({FaultSite.R_ARCH})


@dataclass
class ECCModel:
    """Single-bit-correcting ECC over the R-stream's register file and
    data cache.

    The model is exact for our injector: faults are single-bit by
    construction (:class:`~repro.fault.injector.TransientFault`), so a
    SEC code corrects every protected strike; double-bit behaviour never
    arises and is deliberately not modelled.
    """

    protected_sites: FrozenSet[FaultSite] = PROTECTED_SITES
    #: Strikes corrected so far (one per protected fault that fired).
    corrections: int = field(default=0)

    def protects(self, site: FaultSite) -> bool:
        return site in self.protected_sites

    def correct(self) -> None:
        """Record one corrected strike."""
        self.corrections += 1


__all__ = ["ECCModel", "PROTECTED_SITES"]
