"""Deterministic single-fault injection.

A fault strikes one dynamic instruction (identified by its per-stream
retirement sequence number) and flips one bit of its result value.
Three sites model the paper's analysis (section 3):

* ``A_RESULT`` — a fault in the A-stream's pipeline or context.  The
  A-stream retires the corrupted value into its architectural state.
  Expected behaviour: the R-stream's redundant computation disagrees,
  the deviation is handled exactly like an IR-misprediction, and the
  A-stream context is repaired from the R-stream — transparent
  recovery.

* ``R_TRANSIENT`` — a fault in the R-stream's pipeline.  For a
  *redundantly executed* instruction the corrupted value reaches the
  comparison hardware, the mismatch triggers a flush, and re-execution
  retires the correct value (scenario #1: transparently recoverable).
  For an instruction the A-stream *skipped* there is nothing to
  compare against: the corrupted value retires into the R-stream's
  architectural state (scenario #2: undetectable).

* ``R_ARCH`` — a direct bit flip in the R-stream's architectural state
  (register file / data cache) after writeback.  The comparison saw
  the correct computed value, so the fault is invisible at the faulted
  instruction; later deviations may be *detected* but recovery copies
  the corrupted R-stream state — detectable at best, unrecoverable
  (the paper's motivation for ECC on the R-stream's register file and
  data cache).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.arch.executor import DynInstr, wrap32
from repro.arch.state import ArchState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fault.ecc import ECCModel


class FaultSite(enum.Enum):
    A_RESULT = "a_result"
    R_TRANSIENT = "r_transient"
    R_ARCH = "r_arch"


@dataclass(frozen=True)
class TransientFault:
    """One fault: strike stream instruction ``target_seq``, flip ``bit``."""

    site: FaultSite
    target_seq: int
    bit: int = 7

    def __post_init__(self) -> None:
        if not 0 <= self.bit < 32:
            raise ValueError("bit must be in 0..31")
        if self.target_seq < 0:
            raise ValueError("target_seq must be non-negative")


def _flip(value: int, bit: int) -> int:
    return wrap32(value ^ (1 << bit))


@dataclass
class FaultReport:
    """What the injector actually did.

    ``seq`` is the struck dynamic instruction's per-stream sequence
    number (the strike point, in the faulted stream's retirement
    numbering); ``ecc_corrected`` is set when an
    :class:`~repro.fault.ecc.ECCModel` absorbed an architectural strike
    before it could land.
    """

    fired: bool = False
    struck_compared: Optional[bool] = None
    original_value: Optional[int] = None
    corrupted_value: Optional[int] = None
    pc: Optional[int] = None
    seq: Optional[int] = None
    ecc_corrected: bool = False


class FaultInjector:
    """A :data:`repro.core.slipstream.FaultHook` injecting one fault.

    ``ecc`` optionally models ECC on the R-stream's architectural state
    (:mod:`repro.fault.ecc`): a protected site's strike is counted and
    corrected instead of corrupting the state.
    """

    def __init__(self, fault: TransientFault, ecc: Optional["ECCModel"] = None):
        self.fault = fault
        self.ecc = ecc
        self.report = FaultReport()

    def __call__(
        self, stream: str, dyn: DynInstr, state: ArchState, compared: bool
    ) -> DynInstr:
        fault = self.fault
        if self.report.fired:
            return dyn
        if fault.site is FaultSite.A_RESULT and stream != "A":
            return dyn
        if fault.site in (FaultSite.R_TRANSIENT, FaultSite.R_ARCH) and stream != "R":
            return dyn
        if dyn.seq != fault.target_seq:
            return dyn
        if dyn.value is None:
            # The targeted instruction produces no value (branch, nop);
            # the fault is architecturally masked by construction.
            self.report = FaultReport(fired=True, struck_compared=compared,
                                      pc=dyn.pc, seq=dyn.seq)
            return dyn
        corrupted = _flip(dyn.value, fault.bit)
        self.report = FaultReport(
            fired=True,
            struck_compared=compared,
            original_value=dyn.value,
            corrupted_value=corrupted,
            pc=dyn.pc,
            seq=dyn.seq,
        )
        if self.ecc is not None and self.ecc.protects(fault.site):
            # The strike lands in ECC-protected storage: the single-bit
            # error is corrected before the value is next consumed, so
            # architectural state is never observed corrupted.
            self.ecc.correct()
            self.report.ecc_corrected = True
            return dyn
        if fault.site is FaultSite.A_RESULT:
            # The A-stream retires the corrupted value into its context.
            self._write_back(dyn, state, corrupted)
            return self._replace(dyn, corrupted)
        if fault.site is FaultSite.R_TRANSIENT:
            if compared:
                # The comparison sees the corrupted value; the flush
                # re-executes, so architectural state stays correct.
                return self._replace(dyn, corrupted)
            # Unvalidated instruction: the wrong value retires.
            self._write_back(dyn, state, corrupted)
            return self._replace(dyn, corrupted)
        # R_ARCH: corrupt the architectural state *after* writeback;
        # the comparison still sees the correctly computed value.
        self._write_back(dyn, state, corrupted)
        return dyn

    @staticmethod
    def _write_back(dyn: DynInstr, state: ArchState, corrupted: int) -> None:
        if dyn.is_store and dyn.mem_addr is not None:
            state.mem.write(dyn.mem_addr, corrupted)
        elif dyn.dest_reg is not None:
            state.regs.write(dyn.dest_reg, corrupted)

    @staticmethod
    def _replace(dyn: DynInstr, corrupted: int) -> DynInstr:
        return DynInstr(
            seq=dyn.seq,
            pc=dyn.pc,
            instr=dyn.instr,
            next_pc=dyn.next_pc,
            taken=dyn.taken,
            src_values=dyn.src_values,
            dest_reg=dyn.dest_reg,
            value=corrupted,
            mem_addr=dyn.mem_addr,
            output=dyn.output,
        )
