"""Deterministic single-fault injection.

A fault strikes one dynamic instruction (identified by its per-stream
retirement sequence number) and flips one bit of its result value.
Four sites model the paper's analysis (section 3) plus the
layout-correlation class the DME-style decorrelated mode targets:

* ``A_RESULT`` — a fault in the A-stream's pipeline or context.  The
  A-stream retires the corrupted value into its architectural state.
  Expected behaviour: the R-stream's redundant computation disagrees,
  the deviation is handled exactly like an IR-misprediction, and the
  A-stream context is repaired from the R-stream — transparent
  recovery.

* ``R_TRANSIENT`` — a fault in the R-stream's pipeline.  For a
  *redundantly executed* instruction the corrupted value reaches the
  comparison hardware, the mismatch triggers a flush, and re-execution
  retires the correct value (scenario #1: transparently recoverable).
  For an instruction the A-stream *skipped* there is nothing to
  compare against: the corrupted value retires into the R-stream's
  architectural state (scenario #2: undetectable).

* ``R_ARCH`` — a direct bit flip in the R-stream's architectural state
  (register file / data cache) after writeback.  The comparison saw
  the correct computed value, so the fault is invisible at the faulted
  instruction; later deviations may be *detected* but recovery copies
  the corrupted R-stream state — detectable at best, unrecoverable
  (the paper's motivation for ECC on the R-stream's register file and
  data cache).

* ``CORRELATED`` — one physical disturbance (a particle strike on a
  shared structure, a voltage droplet) hitting the *same physical
  location* in both contexts.  With correlated layouts (the default
  slipstream machine: both streams use identical data address spaces
  and register assignments) the same logical bit of the same logical
  value flips in both streams, the comparison hardware sees two
  identically-wrong values agree, and the corruption retires silently.
  Under the **decorrelated** mode (``SlipstreamConfig.decorrelated``,
  DME-style shifted address spaces and rotated register assignments,
  undone at comparison time) the same physical location maps to
  *different* logical bits in the two contexts, the corruptions
  disagree, and the comparison catches the strike like any
  IR-misprediction.  The injector models the layout rotation as a bit
  rotation of the flipped position in the R-stream's copy of the
  strike.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.arch.executor import DynInstr, wrap32
from repro.arch.state import ArchState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fault.ecc import ECCModel


class FaultSite(enum.Enum):
    A_RESULT = "a_result"
    R_TRANSIENT = "r_transient"
    R_ARCH = "r_arch"
    CORRELATED = "correlated"


#: Logical-bit rotation the decorrelated layout applies between the two
#: contexts: the physical location that holds bit ``b`` of a value in
#: the A-stream's context holds bit ``(b + 13) % 32`` of the same value
#: in the R-stream's context (13 is coprime to 32, so every bit moves).
DECORRELATION_ROTATION = 13


@dataclass(frozen=True)
class TransientFault:
    """One fault: strike stream instruction ``target_seq``, flip ``bit``."""

    site: FaultSite
    target_seq: int
    bit: int = 7

    def __post_init__(self) -> None:
        if not 0 <= self.bit < 32:
            raise ValueError("bit must be in 0..31")
        if self.target_seq < 0:
            raise ValueError("target_seq must be non-negative")


def _flip(value: int, bit: int) -> int:
    return wrap32(value ^ (1 << bit))


@dataclass
class FaultReport:
    """What the injector actually did.

    ``seq`` is the struck dynamic instruction's per-stream sequence
    number (the strike point, in the faulted stream's retirement
    numbering); ``ecc_corrected`` is set when an
    :class:`~repro.fault.ecc.ECCModel` absorbed an architectural strike
    before it could land.  For ``CORRELATED`` strikes,
    ``companion_struck`` records whether the R-stream's copy of the
    physical disturbance also landed, and ``companion_agreed`` whether
    the two corrupted values agreed at the comparison hardware (the
    silent-agreement case the decorrelated layout prevents).
    """

    fired: bool = False
    struck_compared: Optional[bool] = None
    original_value: Optional[int] = None
    corrupted_value: Optional[int] = None
    pc: Optional[int] = None
    seq: Optional[int] = None
    ecc_corrected: bool = False
    companion_struck: bool = False
    companion_agreed: bool = False


class FaultInjector:
    """A :data:`repro.core.slipstream.FaultHook` injecting one fault.

    ``ecc`` optionally models ECC on the R-stream's architectural state
    (:mod:`repro.fault.ecc`): a protected site's strike is counted and
    corrected instead of corrupting the state.

    ``decorrelated`` tells the injector whether the machine runs the
    DME-style decorrelated layouts (``SlipstreamConfig.decorrelated``):
    a ``CORRELATED`` strike then flips a *rotated* bit in the R-stream's
    context, so the two corrupted values cannot silently agree.
    """

    def __init__(self, fault: TransientFault, ecc: Optional["ECCModel"] = None,
                 decorrelated: bool = False):
        self.fault = fault
        self.ecc = ecc
        self.decorrelated = decorrelated
        self.report = FaultReport()
        #: CORRELATED bookkeeping: the A-side strike's (pc, original
        #: value, corrupted value), awaiting the R-stream companion.
        self._companion_pc: Optional[int] = None
        self._companion_value: Optional[int] = None
        self._companion_corrupt: Optional[int] = None

    def __call__(
        self, stream: str, dyn: DynInstr, state: ArchState, compared: bool
    ) -> DynInstr:
        fault = self.fault
        if fault.site is FaultSite.CORRELATED:
            return self._correlated(stream, dyn, state, compared)
        if self.report.fired:
            return dyn
        if fault.site is FaultSite.A_RESULT and stream != "A":
            return dyn
        if fault.site in (FaultSite.R_TRANSIENT, FaultSite.R_ARCH) and stream != "R":
            return dyn
        if dyn.seq != fault.target_seq:
            return dyn
        if dyn.value is None:
            # The targeted instruction produces no value (branch, nop);
            # the fault is architecturally masked by construction.
            self.report = FaultReport(fired=True, struck_compared=compared,
                                      pc=dyn.pc, seq=dyn.seq)
            return dyn
        corrupted = _flip(dyn.value, fault.bit)
        self.report = FaultReport(
            fired=True,
            struck_compared=compared,
            original_value=dyn.value,
            corrupted_value=corrupted,
            pc=dyn.pc,
            seq=dyn.seq,
        )
        if self.ecc is not None and self.ecc.protects(fault.site):
            # The strike lands in ECC-protected storage: the single-bit
            # error is corrected before the value is next consumed, so
            # architectural state is never observed corrupted.
            self.ecc.correct()
            self.report.ecc_corrected = True
            return dyn
        if fault.site is FaultSite.A_RESULT:
            # The A-stream retires the corrupted value into its context.
            self._write_back(dyn, state, corrupted)
            return self._replace(dyn, corrupted)
        if fault.site is FaultSite.R_TRANSIENT:
            if compared:
                # The comparison sees the corrupted value; the flush
                # re-executes, so architectural state stays correct.
                return self._replace(dyn, corrupted)
            # Unvalidated instruction: the wrong value retires.
            self._write_back(dyn, state, corrupted)
            return self._replace(dyn, corrupted)
        # R_ARCH: corrupt the architectural state *after* writeback;
        # the comparison still sees the correctly computed value.
        self._write_back(dyn, state, corrupted)
        return dyn

    # ------------------------------------------------------------------
    # The CORRELATED site: one physical disturbance, two contexts.
    # ------------------------------------------------------------------

    def _correlated(
        self, stream: str, dyn: DynInstr, state: ArchState, compared: bool
    ) -> DynInstr:
        fault = self.fault
        if not self.report.fired:
            # Waiting for the A-side strike (A-stream seq numbering).
            if stream != "A" or dyn.seq != fault.target_seq:
                return dyn
            if dyn.value is None:
                self.report = FaultReport(fired=True, struck_compared=compared,
                                          pc=dyn.pc, seq=dyn.seq)
                return dyn
            corrupted = _flip(dyn.value, fault.bit)
            self.report = FaultReport(
                fired=True,
                struck_compared=compared,
                original_value=dyn.value,
                corrupted_value=corrupted,
                pc=dyn.pc,
                seq=dyn.seq,
            )
            self._companion_pc = dyn.pc
            self._companion_value = dyn.value
            self._companion_corrupt = corrupted
            self._write_back(dyn, state, corrupted)
            return self._replace(dyn, corrupted)
        if self._companion_pc is None or stream != "R":
            return dyn
        # The companion is the R-stream's redundant execution of the
        # same dynamic instance: same PC, same (uncorrupted) computed
        # value — the redundant computation reproduces it by
        # construction, since the strike corrupted the A-stream's
        # *result*, not its inputs.
        if dyn.pc != self._companion_pc or dyn.value != self._companion_value:
            return dyn
        r_bit = fault.bit
        if self.decorrelated:
            r_bit = (fault.bit + DECORRELATION_ROTATION) % 32
        corrupted_r = _flip(dyn.value, r_bit)
        self._companion_pc = None
        self.report.companion_struck = True
        agreed = corrupted_r == self._companion_corrupt
        self.report.companion_agreed = agreed
        if compared and not agreed:
            # The comparison hardware sees two different wrong values:
            # the mismatch is flagged before retirement and the flush
            # re-executes, so the R-stream's state stays correct (and
            # the recovery it triggers repairs the A-stream's).
            return self._replace(dyn, corrupted_r)
        # Identically-wrong values agree (correlated layouts), or the
        # instruction was never compared: the corruption retires.
        self._write_back(dyn, state, corrupted_r)
        return self._replace(dyn, corrupted_r)

    @staticmethod
    def _write_back(dyn: DynInstr, state: ArchState, corrupted: int) -> None:
        if dyn.is_store and dyn.mem_addr is not None:
            state.mem.write(dyn.mem_addr, corrupted)
        elif dyn.dest_reg is not None:
            state.regs.write(dyn.dest_reg, corrupted)

    @staticmethod
    def _replace(dyn: DynInstr, corrupted: int) -> DynInstr:
        return DynInstr(
            seq=dyn.seq,
            pc=dyn.pc,
            instr=dyn.instr,
            next_pc=dyn.next_pc,
            taken=dyn.taken,
            src_values=dyn.src_values,
            dest_reg=dyn.dest_reg,
            value=corrupted,
            mem_addr=dyn.mem_addr,
            output=dyn.output,
        )
