"""The paper's three transient-fault scenarios (section 3, Figure 5).

Each scenario is packaged as a runnable experiment on a small workload
so tests (and the fault-coverage bench) can demonstrate the claimed
behaviour:

* **scenario 1** — the fault strikes a *redundantly executed*
  instruction: the operands of the first erroneous instruction differ
  between the streams, the deviation is handled as an
  IR-misprediction, and recovery from the R-stream's state succeeds.
* **scenario 2** — the fault strikes an instruction in a region the
  A-stream bypassed: there is nothing to compare against, the
  R-stream's architectural state is silently corrupted.
* **scenario 3** — the fault strikes the A-stream after it diverged:
  the IR-misprediction machinery flushes the corrupted work before it
  can do damage (in this model, any A-stream fault is repaired by the
  same recovery path, diverged or not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.slipstream import SlipstreamConfig, SlipstreamProcessor
from repro.fault.coverage import FaultOutcome, InjectionResult, inject_one
from repro.fault.injector import FaultSite, TransientFault
from repro.isa.program import Program


@dataclass(frozen=True)
class Scenario:
    """One of the paper's fault scenarios."""

    name: str
    description: str
    site: FaultSite
    #: Strike an instruction the A-stream executed (True), skipped
    #: (False), or either (None).
    require_compared: Optional[bool]
    #: Outcomes consistent with the paper's analysis of this scenario.
    expected: tuple


SCENARIOS: Dict[str, Scenario] = {
    "redundant": Scenario(
        name="redundant",
        description="fault on a redundantly-executed instruction: "
                    "detected as a deviation, recovered from R-stream state",
        site=FaultSite.R_TRANSIENT,
        require_compared=True,
        expected=(FaultOutcome.DETECTED_RECOVERED, FaultOutcome.MASKED),
    ),
    "bypassed": Scenario(
        name="bypassed",
        description="fault in a region the A-stream bypassed: "
                    "no redundant execution to compare against at the "
                    "faulted instruction.  The R-stream state is "
                    "corrupted (silently, or detected too late to "
                    "recover).  One strengthening over the paper's "
                    "informal analysis: when the fault strikes a "
                    "predicted-ineffectual store, the IR-detector's "
                    "predicted-vs-computed ir-vec verification can "
                    "still flag it (the store stops being silent), in "
                    "which case recovery resynchronises both contexts "
                    "before any consumer reads the bad value.",
        site=FaultSite.R_TRANSIENT,
        require_compared=False,
        expected=(FaultOutcome.SILENT_CORRUPTION,
                  FaultOutcome.DETECTED_UNRECOVERABLE,
                  FaultOutcome.DETECTED_RECOVERED,
                  FaultOutcome.MASKED),
    ),
    "astream": Scenario(
        name="astream",
        description="fault in the A-stream: flushed/repaired by the "
                    "IR-misprediction recovery path",
        site=FaultSite.A_RESULT,
        require_compared=None,
        expected=(FaultOutcome.DETECTED_RECOVERED, FaultOutcome.MASKED),
    ),
}


def find_target_seq(
    program: Program,
    compared: Optional[bool],
    config: Optional[SlipstreamConfig] = None,
    after_seq: int = 0,
    stream: str = "R",
) -> Optional[int]:
    """Find a dynamic-instruction seq (in ``stream``'s numbering) whose
    instruction was executed/compared (True) or skipped (False) by the
    A-stream, and which produces a value.  Runs the machine once with a
    recording hook.
    """
    found: list = []

    def probe(hook_stream, dyn, state, is_compared):
        if (
            hook_stream == stream
            and not found
            and dyn.seq >= after_seq
            and (compared is None or is_compared == compared)
            and dyn.value is not None
            and (dyn.dest_reg is not None or dyn.is_store)
        ):
            found.append(dyn.seq)
        return dyn

    SlipstreamProcessor(program, config, fault_hook=probe).run()
    return found[0] if found else None


def run_scenario(
    scenario: Scenario,
    program: Program,
    config: Optional[SlipstreamConfig] = None,
    after_seq: int = 0,
    bit: int = 7,
) -> InjectionResult:
    """Execute one scenario: locate a qualifying target and inject."""
    if scenario.site is FaultSite.A_RESULT:
        seq = find_target_seq(program, compared=None, config=config,
                              after_seq=after_seq, stream="A")
    else:
        seq = find_target_seq(
            program, compared=scenario.require_compared, config=config,
            after_seq=after_seq,
        )
    if seq is None:
        raise ValueError(
            f"no qualifying target for scenario {scenario.name!r}; "
            "the workload may lack skipped stores or removal never engaged"
        )
    fault = TransientFault(site=scenario.site, target_seq=seq, bit=bit)
    return inject_one(program, fault, config)
