"""Stable content fingerprints for configuration value objects.

Experiment results are cached on disk keyed by *what was simulated*
(:mod:`repro.eval.jobs`), so every configuration object needs a stable,
content-derived identity that survives process restarts — ``hash()`` is
salted per process and ``repr()`` is not guaranteed canonical.

:func:`fingerprint` walks dataclasses (comparison fields only), enums,
tuples/lists, dicts and scalars into a canonical JSON form and hashes
it.  Two configurations fingerprint equal iff they compare equal.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serialisable structure."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        reduced = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.compare
        }
        reduced["__type__"] = type(obj).__name__
        return reduced
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.name]
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items())}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}")


def fingerprint(obj: Any) -> str:
    """A short stable hex digest of ``obj``'s canonical content."""
    blob = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
