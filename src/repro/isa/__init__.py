"""Mini load/store RISC ISA.

A deliberately small, MIPS-flavoured instruction set: 64 general-purpose
registers (``r0`` hardwired to zero), word-granular memory, and the usual
ALU / memory / control-transfer instructions.  The slipstream
microarchitecture only needs a dynamic stream of typed instructions over
registers, memory and branches, so this ISA stands in for the paper's
SimpleScalar/MIPS toolchain (see DESIGN.md, substitution table).
"""

from repro.isa.instructions import (
    Opcode,
    Instruction,
    InstrClass,
    REG_COUNT,
    ZERO_REG,
)
from repro.isa.program import Program, TEXT_BASE, DATA_BASE, WORD_SIZE
from repro.isa.assembler import assemble, AssemblerError
from repro.isa.encoding import encode, decode

__all__ = [
    "Opcode",
    "Instruction",
    "InstrClass",
    "REG_COUNT",
    "ZERO_REG",
    "Program",
    "TEXT_BASE",
    "DATA_BASE",
    "WORD_SIZE",
    "assemble",
    "AssemblerError",
    "encode",
    "decode",
]
