"""Two-pass assembler for the mini RISC ISA.

Syntax example::

    .text
    main:
        addi  r1, r0, 10        # loop counter
    loop:
        add   r2, r2, r1
        addi  r1, r1, -1
        bne   r1, r0, loop
        sw    r2, 0(r10)
        lw    r3, total(r0)     # data labels usable as immediates
        out   r2
        halt

    .data
    total:   .word 0
    table:   .word 1 2 3 4
    scratch: .space 64          # 64 bytes, zero-initialised

Comments run from ``#`` or ``;`` to end of line.  Labels may be used
wherever an immediate or branch target is expected; ``%hi(label)`` and
``%lo(label)`` split an address for LUI/ORI pairs (addresses here fit in
immediates, so plain labels usually suffice).
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from repro.isa.instructions import (
    BRANCH_OPS,
    Instruction,
    MNEMONICS,
    Opcode,
    RRI_OPS,
    RRR_OPS,
    WORD,
)
from repro.isa.program import DATA_BASE, Program, SourceInfo, SourceLoc, TEXT_BASE


class AssemblerError(Exception):
    """Raised on any syntax or semantic error, with line context.

    Structured fields let tooling (the :mod:`repro.analysis` linter, the
    CLI) reuse the location rather than re-parsing the message:

    * ``message`` — the bare description, without location decoration;
    * ``line_no`` — 1-based source line number;
    * ``line`` — the offending source line, verbatim.
    """

    def __init__(self, message: str, line_no: int, line: str):
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.message = message
        self.line_no = line_no
        self.line = line

    @property
    def location(self) -> str:
        """``line N`` rendering, for diagnostics that prefix a file name."""
        return f"line {self.line_no}"


_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_MEM_OPERAND_RE = re.compile(r"^(?P<off>[^()]*)\((?P<base>r\d+)\)$")


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(rest: str) -> List[str]:
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


class _Pass1:
    """First pass: tokenize, lay out segments, collect labels."""

    def __init__(self) -> None:
        self.text: List[Tuple[int, str, str, List[str]]] = []
        self.labels: Dict[str, int] = {}
        self.data: Dict[int, int] = {}
        self._segment = "text"
        self._data_cursor = DATA_BASE

    def feed(self, line_no: int, raw: str) -> None:
        line = _strip_comment(raw)
        if not line:
            return
        # Strip any leading labels (``name:``), which may precede either a
        # directive or an instruction on the same line.
        while not line.startswith("."):
            label, sep, rest = line.partition(":")
            if sep and _LABEL_RE.match(label.strip()):
                self._define_label(line_no, raw, label.strip())
                line = rest.strip()
                if not line:
                    return
            else:
                break
        if line.startswith("."):
            self._directive(line_no, raw, line)
            return
        if self._segment != "text":
            raise AssemblerError("instruction outside .text", line_no, raw)
        mnemonic, _, rest = line.partition(" ")
        self.text.append((line_no, raw, mnemonic.lower(), _split_operands(rest.strip())))

    def _define_label(self, line_no: int, raw: str, label: str) -> None:
        if label in self.labels:
            raise AssemblerError(f"duplicate label {label!r}", line_no, raw)
        if self._segment == "text":
            self.labels[label] = TEXT_BASE + len(self.text) * WORD
        else:
            self.labels[label] = self._data_cursor

    def _directive(self, line_no: int, raw: str, line: str) -> None:
        parts = line.split()
        name = parts[0]
        if name == ".text":
            self._segment = "text"
        elif name == ".data":
            self._segment = "data"
        elif name == ".word":
            if self._segment != "data":
                raise AssemblerError(".word outside .data", line_no, raw)
            for token in parts[1:]:
                self.data[self._data_cursor] = _parse_int(token, line_no, raw)
                self._data_cursor += WORD
        elif name == ".space":
            if self._segment != "data":
                raise AssemblerError(".space outside .data", line_no, raw)
            size = _parse_int(parts[1], line_no, raw)
            if size % WORD:
                raise AssemblerError(".space size must be word multiple", line_no, raw)
            self._data_cursor += size
        elif name == ".align":
            boundary = _parse_int(parts[1], line_no, raw)
            rem = self._data_cursor % boundary
            if rem:
                self._data_cursor += boundary - rem
        else:
            raise AssemblerError(f"unknown directive {name!r}", line_no, raw)


def _parse_int(token: str, line_no: int, raw: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad integer {token!r}", line_no, raw) from None


def _parse_reg(token: str, line_no: int, raw: str) -> int:
    token = token.strip()
    if not token.startswith("r"):
        raise AssemblerError(f"expected register, got {token!r}", line_no, raw)
    try:
        return int(token[1:])
    except ValueError:
        raise AssemblerError(f"bad register {token!r}", line_no, raw) from None


class _Pass2:
    """Second pass: resolve labels, emit instructions."""

    def __init__(self, labels: Dict[str, int]):
        self.labels = labels
        #: Text-segment addresses whose labels were materialised as plain
        #: immediates — the address-taken set for indirect-jump analysis.
        self.address_taken: Set[int] = set()

    def imm(self, token: str, line_no: int, raw: str) -> int:
        """Resolve an immediate operand; label uses are recorded as
        address-taken when they name a text address."""
        token = token.strip()
        if token.startswith("%hi(") and token.endswith(")"):
            return (self._label_or_int(token[4:-1], line_no, raw, taken=True) >> 16) & 0xFFFF
        if token.startswith("%lo(") and token.endswith(")"):
            return self._label_or_int(token[4:-1], line_no, raw, taken=True) & 0xFFFF
        return self._label_or_int(token, line_no, raw, taken=True)

    def target(self, token: str, line_no: int, raw: str) -> int:
        """Resolve a direct branch/jump target (not address-taken: the
        target is structural, encoded in the instruction)."""
        return self._label_or_int(token.strip(), line_no, raw, taken=False)

    def _label_or_int(self, token: str, line_no: int, raw: str,
                      taken: bool = False) -> int:
        token = token.strip()
        if token in self.labels:
            addr = self.labels[token]
            if taken and addr < DATA_BASE:
                self.address_taken.add(addr)
            return addr
        return _parse_int(token, line_no, raw)

    def emit(self, line_no: int, raw: str, mnemonic: str, ops: List[str]) -> Instruction:
        opcode = MNEMONICS.get(mnemonic)
        if opcode is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no, raw)
        try:
            return self._emit(opcode, line_no, raw, ops)
        except (IndexError, ValueError) as exc:
            raise AssemblerError(str(exc) or "malformed operands", line_no, raw) from exc

    def _emit(self, opcode: Opcode, line_no: int, raw: str, ops: List[str]) -> Instruction:
        reg = lambda i: _parse_reg(ops[i], line_no, raw)  # noqa: E731
        if opcode in RRR_OPS:
            return Instruction(opcode, rd=reg(0), rs1=reg(1), rs2=reg(2))
        if opcode in RRI_OPS:
            return Instruction(
                opcode, rd=reg(0), rs1=reg(1), imm=self.imm(ops[2], line_no, raw)
            )
        if opcode is Opcode.LUI:
            return Instruction(opcode, rd=reg(0), imm=self.imm(ops[1], line_no, raw))
        if opcode in (Opcode.LW, Opcode.SW):
            offset, base = self._mem_operand(ops[1], line_no, raw)
            if opcode is Opcode.LW:
                return Instruction(opcode, rd=reg(0), rs1=base, imm=offset)
            return Instruction(opcode, rs2=reg(0), rs1=base, imm=offset)
        if opcode in BRANCH_OPS:
            return Instruction(
                opcode, rs1=reg(0), rs2=reg(1), target=self.target(ops[2], line_no, raw)
            )
        if opcode is Opcode.J:
            return Instruction(opcode, target=self.target(ops[0], line_no, raw))
        if opcode is Opcode.JAL:
            return Instruction(opcode, rd=reg(0), target=self.target(ops[1], line_no, raw))
        if opcode is Opcode.JALR:
            return Instruction(opcode, rd=reg(0), rs1=reg(1))
        if opcode is Opcode.OUT:
            return Instruction(opcode, rs1=reg(0))
        if opcode in (Opcode.NOP, Opcode.HALT):
            if ops:
                raise AssemblerError(f"{opcode.mnemonic} takes no operands", line_no, raw)
            return Instruction(opcode)
        raise AssemblerError(f"unhandled opcode {opcode}", line_no, raw)

    def _mem_operand(self, token: str, line_no: int, raw: str) -> Tuple[int, int]:
        match = _MEM_OPERAND_RE.match(token.strip())
        if not match:
            raise AssemblerError(f"expected offset(base), got {token!r}", line_no, raw)
        base = _parse_reg(match.group("base"), line_no, raw)
        off_text = match.group("off").strip() or "0"
        return self.imm(off_text, line_no, raw), base


def assemble(source: str, name: str = "<anonymous>") -> Program:
    """Assemble source text into a :class:`Program`.

    Raises :class:`AssemblerError` with line context on any error.  The
    resulting program is validated (branch targets inside text, aligned
    data) before being returned.
    """
    pass1 = _Pass1()
    for line_no, raw in enumerate(source.splitlines(), start=1):
        pass1.feed(line_no, raw)
    pass2 = _Pass2(pass1.labels)
    instructions = [
        pass2.emit(line_no, raw, mnemonic, ops)
        for line_no, raw, mnemonic, ops in pass1.text
    ]
    info = SourceInfo(
        locs=tuple(SourceLoc(line_no, raw) for line_no, raw, _, _ in pass1.text),
        address_taken=frozenset(pass2.address_taken),
        data_end=pass1._data_cursor,
    )
    program = Program(
        instructions=instructions, data=dict(pass1.data), labels=dict(pass1.labels),
        name=name, source=info,
    )
    program.validate()
    return program
