"""Binary encoding of instructions.

Instructions encode into a 64-bit word::

    [63:56] opcode ordinal
    [55:50] rd
    [49:44] rs1
    [43:38] rs2
    [37:32] (reserved)
    [31:0]  imm/target (two's complement), imm for ALU/memory ops,
            absolute byte target for control transfers

The encoding exists to give transient faults a concrete bit-level
substrate (a flipped instruction bit decodes to a different instruction
or operand) and to allow property-based round-trip testing.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, Opcode

_OPCODES = list(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}

_IMM_MASK = 0xFFFFFFFF
ENCODING_BITS = 64


def _to_u32(value: int) -> int:
    return value & _IMM_MASK


def _from_u32(value: int) -> int:
    value &= _IMM_MASK
    return value - 0x100000000 if value & 0x80000000 else value


_TARGET_OPS = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU,
     Opcode.BGEU, Opcode.J, Opcode.JAL}
)


def encode(instr: Instruction) -> int:
    """Encode an instruction into its 64-bit representation."""
    imm_field = instr.target if instr.opcode in _TARGET_OPS else instr.imm
    word = (
        (_OPCODE_INDEX[instr.opcode] << 56)
        | (instr.rd << 50)
        | (instr.rs1 << 44)
        | (instr.rs2 << 38)
        | _to_u32(imm_field)
    )
    return word


def decode(word: int) -> Instruction:
    """Decode a 64-bit word back into an instruction.

    Raises ValueError if the opcode field does not name a valid opcode —
    a faulted encoding may be undecodable, which a real machine would
    raise as an illegal-instruction fault.
    """
    opcode_ordinal = (word >> 56) & 0xFF
    if opcode_ordinal >= len(_OPCODES):
        raise ValueError(f"invalid opcode ordinal {opcode_ordinal}")
    opcode = _OPCODES[opcode_ordinal]
    rd = (word >> 50) & 0x3F
    rs1 = (word >> 44) & 0x3F
    rs2 = (word >> 38) & 0x3F
    imm_field = _from_u32(word)
    if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU,
                  Opcode.BGEU, Opcode.J, Opcode.JAL):
        return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, target=imm_field)
    return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm_field)
