"""Instruction definitions for the mini RISC ISA.

The ISA is register-register (load/store) with 64 general-purpose
registers.  Register ``r0`` is hardwired to zero, as in MIPS.  Memory is
word-granular (4-byte words, addresses must be 4-aligned); the slipstream
machinery only ever reasons about whole storage locations, so byte
sub-addressing would add complexity without exercising any additional
code path.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Optional, Tuple

REG_COUNT = 64
ZERO_REG = 0

#: Word size in bytes; PCs advance by this much per instruction.
WORD = 4


class InstrClass(enum.Enum):
    """Coarse functional class, used by the timing model and detectors."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    JUMP_INDIRECT = "jump_indirect"
    HALT = "halt"
    OUT = "out"
    NOP = "nop"


class Opcode(enum.Enum):
    """Every opcode in the ISA.

    The value tuple is ``(mnemonic, instruction class)``.
    """

    # Register-register ALU.
    ADD = ("add", InstrClass.ALU)
    SUB = ("sub", InstrClass.ALU)
    MUL = ("mul", InstrClass.MUL)
    DIV = ("div", InstrClass.DIV)
    REM = ("rem", InstrClass.DIV)
    AND = ("and", InstrClass.ALU)
    OR = ("or", InstrClass.ALU)
    XOR = ("xor", InstrClass.ALU)
    NOR = ("nor", InstrClass.ALU)
    SLL = ("sll", InstrClass.ALU)
    SRL = ("srl", InstrClass.ALU)
    SRA = ("sra", InstrClass.ALU)
    SLT = ("slt", InstrClass.ALU)
    SLTU = ("sltu", InstrClass.ALU)

    # Register-immediate ALU.
    ADDI = ("addi", InstrClass.ALU)
    ANDI = ("andi", InstrClass.ALU)
    ORI = ("ori", InstrClass.ALU)
    XORI = ("xori", InstrClass.ALU)
    SLLI = ("slli", InstrClass.ALU)
    SRLI = ("srli", InstrClass.ALU)
    SRAI = ("srai", InstrClass.ALU)
    SLTI = ("slti", InstrClass.ALU)
    LUI = ("lui", InstrClass.ALU)

    # Memory.
    LW = ("lw", InstrClass.LOAD)
    SW = ("sw", InstrClass.STORE)

    # Control transfer.
    BEQ = ("beq", InstrClass.BRANCH)
    BNE = ("bne", InstrClass.BRANCH)
    BLT = ("blt", InstrClass.BRANCH)
    BGE = ("bge", InstrClass.BRANCH)
    BLTU = ("bltu", InstrClass.BRANCH)
    BGEU = ("bgeu", InstrClass.BRANCH)
    J = ("j", InstrClass.JUMP)
    JAL = ("jal", InstrClass.JUMP)
    JALR = ("jalr", InstrClass.JUMP_INDIRECT)

    # Miscellaneous.
    NOP = ("nop", InstrClass.NOP)
    HALT = ("halt", InstrClass.HALT)
    OUT = ("out", InstrClass.OUT)

    @property
    def mnemonic(self) -> str:
        return self.value[0]

    @property
    def klass(self) -> InstrClass:
        return self.value[1]


#: Opcodes looked up by mnemonic, for the assembler.
MNEMONICS = {op.mnemonic: op for op in Opcode}

#: Register-register ALU opcodes (rd, rs1, rs2).
RRR_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.REM,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.NOR,
        Opcode.SLL,
        Opcode.SRL,
        Opcode.SRA,
        Opcode.SLT,
        Opcode.SLTU,
    }
)

#: Register-immediate ALU opcodes (rd, rs1, imm).
RRI_OPS = frozenset(
    {
        Opcode.ADDI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SLLI,
        Opcode.SRLI,
        Opcode.SRAI,
        Opcode.SLTI,
    }
)

#: Conditional branch opcodes (rs1, rs2, target).
BRANCH_OPS = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU}
)


@dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    Fields not meaningful for an opcode are left at their defaults.  The
    ``target`` of control transfers is an absolute byte PC (labels are
    resolved by the assembler).

    Derived classification (``klass``, ``is_branch``, ``is_control``,
    ``is_load``, ``is_store``) and the register-usage tuples are
    precomputed once at construction and stored as plain attributes:
    static instructions are few, dynamic accesses are millions, and the
    property/frozenset-membership chains they replace dominated the
    simulator's hot-path profile.  The cached attributes do not
    participate in equality, hashing or ``repr``.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = 0

    # Cached classification, set in __post_init__ (not dataclass fields).
    klass: InstrClass = dataclasses.field(init=False, repr=False, compare=False)
    is_branch: bool = dataclasses.field(init=False, repr=False, compare=False)
    is_control: bool = dataclasses.field(init=False, repr=False, compare=False)
    is_load: bool = dataclasses.field(init=False, repr=False, compare=False)
    is_store: bool = dataclasses.field(init=False, repr=False, compare=False)
    srcs: Tuple[int, ...] = dataclasses.field(init=False, repr=False, compare=False)
    dest: Optional[int] = dataclasses.field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            reg = getattr(self, name)
            if not 0 <= reg < REG_COUNT:
                raise ValueError(f"{name}={reg} out of range 0..{REG_COUNT - 1}")
        setattr_ = object.__setattr__
        op = self.opcode
        klass = op.value[1]
        setattr_(self, "klass", klass)
        setattr_(self, "is_branch", op in BRANCH_OPS)
        setattr_(
            self,
            "is_control",
            klass in (InstrClass.BRANCH, InstrClass.JUMP, InstrClass.JUMP_INDIRECT),
        )
        setattr_(self, "is_load", klass is InstrClass.LOAD)
        setattr_(self, "is_store", klass is InstrClass.STORE)
        setattr_(self, "srcs", self._compute_srcs())
        setattr_(self, "dest", self._compute_dest())

    def _compute_dest(self) -> Optional[int]:
        op = self.opcode
        if op in RRR_OPS or op in RRI_OPS or op in (Opcode.LUI, Opcode.LW):
            return self.rd if self.rd != ZERO_REG else None
        if op in (Opcode.JAL, Opcode.JALR):
            return self.rd if self.rd != ZERO_REG else None
        return None

    def _compute_srcs(self) -> Tuple[int, ...]:
        op = self.opcode
        if op in RRR_OPS:
            return (self.rs1, self.rs2)
        if op in RRI_OPS:
            return (self.rs1,)
        if op is Opcode.LUI:
            return ()
        if op is Opcode.LW:
            return (self.rs1,)
        if op is Opcode.SW:
            return (self.rs1, self.rs2)
        if op in BRANCH_OPS:
            return (self.rs1, self.rs2)
        if op is Opcode.JALR:
            return (self.rs1,)
        if op is Opcode.OUT:
            return (self.rs1,)
        return ()

    def dest_reg(self) -> Optional[int]:
        """The destination register, or None if the instruction writes none.

        Writes to ``r0`` are architecturally discarded and reported as None.
        """
        return self.dest

    def src_regs(self) -> Tuple[int, ...]:
        """Source registers read by this instruction (r0 included)."""
        return self.srcs

    def format(self) -> str:
        """Render back to assembly text."""
        op = self.opcode
        m = op.mnemonic
        if op in RRR_OPS:
            return f"{m} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if op in RRI_OPS:
            return f"{m} r{self.rd}, r{self.rs1}, {self.imm}"
        if op is Opcode.LUI:
            return f"{m} r{self.rd}, {self.imm}"
        if op is Opcode.LW:
            return f"{m} r{self.rd}, {self.imm}(r{self.rs1})"
        if op is Opcode.SW:
            return f"{m} r{self.rs2}, {self.imm}(r{self.rs1})"
        if op in BRANCH_OPS:
            return f"{m} r{self.rs1}, r{self.rs2}, {self.target:#x}"
        if op is Opcode.J:
            return f"{m} {self.target:#x}"
        if op is Opcode.JAL:
            return f"{m} r{self.rd}, {self.target:#x}"
        if op is Opcode.JALR:
            return f"{m} r{self.rd}, r{self.rs1}"
        if op is Opcode.OUT:
            return f"{m} r{self.rs1}"
        return m

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()
