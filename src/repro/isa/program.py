"""Program container: text segment, data segment, labels.

PCs are byte addresses; instructions occupy 4 bytes each starting at
``TEXT_BASE``.  Data lives at ``DATA_BASE`` and is word-granular.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode, WORD

TEXT_BASE = 0x1000
DATA_BASE = 0x100000
WORD_SIZE = WORD


@dataclass(frozen=True)
class SourceLoc:
    """Source location of one assembled instruction."""

    line_no: int
    text: str


@dataclass(frozen=True)
class SourceInfo:
    """Assembly-time provenance, attached to :class:`Program` by the
    assembler.

    The static-analysis subsystem (:mod:`repro.analysis`) consumes this:
    diagnostics point at source lines, lint suppressions live in source
    comments, and ``address_taken`` / ``data_end`` bound what indirect
    jumps and static memory references may legally touch.

    Attributes:
        locs: per-instruction source locations, aligned with
            ``Program.instructions``.
        address_taken: text-segment byte addresses whose labels were used
            as *plain immediates* (not branch/jump targets) — the only
            code addresses a program can materialise into a register and
            later reach via ``jalr``.
        data_end: first byte address past the laid-out data segment
            (``.word``/``.space``/``.align`` cursor at end of assembly).
    """

    locs: Tuple[SourceLoc, ...] = ()
    address_taken: FrozenSet[int] = frozenset()
    data_end: int = DATA_BASE

    def loc_of(self, index: int) -> Optional[SourceLoc]:
        if 0 <= index < len(self.locs):
            return self.locs[index]
        return None


@dataclass
class Program:
    """An assembled program.

    Attributes:
        instructions: static instructions in text-segment order.
        data: initial memory image, keyed by byte address (word-aligned).
        labels: label name -> byte PC (text) or byte address (data).
        name: human-readable program name (used in reports).
    """

    instructions: List[Instruction] = field(default_factory=list)
    data: Dict[int, int] = field(default_factory=dict)
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = "<anonymous>"
    #: Assembly provenance (source lines, address-taken labels, data
    #: extent); None for hand-constructed programs.  Not part of program
    #: identity.
    source: Optional[SourceInfo] = field(default=None, compare=False, repr=False)

    @property
    def entry(self) -> int:
        """Entry PC: the ``main`` label if present, else the text base."""
        return self.labels.get("main", TEXT_BASE)

    def pc_of(self, index: int) -> int:
        return TEXT_BASE + index * WORD

    def index_of(self, pc: int) -> int:
        index, rem = divmod(pc - TEXT_BASE, WORD)
        if rem or not 0 <= index < len(self.instructions):
            raise IndexError(f"PC {pc:#x} outside text segment")
        return index

    def at(self, pc: int) -> Instruction:
        """Fetch the instruction at a byte PC."""
        return self.instructions[self.index_of(pc)]

    def contains_pc(self, pc: int) -> bool:
        index, rem = divmod(pc - TEXT_BASE, WORD)
        return rem == 0 and 0 <= index < len(self.instructions)

    def data_end(self) -> int:
        """First byte address past the data segment.

        Prefers the assembler's layout cursor (which covers ``.space``
        reservations that leave no entries in ``data``); falls back to
        the highest initialised word for hand-constructed programs.
        """
        if self.source is not None:
            return self.source.data_end
        if self.data:
            return max(self.data) + WORD
        return DATA_BASE

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        """Disassembly listing with PCs, for debugging."""
        by_pc: Dict[int, List[str]] = {}
        for label, addr in self.labels.items():
            by_pc.setdefault(addr, []).append(label)
        lines = []
        for i, instr in enumerate(self.instructions):
            pc = self.pc_of(i)
            for label in by_pc.get(pc, []):
                lines.append(f"{label}:")
            lines.append(f"  {pc:#08x}  {instr.format()}")
        return "\n".join(lines)

    def validate(self) -> None:
        """Check structural invariants; raise ValueError on violation.

        * every control-transfer target (except indirect jumps) lands on a
          text-segment instruction boundary;
        * data addresses are word-aligned and inside the data segment.
        """
        for i, instr in enumerate(self.instructions):
            if instr.is_control and instr.opcode is not Opcode.JALR:
                if not self.contains_pc(instr.target):
                    raise ValueError(
                        f"instruction {i} ({instr.format()}) targets "
                        f"{instr.target:#x}, outside the text segment"
                    )
        for addr in self.data:
            if addr % WORD:
                raise ValueError(f"data address {addr:#x} not word-aligned")
            if addr < DATA_BASE:
                raise ValueError(f"data address {addr:#x} below DATA_BASE")
