"""Observability layer for the slipstream co-simulation.

The paper's evaluation (§4–§5) is driven entirely by internal rates —
removal fractions, IR-misp/1000, delay-buffer backpressure, recovery
penalties — and slip/recovery dynamics are only debuggable with
per-event visibility.  This package provides that visibility without
perturbing the simulation:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  histograms components register into;
* :class:`~repro.obs.trace.TraceWriter` — a structured JSONL event
  trace (predictions, removals by kind, IR-misprediction recovery
  spans, delay-buffer occupancy/backpressure, cache tallies, branch
  redirects, R-stream merge stalls);
* :class:`~repro.obs.report.RunReport` — the per-job aggregation
  attached to eval job records and folded into ``BENCH_runner.json``;
* ``python -m repro.obs`` — summarize, diff and validate traces.

**Behavior-neutrality contract** (DESIGN.md §7.6): instrumentation only
observes.  Simulation results are bit-identical with tracing on or off,
and the disabled path costs a single ``if obs is not None`` test per
trace.  Enable with ``REPRO_OBS=1`` (metrics + reports) and
``REPRO_OBS_TRACE_DIR=DIR`` (JSONL traces, implies the former).
"""

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import RunReport, build_report, diff_reports
from repro.obs.session import (
    ENV_ENABLE,
    ENV_TRACE_DIR,
    Observability,
    for_path,
    job_observability,
    obs_enabled,
    sanitize_label,
    trace_dir,
)
from repro.obs.trace import (
    EVENT_FIELDS,
    TraceSchemaError,
    TraceWriter,
    iter_trace,
    read_trace,
    summarize_events,
    validate_event,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunReport",
    "build_report",
    "diff_reports",
    "ENV_ENABLE",
    "ENV_TRACE_DIR",
    "Observability",
    "for_path",
    "job_observability",
    "obs_enabled",
    "sanitize_label",
    "trace_dir",
    "EVENT_FIELDS",
    "TraceSchemaError",
    "TraceWriter",
    "iter_trace",
    "read_trace",
    "summarize_events",
    "validate_event",
    "validate_trace",
]
