"""Trace tooling:  python -m repro.obs {summarize,diff,validate} ...

* ``summarize TRACE...`` — per-file event counts by type and the final
  summary counters (the same numbers a :class:`repro.obs.RunReport`
  carries).
* ``diff A B`` — counter-by-counter comparison of two runs' traces:
  what changed, by how much.  Two runs of the same job under the same
  code diff empty — the determinism check.
* ``validate TRACE...`` — schema validation only; exits non-zero on the
  first malformed file (used by CI).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval.reporting import render_counter_table, render_table
from repro.obs.trace import (
    TraceSchemaError,
    iter_trace,
    summarize_events,
    validate_trace,
)


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, diff and validate JSONL event traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="event counts + final counters")
    p_sum.add_argument("traces", nargs="+", metavar="TRACE")
    p_diff = sub.add_parser("diff", help="compare two traces' counters")
    p_diff.add_argument("trace_a", metavar="A")
    p_diff.add_argument("trace_b", metavar="B")
    p_val = sub.add_parser("validate", help="schema-validate traces")
    p_val.add_argument("traces", nargs="+", metavar="TRACE")
    return parser.parse_args(argv)


def _summary_of(path: str) -> dict:
    return summarize_events(iter_trace(path))


def cmd_summarize(paths: List[str]) -> int:
    for path in paths:
        summary = _summary_of(path)
        title = (f"{path} — {summary['model'] or '?'}/"
                 f"{summary['benchmark'] or '?'} "
                 f"({summary['events']} events)")
        rows = [{"event": etype, "count": count}
                for etype, count in sorted(summary["by_type"].items())]
        print(render_table(rows, columns=["event", "count"], title=title))
        if summary["counters"]:
            print()
            print(render_counter_table(summary["counters"],
                                       title="final counters"))
        print()
    return 0


def cmd_diff(path_a: str, path_b: str) -> int:
    sum_a = _summary_of(path_a)
    sum_b = _summary_of(path_b)
    rows = []
    for etype in sorted(set(sum_a["by_type"]) | set(sum_b["by_type"])):
        ca = sum_a["by_type"].get(etype, 0)
        cb = sum_b["by_type"].get(etype, 0)
        if ca != cb:
            rows.append({"what": f"events.{etype}", "a": ca, "b": cb,
                         "delta": cb - ca})
    counters_a = sum_a["counters"]
    counters_b = sum_b["counters"]
    for name in sorted(set(counters_a) | set(counters_b)):
        va = counters_a.get(name, 0)
        vb = counters_b.get(name, 0)
        if va != vb:
            rows.append({"what": name, "a": va, "b": vb,
                         "delta": round(vb - va, 6)})
    if not rows:
        print(f"identical: {path_a} == {path_b} "
              f"({sum_a['events']} events each)")
        return 0
    print(render_table(rows, columns=["what", "a", "b", "delta"],
                       title=f"diff {path_a} -> {path_b}",
                       float_format="{:.4f}"))
    return 1


def cmd_validate(paths: List[str]) -> int:
    for path in paths:
        try:
            count = validate_trace(path)
        except (OSError, TraceSchemaError) as exc:
            print(f"INVALID {path}: {exc}", file=sys.stderr)
            return 2
        print(f"ok {path}: {count} events")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    if args.command == "summarize":
        return cmd_summarize(args.traces)
    if args.command == "diff":
        return cmd_diff(args.trace_a, args.trace_b)
    return cmd_validate(args.traces)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... | head`
        sys.exit(0)
