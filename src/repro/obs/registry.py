"""Metrics registry: counters, gauges and histograms for the co-sim.

The registry is the *aggregate* half of the observability layer
(:mod:`repro.obs`): components register named instruments and bump them
at trace granularity; the registry's :meth:`MetricsRegistry.snapshot`
is what :class:`repro.obs.report.RunReport` serialises.

Design constraints (DESIGN.md §7.6):

* **behavior-neutral** — instruments only ever observe; nothing in the
  simulation reads them back;
* **near-zero overhead when disabled** — components hold an optional
  ``Observability`` handle and guard every emission with a single
  ``if obs is not None`` test, so the disabled path costs one pointer
  comparison per *trace* (never per instruction);
* **deterministic** — no wall-clock, no randomness: snapshots of two
  identical runs compare equal, which is what makes trace diffs
  (``python -m repro.obs diff``) meaningful.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (powers of two): wide enough
#: for cycle counts and occupancies without per-metric tuning.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(float(1 << i) for i in range(0, 17, 2))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def set(self, value: Number) -> None:
        """Overwrite the count (used to fold in a component's own
        already-maintained tally at end of run)."""
        self.value = value


class Gauge:
    """A point-in-time value, with its observed extremes."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.updates = 0

    def set(self, value: Number) -> None:
        self.value = value
        self.updates += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value


class Histogram:
    """A fixed-bucket distribution (cumulative counts per upper bound)."""

    __slots__ = ("name", "bounds", "counts", "count", "total", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds: List[float] = sorted(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: float = 0.0
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "mean": round(self.mean, 4),
            "max": self.max if self.max is not None else 0,
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    Instrument kinds share one namespace: asking for an existing name
    with a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def set_counters(self, values: Dict[str, Number], prefix: str = "") -> None:
        """Fold a component's own tallies in as counters, at end of run."""
        for key, value in values.items():
            self.counter(prefix + key).set(value)

    def snapshot(self) -> Dict[str, Number]:
        """Flat, deterministic (sorted-key) view of every instrument.

        Counters appear under their own name; gauges add ``.min`` /
        ``.max`` / ``.last``; histograms add ``.count`` / ``.mean`` /
        ``.max``.  Values are plain ints/floats — JSON-ready.
        """
        out: Dict[str, Number] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[f"{name}.last"] = instrument.value
                out[f"{name}.min"] = instrument.min if instrument.min is not None else 0
                out[f"{name}.max"] = instrument.max if instrument.max is not None else 0
            elif isinstance(instrument, Histogram):
                for key, value in instrument.summary().items():
                    out[f"{name}.{key}"] = value
        return out


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]
