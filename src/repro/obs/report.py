"""RunReport: the per-job aggregation of one observed simulation.

A :class:`RunReport` is attached to every eval job record when
observability is enabled (:mod:`repro.eval.runner`) and folded into
``BENCH_runner.json`` (:mod:`repro.eval.profiling`).  Its counters are
drawn from the run's metrics registry, which the instrumented
components populate from the *same* tallies the experiment results
expose — by construction, ``ir_mispredictions``, ``removal_fraction``
and ``delay_buffer_backpressure`` in a report equal the values of the
:class:`~repro.core.slipstream.SlipstreamResult` the experiments
already compute (tested in ``tests/test_obs.py``).

Reports are duck-typed over the result object, not imported from the
model modules, so :mod:`repro.obs` stays dependency-free of the
simulators it observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.obs.session import Observability

Number = Union[int, float]


@dataclass
class RunReport:
    """Aggregated observability of one simulation job."""

    job: str
    model: str
    benchmark: str
    counters: Dict[str, Number] = field(default_factory=dict)
    events: int = 0
    trace_path: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "job": self.job,
            "model": self.model,
            "benchmark": self.benchmark,
            "counters": dict(self.counters),
            "events": self.events,
            "trace_path": self.trace_path,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RunReport":
        return cls(
            job=payload["job"],
            model=payload["model"],
            benchmark=payload["benchmark"],
            counters=dict(payload.get("counters", {})),
            events=int(payload.get("events", 0)),
            trace_path=payload.get("trace_path"),
        )


def _result_counters(model: str, result: object) -> Dict[str, Number]:
    """Counters derivable from the result object itself (no registry).

    Used as the floor of every report so that metrics-only mode (and
    job models without deep instrumentation) still report the headline
    rates the experiments consume.
    """
    counters: Dict[str, Number] = {}
    if isinstance(result, int):  # "count" jobs
        counters["instructions"] = result
        return counters
    for name in ("retired", "cycles", "a_cycles", "r_cycles", "a_executed",
                 "a_removed", "branch_mispredictions", "ir_mispredictions",
                 "ir_penalty_total", "delay_buffer_backpressure",
                 "icache_misses", "dcache_misses", "icache_accesses",
                 "dcache_accesses", "recovery_max_outstanding",
                 "recovery_audit_shortfalls"):
        value = getattr(result, name, None)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            counters[name] = value
    for name in ("ipc", "removal_fraction", "ir_mispredictions_per_1000",
                 "mispredictions_per_1000", "avg_ir_penalty", "coverage"):
        value = getattr(result, name, None)
        if isinstance(value, float):
            counters[name] = value
    removed = getattr(result, "removed_by_category", None)
    if isinstance(removed, dict):
        for category, count in sorted(removed.items()):
            counters[f"removed.{category}"] = count
    detections = getattr(result, "detections", None)
    if isinstance(detections, dict):
        for kind, count in sorted(detections.items()):
            counters[f"detected.{kind}"] = count
    return counters


def build_report(
    job: str,
    model: str,
    benchmark: str,
    result: object,
    obs: Optional[Observability] = None,
) -> RunReport:
    """Fold the result's own rates and the registry snapshot together."""
    counters = _result_counters(model, result)
    events = 0
    trace_path: Optional[str] = None
    if obs is not None:
        counters.update(obs.registry.snapshot())
        events = obs.events
        # The writer opens its file lazily: a job that emitted nothing
        # (e.g. an uninstrumented "count" job) has no trace on disk, so
        # don't point readers at a file that does not exist.
        if events and obs.trace_path is not None:
            trace_path = str(obs.trace_path)
    return RunReport(
        job=job,
        model=model,
        benchmark=benchmark,
        counters=counters,
        events=events,
        trace_path=trace_path,
    )


def diff_reports(a: RunReport, b: RunReport) -> Dict[str, Dict[str, Number]]:
    """Per-counter ``{a, b, delta}`` for every counter present in either."""
    out: Dict[str, Dict[str, Number]] = {}
    for name in sorted(set(a.counters) | set(b.counters)):
        va = a.counters.get(name, 0)
        vb = b.counters.get(name, 0)
        if va != vb:
            out[name] = {"a": va, "b": vb, "delta": vb - va}
    return out


__all__ = ["RunReport", "build_report", "diff_reports"]
