"""The per-run observability handle and its environment configuration.

One :class:`Observability` couples a :class:`~repro.obs.registry.MetricsRegistry`
with an optional :class:`~repro.obs.trace.TraceWriter`.  Components take
it as an optional constructor argument (``obs=None``) and guard every
emission with ``if obs is not None`` — the contract that keeps the
disabled path at one pointer test per trace.

Process-wide enablement is environment-driven so that
``ProcessPoolExecutor`` workers inherit it:

* ``REPRO_OBS=1`` — enable metrics + :class:`~repro.obs.report.RunReport`
  aggregation for every eval job;
* ``REPRO_OBS_TRACE_DIR=DIR`` — additionally write one JSONL event
  trace per job under ``DIR`` (implies ``REPRO_OBS=1``).

:func:`job_observability` is the factory :mod:`repro.eval.jobs` calls:
it returns ``None`` when disabled, so simulation code never pays more
than the ``None`` test.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Optional, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceWriter

ENV_ENABLE = "REPRO_OBS"
ENV_TRACE_DIR = "REPRO_OBS_TRACE_DIR"


class Observability:
    """Metrics registry + optional event trace for one simulation run."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 trace: Optional[TraceWriter] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace

    # Registry pass-throughs (the common component surface).
    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str):
        return self.registry.gauge(name)

    def histogram(self, name: str, bounds=None):
        if bounds is None:
            return self.registry.histogram(name)
        return self.registry.histogram(name, bounds)

    def emit(self, etype: str, **fields) -> None:
        """Write one trace event (no-op without a trace sink)."""
        if self.trace is not None:
            self.trace.emit(etype, **fields)

    @property
    def events(self) -> int:
        return self.trace.events if self.trace is not None else 0

    @property
    def trace_path(self) -> Optional[Path]:
        return self.trace.path if self.trace is not None else None

    def close(self) -> None:
        if self.trace is not None:
            self.trace.close()


def obs_enabled() -> bool:
    """True when the environment asks for observability."""
    if os.environ.get(ENV_ENABLE, "") not in ("", "0"):
        return True
    return bool(os.environ.get(ENV_TRACE_DIR))


def trace_dir() -> Optional[Path]:
    """The configured trace directory, or None for metrics-only mode."""
    value = os.environ.get(ENV_TRACE_DIR)
    return Path(value) if value else None


def sanitize_label(label: str) -> str:
    """A job label as a safe file stem (``cmp/li@1[BR]#ab`` → ``cmp-li@1-BR-ab``)."""
    return re.sub(r"[^A-Za-z0-9_.@-]+", "-", label).strip("-")


def job_observability(label: str) -> Optional[Observability]:
    """The environment-configured handle for one job, or None."""
    if not obs_enabled():
        return None
    writer: Optional[TraceWriter] = None
    directory = trace_dir()
    if directory is not None:
        writer = TraceWriter(directory / f"{sanitize_label(label)}.jsonl")
    return Observability(trace=writer)


def for_path(path: Union[str, Path]) -> Observability:
    """An explicitly-enabled handle tracing to ``path`` (tests, CLI)."""
    return Observability(trace=TraceWriter(path))


__all__ = [
    "ENV_ENABLE",
    "ENV_TRACE_DIR",
    "Observability",
    "for_path",
    "job_observability",
    "obs_enabled",
    "sanitize_label",
    "trace_dir",
]
