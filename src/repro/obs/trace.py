"""Structured JSONL event trace of one simulation run.

Every line is one JSON object ("event") with two universal fields —
``t`` (event type) and ``i`` (0-based emission index) — plus the
type-specific fields of :data:`EVENT_FIELDS`.  Events are emitted at
trace granularity by the instrumented components (slip/recovery
dynamics are only debuggable with per-event visibility; AR-SMT made the
same observation for its delay-buffer dynamics), and the emission order
is deterministic: two runs of the same job produce byte-identical
traces.

The schema is deliberately open: validators check that the *required*
fields of each known type are present and that unknown types are not
emitted; extra fields are allowed so events can grow without breaking
old readers.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Union

#: Required fields per event type (beyond the universal ``t`` and ``i``).
EVENT_FIELDS: Dict[str, FrozenSet[str]] = {
    # Run lifecycle.
    "start": frozenset({"benchmark", "model"}),
    "summary": frozenset({"counters"}),
    # A-stream front end: one per predicted trace.
    "predict": frozenset({"seq", "pc", "predicted", "removal"}),
    # Instruction removal actually applied to a trace (per-kind counts).
    "removal": frozenset({"seq", "removed", "by_kind"}),
    # Conventional branch misprediction -> fetch redirect.
    "redirect": frozenset({"seq", "stream"}),
    # Delay-buffer backpressure: the A-stream stalled for the R-stream.
    "backpressure": frozenset({"seq", "occupancy", "stall_cycles"}),
    # One trace retired (R-stream in the CMP, the whole core in SS runs;
    # the slipstream emitter adds a_cycle/r_cycle/occupancy/merge_stalls).
    "trace_retired": frozenset({"seq", "retired"}),
    # IR-misprediction detection + recovery span.
    "recovery": frozenset({"seq", "kind", "detect_cycle", "latency",
                           "resume_cycle", "mem_restored"}),
    # End-of-run cache tallies (one per cache).
    "cache": frozenset({"cache", "accesses", "misses"}),
}


class TraceSchemaError(ValueError):
    """An event (or a whole trace file) violates the schema."""


def validate_event(event: dict) -> None:
    """Raise :class:`TraceSchemaError` unless ``event`` is well-formed."""
    if not isinstance(event, dict):
        raise TraceSchemaError(f"event is not an object: {event!r}")
    etype = event.get("t")
    if etype not in EVENT_FIELDS:
        raise TraceSchemaError(f"unknown event type {etype!r}")
    if not isinstance(event.get("i"), int):
        raise TraceSchemaError(f"event missing integer index 'i': {event!r}")
    missing = EVENT_FIELDS[etype] - event.keys()
    if missing:
        raise TraceSchemaError(
            f"{etype!r} event missing fields {sorted(missing)}: {event!r}"
        )


class TraceWriter:
    """Append-only JSONL emitter.

    ``sink`` is a path (opened lazily, truncated) or any text stream.
    Events are validated at emission — a malformed event is a bug in the
    instrumentation, not something to discover when reading the trace.
    """

    def __init__(self, sink: Union[str, Path, io.TextIOBase]):
        self._path: Optional[Path] = None
        self._stream: Optional[io.TextIOBase] = None
        if isinstance(sink, (str, Path)):
            self._path = Path(sink)
        else:
            self._stream = sink
        self.events = 0

    @property
    def path(self) -> Optional[Path]:
        return self._path

    def emit(self, etype: str, **fields) -> None:
        event = {"t": etype, "i": self.events, **fields}
        validate_event(event)
        if self._stream is None:
            assert self._path is not None
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self._path, "w", encoding="utf-8")
        self._stream.write(json.dumps(event, sort_keys=True) + "\n")
        self.events += 1

    def close(self) -> None:
        if self._stream is not None and self._path is not None:
            self._stream.close()
            self._stream = None


def iter_trace(path: Union[str, Path]) -> Iterator[dict]:
    """Yield events from a JSONL trace file, validating each line."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                raise TraceSchemaError(
                    f"{path}:{line_no}: not JSON: {exc}"
                ) from None
            try:
                validate_event(event)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{line_no}: {exc}") from None
            yield event


def read_trace(path: Union[str, Path]) -> List[dict]:
    """All events of a trace file (validated)."""
    return list(iter_trace(path))


def validate_trace(path: Union[str, Path]) -> int:
    """Validate a whole file; returns the event count.

    Also checks the emission index is contiguous from zero — a gap means
    a lost line (truncated write).
    """
    count = 0
    for event in iter_trace(path):
        if event["i"] != count:
            raise TraceSchemaError(
                f"{path}: event index {event['i']} != expected {count} "
                "(truncated or interleaved trace)"
            )
        count += 1
    return count


def summarize_events(events: Iterable[dict]) -> Dict[str, object]:
    """Aggregate view of one trace: per-type counts plus the final
    ``summary`` event's counters (if present)."""
    by_type: Dict[str, int] = {}
    counters: Dict[str, object] = {}
    benchmark = model = None
    for event in events:
        by_type[event["t"]] = by_type.get(event["t"], 0) + 1
        if event["t"] == "start":
            benchmark = event.get("benchmark")
            model = event.get("model")
        elif event["t"] == "summary":
            counters = event.get("counters", {})
    return {
        "benchmark": benchmark,
        "model": model,
        "events": sum(by_type.values()),
        "by_type": by_type,
        "counters": counters,
    }


__all__ = [
    "EVENT_FIELDS",
    "TraceSchemaError",
    "TraceWriter",
    "iter_trace",
    "read_trace",
    "validate_trace",
    "summarize_events",
    "validate_event",
]
