"""Trace selection and prediction.

The paper builds its IR-predictor on a conventional path-based trace
predictor [Jacobson, Rotenberg, Smith; MICRO-30].  This package provides:

* a *static trace selection policy* (:mod:`repro.trace.selection`) that
  chunks the dynamic instruction stream into traces of up to 32
  instructions with embedded conditional branches;
* canonical trace identifiers (:mod:`repro.trace.trace_id`): start PC
  plus embedded branch outcomes;
* the hybrid trace predictor (:mod:`repro.trace.predictor`): a correlated
  table indexed by a hash of the recent path history (favouring recent
  trace ids) plus a simple table indexed by the most recent trace id
  only, each entry guarded by a 2-bit replacement counter.
"""

from repro.trace.trace_id import TraceId
from repro.trace.selection import TraceSelector, StaticTraceWalker, TRACE_LENGTH
from repro.trace.predictor import TracePredictor, TracePredictorConfig

__all__ = [
    "TraceId",
    "TraceSelector",
    "StaticTraceWalker",
    "TRACE_LENGTH",
    "TracePredictor",
    "TracePredictorConfig",
]
