"""Comparison of trace predictions against actual traces.

Determines, for each actual trace, whether the front end's prediction
was correct and — if not — at which instruction the redirect anchors.
All three processor models charge branch mispredictions this way, so the
comparison lives in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.instructions import InstrClass
from repro.trace.selection import CompletedTrace
from repro.trace.trace_id import TraceId


@dataclass(frozen=True)
class Divergence:
    """Where a trace prediction went wrong.

    kind:
        ``"boundary"`` — the predicted trace starts at the wrong PC; the
        redirect anchors at the *previous* trace's last instruction
        (``index == -1``).
        ``"outcome"`` — an embedded branch outcome is wrong; ``index``
        is the offending instruction's position within the actual trace.
    """

    kind: str
    index: int


def first_divergence(
    predicted: Optional[TraceId], actual: CompletedTrace
) -> Optional[Divergence]:
    """First point at which ``predicted`` diverges from ``actual``.

    With no prediction (cold predictor), the front end falls back to
    not-taken/sequential fetch with BTB-predicted direct jumps: the
    first taken conditional branch or indirect jump diverges.

    Returns None if the prediction matches the actual trace completely.
    """
    if predicted is None:
        return _fallback_divergence(actual)
    if predicted.start_pc != actual.start_pc:
        return Divergence("boundary", -1)
    outcomes = predicted.outcomes
    position = 0
    for index, dyn in enumerate(actual.instructions):
        if not dyn.is_branch:
            continue
        if position >= len(outcomes) or outcomes[position] != dyn.taken:
            return Divergence("outcome", index)
        position += 1
    return None


def _fallback_divergence(actual: CompletedTrace) -> Optional[Divergence]:
    for index, dyn in enumerate(actual.instructions):
        if dyn.is_branch and dyn.taken:
            return Divergence("outcome", index)
        if dyn.instr.klass is InstrClass.JUMP_INDIRECT:
            return Divergence("outcome", index)
    return None
