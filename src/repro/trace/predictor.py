"""Hybrid path-based trace predictor (paper, section 2.1.1; [13]).

Two tables predict the id of the *next* trace from the sequence of past
trace ids:

* **correlated table** — indexed by a hash of the last
  ``path_depth`` (default 8) trace ids, with a hash function that
  favours bits from more recent trace ids over less recent ones.  Each
  entry holds a predicted trace id and a 2-bit counter for replacement.
* **simple table** — indexed by the most recent trace id only.  It
  learns faster and suffers less aliasing pressure, and serves as the
  fallback when the correlated entry is missing or unproven.

Both tables are updated with the actual next trace at every trace
boundary: a correct entry increments its counter (saturating), an
incorrect entry decrements and is replaced when the counter reaches
zero.

To form the slipstream IR-predictor, three pieces of information are
added *to each table entry* (paper, section 2.1.1): the
instruction-removal bit vector, intermediate-PC information (implicit
in this model — see :mod:`repro.core.ir_predictor`), and a resetting
confidence counter.  Keeping removal state on the predictor entry is
load-bearing: when a path context is unstable (the entry's trace id
keeps flipping), the removal confidence resets with it, so instructions
are never removed along unreliable paths.  The
:class:`~repro.core.ir_predictor.IRPredictor` manages those fields; the
entry type here just carries them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, NamedTuple, Optional, Tuple

from repro.trace.trace_id import TraceId


@dataclass(frozen=True)
class TracePredictorConfig:
    """Sizing knobs; defaults follow the paper's Table 2.

    Frozen (hashable): configurations are part of experiment-cache keys
    (:mod:`repro.eval.jobs`), so they must be immutable value objects.
    """

    index_bits: int = 16
    path_depth: int = 8
    counter_max: int = 3

    @property
    def table_size(self) -> int:
        return 1 << self.index_bits


class Entry:
    """One prediction-table entry.

    ``trace_id``/``counter`` implement the conventional trace predictor.
    ``removal_tid``/``ir_vec``/``kinds``/``confidence`` are the
    IR-predictor extension (written by
    :class:`repro.core.ir_predictor.IRPredictor`).
    """

    __slots__ = ("trace_id", "counter", "removal_tid", "ir_vec", "kinds",
                 "confidence")

    def __init__(self) -> None:
        self.trace_id: Optional[TraceId] = None
        self.counter = 0
        self.removal_tid: Optional[TraceId] = None
        self.ir_vec: Optional[Tuple[bool, ...]] = None
        self.kinds = None
        self.confidence = 0


class Lookup(NamedTuple):
    """A prediction plus the entry that produced it."""

    trace_id: Optional[TraceId]
    entry: Optional[Entry]


class _Table:
    """One prediction table with saturating replacement counters."""

    def __init__(self, size: int, counter_max: int):
        self._entries: List[Optional[Entry]] = [None] * size
        self._counter_max = counter_max

    def lookup(self, index: int) -> Optional[Entry]:
        return self._entries[index]

    def update(self, index: int, actual: TraceId) -> Entry:
        entry = self._entries[index]
        if entry is None:
            entry = Entry()
            self._entries[index] = entry
        if entry.trace_id == actual:
            entry.counter = min(entry.counter + 1, self._counter_max)
        else:
            entry.counter -= 1
            if entry.counter <= 0 or entry.trace_id is None:
                entry.trace_id = actual
                entry.counter = 0
        return entry


class TracePredictor:
    """Predicts the next trace id from the path history of past traces."""

    def __init__(self, config: Optional[TracePredictorConfig] = None):
        self.config = config or TracePredictorConfig()
        size = self.config.table_size
        self._correlated = _Table(size, self.config.counter_max)
        self._simple = _Table(size, self.config.counter_max)
        self._history: Deque[TraceId] = deque(maxlen=self.config.path_depth)
        self.lookups = 0
        self.correlated_hits = 0

    # ------------------------------------------------------------------
    # Indexing.
    # ------------------------------------------------------------------

    def _correlated_index(self) -> int:
        """Hash the path history, favouring recent trace ids.

        The most recent id contributes all of its bits; each older id is
        truncated harder and shifted, so recent path information
        dominates the index (as in the DOLC scheme of [13]).
        """
        mask = self.config.table_size - 1
        acc = 0
        for age, tid in enumerate(reversed(self._history)):
            digest = tid.mix()
            keep_bits = max(self.config.index_bits - 2 * age, 4)
            acc ^= (digest & ((1 << keep_bits) - 1)) << (age & 0x3)
        return acc & mask

    def _simple_index(self) -> int:
        mask = self.config.table_size - 1
        if not self._history:
            return 0
        return self._history[-1].mix() & mask

    # ------------------------------------------------------------------
    # Prediction / update.
    # ------------------------------------------------------------------

    def lookup(self) -> Lookup:
        """Predict the next trace id, returning the entry used.

        The correlated table wins when its entry has proven itself
        (counter > 0); otherwise the simple table's entry is used.
        Returns ``Lookup(None, None)`` when untrained.
        """
        self.lookups += 1
        correlated = self._correlated.lookup(self._correlated_index())
        if (
            correlated is not None
            and correlated.trace_id is not None
            and correlated.counter > 0
        ):
            self.correlated_hits += 1
            return Lookup(correlated.trace_id, correlated)
        simple = self._simple.lookup(self._simple_index())
        if simple is not None and simple.trace_id is not None:
            return Lookup(simple.trace_id, simple)
        return Lookup(None, None)

    def predict(self) -> Optional[TraceId]:
        """Predict the id of the next trace, or None if untrained."""
        return self.lookup().trace_id

    def update(self, actual: TraceId) -> Tuple[Entry, Entry]:
        """Train both tables with the actual next trace, then shift it
        into the path history.  Returns the (correlated, simple) entries
        updated — the IR-predictor trains removal state on them."""
        correlated = self._correlated.update(self._correlated_index(), actual)
        simple = self._simple.update(self._simple_index(), actual)
        self._history.append(actual)
        return correlated, simple

    # ------------------------------------------------------------------
    # Recovery support.
    # ------------------------------------------------------------------

    def history_snapshot(self) -> List[TraceId]:
        return list(self._history)

    def restore_history(self, snapshot: List[TraceId]) -> None:
        """Back the predictor up to a precise point (IR-misprediction
        recovery re-synchronises the predictor to the R-stream's PC)."""
        self._history = deque(snapshot, maxlen=self.config.path_depth)
