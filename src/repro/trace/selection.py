"""Static trace selection policy.

Traces are the unit of prediction, instruction removal and IR-detector
analysis (the paper uses length-32 traces throughout).  The policy must
be *consistent* — the same dynamic path always chunks into the same
traces — or trace prediction cannot learn (paper, section 2.1.3).

Policy: a trace accumulates dynamic instructions and terminates at

* 32 instructions (``TRACE_LENGTH``),
* an indirect jump (``jalr``) — its target is data-dependent and cannot
  be embedded in a trace id, so it ends the trace, or
* ``halt``.

Conditional branches are *embedded*: their taken/not-taken outcomes are
encoded in the trace id.  Direct jumps (``j``/``jal``) are embedded but
contribute no outcome bit (their targets are static).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.arch.executor import DynInstr
from repro.isa.instructions import InstrClass, Instruction, WORD
from repro.isa.program import Program
from repro.trace.trace_id import TraceId

TRACE_LENGTH = 32


def _terminates_trace(instr: Instruction) -> bool:
    return instr.klass in (InstrClass.JUMP_INDIRECT, InstrClass.HALT)


@dataclass
class CompletedTrace:
    """A finished dynamic trace: its instructions and canonical id."""

    instructions: List[DynInstr]
    trace_id: TraceId

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def start_pc(self) -> int:
        return self.trace_id.start_pc

    @property
    def next_pc(self) -> int:
        """PC of the instruction following this trace."""
        return self.instructions[-1].next_pc


def trace_id_of(instructions: List[DynInstr]) -> TraceId:
    """Compute the canonical id of a completed dynamic trace."""
    outcomes = tuple(d.taken for d in instructions if d.is_branch)
    return TraceId(start_pc=instructions[0].pc, outcomes=outcomes)


class TraceSelector:
    """Streaming trace chunker over a dynamic instruction stream."""

    def __init__(self, trace_length: int = TRACE_LENGTH):
        if trace_length < 1:
            raise ValueError("trace_length must be positive")
        self.trace_length = trace_length
        self._pending: List[DynInstr] = []

    def feed(self, dyn: DynInstr) -> Optional[CompletedTrace]:
        """Add one retired instruction; return a trace when one completes."""
        self._pending.append(dyn)
        if len(self._pending) >= self.trace_length or _terminates_trace(dyn.instr):
            return self._complete()
        return None

    def flush(self) -> Optional[CompletedTrace]:
        """Complete any partial trace (end of stream)."""
        if self._pending:
            return self._complete()
        return None

    def _complete(self) -> CompletedTrace:
        trace = CompletedTrace(self._pending, trace_id_of(self._pending))
        self._pending = []
        return trace

    def chunk(self, stream: Iterator[DynInstr]) -> Iterator[CompletedTrace]:
        """Chunk an entire stream into traces."""
        for dyn in stream:
            trace = self.feed(dyn)
            if trace is not None:
                yield trace
        tail = self.flush()
        if tail is not None:
            yield tail


@dataclass
class PredictedStep:
    """One instruction along a predicted trace path."""

    pc: int
    instr: Instruction
    #: Predicted taken-ness (meaningful for control instructions).
    taken: bool
    #: Predicted next PC (None after an indirect jump — unknown statically).
    next_pc: Optional[int]


class TraceExpansionError(Exception):
    """A trace id does not correspond to a walkable static path."""


class StaticTraceWalker:
    """Expands trace ids into predicted instruction sequences.

    The A-stream fetches along the *predicted* path: given a trace id it
    needs the concrete instructions (and their predicted next-PCs)
    without executing anything.  This walker reconstructs that path from
    the static program text.
    """

    def __init__(self, program: Program, trace_length: int = TRACE_LENGTH):
        self.program = program
        self.trace_length = trace_length

    def expand(self, trace_id: TraceId) -> List[PredictedStep]:
        """Expand a trace id into its predicted steps.

        Raises :class:`TraceExpansionError` if the id is inconsistent
        with the program text (wrong branch count, PC off the text
        segment) — a corrupted prediction a real front end would squash.
        """
        steps: List[PredictedStep] = []
        pc = trace_id.start_pc
        outcome_iter = iter(trace_id.outcomes)
        for _ in range(self.trace_length):
            if not self.program.contains_pc(pc):
                raise TraceExpansionError(f"predicted PC {pc:#x} outside text")
            instr = self.program.at(pc)
            if instr.is_branch:
                try:
                    taken = next(outcome_iter)
                except StopIteration:
                    raise TraceExpansionError(
                        f"trace id {trace_id} has too few branch outcomes"
                    ) from None
                next_pc = instr.target if taken else pc + WORD
                steps.append(PredictedStep(pc, instr, taken, next_pc))
            elif instr.klass is InstrClass.JUMP:
                steps.append(PredictedStep(pc, instr, True, instr.target))
            elif instr.klass is InstrClass.JUMP_INDIRECT:
                steps.append(PredictedStep(pc, instr, True, None))
                break
            elif instr.klass is InstrClass.HALT:
                steps.append(PredictedStep(pc, instr, False, pc))
                break
            else:
                steps.append(PredictedStep(pc, instr, False, pc + WORD))
            next_pc = steps[-1].next_pc
            assert next_pc is not None
            pc = next_pc
        remaining = sum(1 for _ in outcome_iter)
        if remaining:
            raise TraceExpansionError(
                f"trace id {trace_id} has {remaining} unused branch outcomes"
            )
        return steps
