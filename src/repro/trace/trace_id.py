"""Canonical trace identifiers.

A trace is uniquely identified by its starting PC plus the outcomes of
the conditional branches embedded in it (paper, section 2.1.1).  With a
static text segment and the selection policy of
:mod:`repro.trace.selection` (direct jumps embedded, indirect jumps
terminate a trace), the pair (start PC, outcome bits) deterministically
reconstructs the full instruction sequence of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class TraceId:
    """Identifier of one trace: start PC + embedded branch outcomes."""

    start_pc: int
    outcomes: Tuple[bool, ...]

    @property
    def branch_count(self) -> int:
        return len(self.outcomes)

    def mix(self) -> int:
        """A deterministic integer digest, used for predictor indexing.

        Must not rely on Python's randomized string hashing; trace ids
        contain only ints/bools so a hand-rolled multiplicative mix keeps
        simulations reproducible across processes.
        """
        acc = self.start_pc * 0x9E3779B1
        for outcome in self.outcomes:
            acc = (acc * 31 + (1 if outcome else 2)) & 0xFFFFFFFFFFFF
        return acc

    def __str__(self) -> str:
        bits = "".join("T" if o else "N" for o in self.outcomes)
        return f"{self.start_pc:#x}:{bits or '-'}"
