"""Microarchitecture substrate: the conventional superscalar core.

Each processing element of the CMP in Figure 1 is a conventional 4-way
out-of-order superscalar with private instruction and data caches, a
reorder buffer, and (in the slipstream configuration) its branch
predictor bypassed in favour of the trace predictor / IR-predictor.

The timing model (:mod:`repro.uarch.scheduler`) is table-scheduled: one
forward pass assigns each dynamic instruction its
fetch/dispatch/issue/complete/retire cycles under fetch-bandwidth,
ROB-occupancy, issue-width, operand-readiness, latency, cache, retire
bandwidth and misprediction-redirect constraints (see DESIGN.md,
"Table-scheduled OoO timing model").
"""

from repro.uarch.config import CacheConfig, CoreConfig, SS_64x4, SS_128x8
from repro.uarch.cache import Cache
from repro.uarch.latencies import latency_of
from repro.uarch.scheduler import InstrTiming, OoOScheduler, Timestamps
from repro.uarch.fetch import BlockFormer
from repro.uarch.core import SuperscalarCore, CoreRunResult
from repro.uarch.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    GsharePredictor,
    HybridPredictor,
)
from repro.uarch.timeline import PipelineTimeline, trace_core_timeline

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "SS_64x4",
    "SS_128x8",
    "Cache",
    "latency_of",
    "InstrTiming",
    "OoOScheduler",
    "Timestamps",
    "BlockFormer",
    "SuperscalarCore",
    "CoreRunResult",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "GsharePredictor",
    "HybridPredictor",
    "PipelineTimeline",
    "trace_core_timeline",
]
