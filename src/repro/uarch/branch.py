"""Conventional branch predictors.

Each processing element of Figure 1 owns a conventional branch
predictor; in slipstream mode both are bypassed (open switch in the
figure) in favour of the trace predictor / delay buffer.  These models
exist (a) as the substrate the figure shows, (b) to drive the
``control="gshare"`` variant of :class:`repro.uarch.core.SuperscalarCore`,
and (c) for the ablation that justifies the paper's methodological
choice of using the trace predictor for all three models.

Implemented: bimodal (PC-indexed 2-bit counters), gshare (global
history XOR PC), a bimodal/gshare hybrid with a chooser table, and a
last-target BTB for indirect jumps.
"""

from __future__ import annotations

from typing import Dict, Optional


class _CounterTable:
    """2-bit saturating counters, taken if >= 2."""

    def __init__(self, index_bits: int, initial: int = 1):
        self._mask = (1 << index_bits) - 1
        self._counters = [initial] * (1 << index_bits)

    def predict(self, index: int) -> bool:
        return self._counters[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        index &= self._mask
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1


class BimodalPredictor:
    """PC-indexed 2-bit counters."""

    def __init__(self, index_bits: int = 12):
        self._table = _CounterTable(index_bits)
        self.lookups = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        return pc >> 2

    def predict(self, pc: int) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.lookups += 1
        if self.predict(pc) == taken:
            self.correct += 1
        self._table.update(self._index(pc), taken)

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 0.0


class GsharePredictor:
    """Global-history XOR PC indexed 2-bit counters."""

    def __init__(self, index_bits: int = 14, history_bits: int = 12):
        self._table = _CounterTable(index_bits)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self.lookups = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) ^ self._history

    def predict(self, pc: int) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.lookups += 1
        if self.predict(pc) == taken:
            self.correct += 1
        self._table.update(self._index(pc), taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 0.0


class HybridPredictor:
    """Bimodal/gshare hybrid with a chooser table (a la McFarling)."""

    def __init__(self, index_bits: int = 14, history_bits: int = 12):
        self.bimodal = BimodalPredictor(index_bits)
        self.gshare = GsharePredictor(index_bits, history_bits)
        #: chooser >= 2 selects gshare.
        self._chooser = _CounterTable(index_bits, initial=2)
        self.lookups = 0
        self.correct = 0

    def predict(self, pc: int) -> bool:
        if self._chooser.predict(pc >> 2):
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        self.lookups += 1
        prediction = self.predict(pc)
        if prediction == taken:
            self.correct += 1
        bimodal_right = self.bimodal.predict(pc) == taken
        gshare_right = self.gshare.predict(pc) == taken
        if bimodal_right != gshare_right:
            self._chooser.update(pc >> 2, gshare_right)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 0.0


class BranchTargetBuffer:
    """Last-target predictor for indirect jumps (``jalr``)."""

    def __init__(self, entries: int = 4096):
        self._mask = entries - 1
        self._targets: Dict[int, int] = {}
        self.lookups = 0
        self.correct = 0

    def predict(self, pc: int) -> Optional[int]:
        return self._targets.get((pc >> 2) & self._mask)

    def update(self, pc: int, target: int) -> None:
        self.lookups += 1
        if self.predict(pc) == target:
            self.correct += 1
        self._targets[(pc >> 2) & self._mask] = target

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 0.0
