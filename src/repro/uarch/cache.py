"""Set-associative cache with LRU replacement.

Used for both instruction and data caches.  The timing model only needs
hit/miss decisions; lines hold no data (the architectural state lives in
:class:`repro.arch.state.Memory`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.uarch.config import CacheConfig


class Cache:
    """A hit/miss model of a set-associative LRU cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: List[Dict[int, int]] = [dict() for _ in range(config.num_sets)]
        self._stamp = 0
        self.accesses = 0
        self.misses = 0
        # Config fields hoisted out of the per-probe path (one probe per
        # fetched instruction plus one per memory access, per stream).
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._assoc = config.assoc

    def _locate(self, addr: int):
        line = addr // self._line_bytes
        return self._sets[line % self._num_sets], line

    def probe(self, addr: int) -> bool:
        """Access the byte address; return True on hit.

        Misses allocate (fetch the line); LRU victim is evicted.

        NOTE: the slipstream co-simulation hot loops
        (``repro.core.slipstream``) inline this exact logic against
        ``_sets``/``_stamp``; keep them in sync when changing it.
        """
        self.accesses += 1
        line = addr // self._line_bytes
        cache_set = self._sets[line % self._num_sets]
        stamp = self._stamp + 1
        self._stamp = stamp
        if line in cache_set:
            cache_set[line] = stamp
            return True
        self.misses += 1
        if len(cache_set) >= self._assoc:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[line] = stamp
        return False

    def probe_range(self, addr: int, length_bytes: int) -> bool:
        """Probe every line overlapping [addr, addr+length); True if all hit."""
        if length_bytes <= 0:
            raise ValueError("length must be positive")
        first = addr // self.config.line_bytes
        last = (addr + length_bytes - 1) // self.config.line_bytes
        all_hit = True
        for line in range(first, last + 1):
            if not self.probe(line * self.config.line_bytes):
                all_hit = False
        return all_hit

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict:
        """Observability tallies (:mod:`repro.obs`)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
        }
