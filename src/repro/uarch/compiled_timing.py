"""Compiled timing model: specialized metadata + trace-delta memoization.

PR 5 compiled the *functional* path (threaded-code closures,
:mod:`repro.arch.compiled`); this module applies the same treatment to
the table-scheduled OoO timing model (:mod:`repro.uarch.scheduler`),
which dominates every co-simulation once execution is compiled.

Three layers, all bit-identical to the scalar scheduler by construction:

1. **Pre-specialized timing metadata** — :func:`timing_meta_for`
   resolves per-static-instruction constants (source registers, FU
   latency from :mod:`repro.uarch.latencies`, load/store/control
   class) once per program per process, so per-dynamic-instruction
   scheduling never re-derives them or branches on instruction class.

2. **Trace plans** — the engine keys every scheduled trace by its
   static identity (trace id + removal mask + misprediction index) and
   compiles, on first sight, a :class:`_TracePlan`: per-slot operand
   tuples, destination registers, latencies, fetch-block break flags,
   I-cache *line runs* (maximal same-line probe runs, batched into one
   LRU update each) and the set of registers whose entry readiness the
   schedule can observe.

3. **Memoized timing deltas** — a trace's schedule is a pure function
   of a small *entry signature* plus the position of the pipe anchor
   ``M = max(C, last_dispatch)`` relative to the fetch anchor ``B``
   (the next-block cycle), where ``C`` is the earliest possible
   dispatch cycle.  Pipe-side entry state (ROB retire cycles, register
   and store readiness, the retire/merge cursors, delay-buffer
   override arrivals) is expressed relative to ``M`` and clamped to a
   canonical floor when it is too old to be observable; fetch-side
   state (the current-block fetch cycle, I-cache penalties, the fetch
   overhead accumulator) is expressed relative to ``B``.  The first
   time a signature is seen the trace is scheduled by the exact scalar
   pass while recording per-slot timestamp deltas, issue-table effects
   and the *fetch margin*: the smallest anchor gap ``mrel = M - B`` at
   which the fetch chain still never binds a dispatch.  A recorded
   delta replays — with integer adds — for every later entry whose
   signature matches and whose anchor gap is at or above that margin,
   which covers the entire backlog drift of a congested pipe with one
   delta.  Traces whose schedule was fetch-bound at some slot record a
   gap-exact variant instead (replayed only at the same ``mrel``).
   Any input the signature cannot prove equivalent (issue-slot
   pre-counts are verified by explicit guards; ROB overflow beyond the
   trace; a signature-diverse trace) falls back to the exact scalar
   pass.

The clamp floor is ``C = min(cur_block_fetch, next_block_cycle) +
frontend_depth``: no dispatch in the trace can precede ``C``, and no
dispatch can precede the entry ``last_dispatch`` either, so any entry
readiness/ROB value at or below ``M = max(C, last_dispatch)`` is
behaviorally indistinguishable from any other (see DESIGN.md §7.9 for
the full fidelity argument).  The merge cycle, which participates in
an equality test, clamps one cycle lower; the retire cycle clamps one
higher (the first in-trace retirement is at least ``M + 2``).

Engine selection mirrors the functional engine: environmental
(``REPRO_COMPILED_TIMING=0`` restores the scalar scheduler everywhere)
and never part of any config fingerprint.  Fault-injection runs
(``fault_hook``) always use the scalar path: a hook may perturb dynamic
records in ways static plans must not assume away.
"""

from __future__ import annotations

import os
from itertools import islice
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch.compiled import program_keyed_memo
from repro.isa.instructions import WORD
from repro.isa.program import Program, TEXT_BASE
from repro.uarch.cache import Cache
from repro.uarch.config import CoreConfig
from repro.uarch.latencies import latency_of
from repro.uarch.scheduler import OoOScheduler, Timestamps

#: Environment opt-out: ``REPRO_COMPILED_TIMING=0`` selects the scalar
#: scheduler (the engine is simply not constructed).
TIMING_ENV = "REPRO_COMPILED_TIMING"

_FALSY = frozenset({"0", "false", "off", "no"})

#: Distinct entry signatures memoized per trace plan before the plan is
#: declared signature-diverse and scheduled scalar from then on.
SIG_CAP = 48
#: Guard-variant entries (same signature, different issue-slot
#: pre-counts or anchor gap) kept per signature.
VARIANT_CAP = 4
#: Trace plans kept per engine before the memo is wholesale cleared
#: (mirrors the slipstream expansion cache's bound).
PLAN_CAP = 1 << 14
#: After this many scheduled traces, an engine whose replay rate is
#: below ~1 in 3 stops recording: the workload's signatures churn and
#: the exact scalar pass is the faster steady state.
DEAD_CHECK = 4096

#: "Minus infinity" for the pipe-anchored component of fetch-chain
#: values that no redirect has floored yet; large enough that per-slot
#: constant adds keep it far below any real cycle.
_NEG = -(1 << 40)


def compiled_timing_enabled() -> bool:
    """True unless ``REPRO_COMPILED_TIMING`` is set to a falsy value."""
    value = os.environ.get(TIMING_ENV)
    if value is None:
        return True
    return value.strip().lower() not in _FALSY


def _build_timing_meta(program: Program) -> Dict[int, tuple]:
    """Per-PC scheduling constants: (srcs, latency, is_load, is_store,
    is_control, is_branch)."""
    meta: Dict[int, tuple] = {}
    pc = TEXT_BASE
    for instr in program.instructions:
        meta[pc] = (
            instr.srcs,
            latency_of(instr),
            instr.is_load,
            instr.is_store,
            instr.is_control,
            instr.is_branch,
        )
        pc += WORD
    return meta


#: The (memoized) per-PC timing metadata for a program — shared by every
#: engine on the same program object in the process (pool workers reuse
#: it across jobs via the program memo in :mod:`repro.eval.jobs`).
timing_meta_for: Callable[[Program], Dict[int, tuple]] = program_keyed_memo(_build_timing_meta)


class _TracePlan:
    """Static scheduling facts of one trace key, compiled on first sight."""

    __slots__ = (
        "n", "srcs", "dest", "lat", "is_load", "is_store", "break_after",
        "pre_break", "redirect_at", "mem_idx", "mem_load", "iruns",
        "read_regs", "sigs", "pending", "has_exact", "polluted",
    )

    def __init__(self) -> None:
        #: Signature → recorded variants.  Gap-portable (pipe-bound)
        #: deltas live under the flat signature tuple; gap-exact
        #: (fetch-bound) deltas live under ``(sig, mrel)``.
        self.sigs: Dict[tuple, List["_Delta"]] = {}
        #: Signatures seen exactly once.  Recording costs several times
        #: the plain scalar pass; it only pays off for signatures that
        #: recur, so a first sighting just marks the signature and the
        #: second one records.
        self.pending: set = set()
        self.has_exact = False
        self.polluted = False


class _Delta:
    """Recorded effect of scheduling one trace from one entry signature.

    Pipe-side values (``rel_d``/``rel_i``/``rel_c``/``rel_r``, register
    and store writes, issue-table cells, ``ld``/``mc``/``rc``/
    ``last_c``) are relative to the pipe anchor ``M``; fetch-chain
    values are ``max(B + *_b, M + *_m)`` pairs (the ``_m`` component is
    :data:`_NEG` until a redirect floors the chain).  ``mrel_min`` is
    the smallest anchor gap the recorded schedule is valid for, or
    ``None`` for a gap-exact variant.
    """

    __slots__ = (
        "n", "rel_fb", "rel_fm", "rel_d", "rel_i", "rel_c", "rel_r",
        "pops", "reg_writes", "store_writes", "probes", "adds",
        "nbc_b", "nbc_m", "cbf_b", "cbf_m", "ld", "du", "mc", "mu",
        "rc", "rcount", "oacc", "block_count", "block_pending",
        "new_blocks", "merge_stalls", "redirects", "last_c", "mrel_min",
    )


class TraceTimingEngine:
    """Memoizing trace scheduler bound to one :class:`OoOScheduler`.

    The engine mutates the scheduler's real state (register/store
    readiness, ROB, issue table, retire bookkeeping) exactly as the
    scalar pass would, so scalar calls (``add``/``redirect``/
    ``stall_fetch_until``), ``snapshot()`` and ``total_cycles`` compose
    seamlessly with memoized traces.  Dynamic instruction records are
    duck-typed: only ``pc``, ``mem_addr``, ``dest_reg`` and ``taken``
    are read (plus ``instr`` when a PC has no precompiled metadata).
    """

    __slots__ = (
        "_sched", "_icache", "_dcache", "_meta", "_fw", "_fd", "_rp",
        "_imiss", "_dmiss", "_ilb", "_ins", "_iassoc", "_dlb", "_dns",
        "_dassoc", "_plans", "_dead",
    )

    def __init__(
        self,
        scheduler: OoOScheduler,
        icache: Cache,
        dcache: Cache,
        meta: Dict[int, tuple],
        config: CoreConfig,
    ):
        self._sched = scheduler
        self._icache = icache
        self._dcache = dcache
        self._meta = meta
        self._fw = config.fetch_width
        self._fd = config.frontend_depth
        self._rp = config.redirect_penalty
        self._imiss = config.icache.miss_penalty
        self._dmiss = config.dcache.miss_penalty
        self._ilb = icache._line_bytes
        self._ins = icache._num_sets
        self._iassoc = icache._assoc
        self._dlb = dcache._line_bytes
        self._dns = dcache._num_sets
        self._dassoc = dcache._assoc
        self._plans: Dict[object, _TracePlan] = {}
        self._dead = False

    # ------------------------------------------------------------------

    def _build_plan(
        self,
        dyns: Sequence,
        n: int,
        pre_breaks: Optional[Sequence[bool]],
        redirect_at: int,
    ) -> _TracePlan:
        plan = _TracePlan()
        plan.n = n
        meta_get = self._meta.get
        srcs: List[tuple] = []
        dest: List[Optional[int]] = []
        lat: List[int] = []
        is_load: List[bool] = []
        is_store: List[bool] = []
        break_after: List[bool] = []
        mem_idx: List[int] = []
        mem_load: List[bool] = []
        iruns: List[Tuple[int, int, int, int]] = []
        run: Optional[List[int]] = None
        ilb, ins = self._ilb, self._ins
        for i in range(n):
            dyn = dyns[i]
            pc = dyn.pc
            meta = meta_get(pc)
            if meta is None:
                instr = dyn.instr
                meta = (instr.srcs, latency_of(instr), instr.is_load,
                        instr.is_store, instr.is_control, instr.is_branch)
            m_srcs, m_lat, m_load, m_store, m_control, _ = meta
            srcs.append(m_srcs)
            # dest_reg is a pure function of the static instruction (the
            # compiled step closures bind it as a constant); fault hooks,
            # which may rewrite records, disable this engine entirely.
            dest.append(dyn.dest_reg)
            lat.append(m_lat)
            is_load.append(m_load)
            is_store.append(m_store)
            break_after.append(bool(m_control and dyn.taken))
            if m_load or m_store:
                mem_idx.append(i)
                mem_load.append(m_load)
            line = pc // ilb
            if run is not None and run[1] == line:
                run[2] += 1
            else:
                run = [line % ins, line, 1, i]
                iruns.append(run)  # type: ignore[arg-type]
        plan.srcs = tuple(srcs)
        plan.dest = tuple(dest)
        plan.lat = tuple(lat)
        plan.is_load = tuple(is_load)
        plan.is_store = tuple(is_store)
        plan.break_after = tuple(break_after)
        plan.pre_break = tuple(pre_breaks) if pre_breaks is not None else None
        plan.redirect_at = redirect_at
        plan.mem_idx = tuple(mem_idx)
        plan.mem_load = tuple(mem_load)
        plan.iruns = tuple(tuple(r) for r in iruns)
        # Registers whose *entry* readiness the schedule can observe:
        # read at some slot before any earlier slot wrote them.
        written: set = set()
        seen: set = set()
        order: List[int] = []
        for i in range(n):
            for s in srcs[i]:
                if s not in written and s not in seen:
                    seen.add(s)
                    order.append(s)
            d = dest[i]
            if d is not None:
                written.add(d)
        plan.read_regs = tuple(order)
        return plan

    # ------------------------------------------------------------------

    def schedule(
        self,
        key,
        dyns: Sequence,
        n: int,
        block_count: int,
        block_pending: bool,
        overrides: Optional[Sequence[Optional[int]]] = None,
        pre_breaks: Optional[Sequence[bool]] = None,
        redirect_at: int = -1,
        want_retires: bool = False,
        cb: Optional[Callable[[Timestamps], None]] = None,
    ):
        """Schedule one trace of ``n`` dynamic instructions.

        Returns ``(last_complete, retires, block_count, block_pending,
        new_blocks)`` where ``retires`` is the per-slot retire-cycle
        list when ``want_retires`` else None.  ``overrides`` carries the
        delay-buffer arrival cycle per slot (None = not value-predicted);
        ``pre_breaks`` marks slots that must start a fetch block because
        of skipped (removed) instructions before them; ``redirect_at``
        schedules a branch-misprediction redirect after that slot.
        """
        plans = self._plans
        plan = plans.get(key)
        if plan is None:
            if len(plans) >= PLAN_CAP:
                plans.clear()
            plan = self._build_plan(dyns, n, pre_breaks, redirect_at)
            plans[key] = plan
        elif plan.n != n:
            raise RuntimeError("compiled timing: trace key collision")
        sched = self._sched
        B = sched._next_block_cycle

        # --- Cache probes (exact LRU mutation, batched per line run) ---
        ic = self._icache
        isets = ic._sets
        istamp = ic._stamp
        imisses = 0
        imiss_pen = self._imiss
        iassoc = self._iassoc
        ipens: List[int] = []
        iappend = ipens.append
        for si, line, cnt, _first in plan.iruns:
            cset = isets[si]
            istamp += cnt
            if line in cset:
                cset[line] = istamp
                iappend(0)
            else:
                imisses += 1
                if len(cset) >= iassoc:
                    del cset[min(cset, key=cset.get)]
                cset[line] = istamp
                iappend(imiss_pen)
        ic._stamp = istamp
        ic.accesses += n
        ic.misses += imisses

        # Clamp floor: no dispatch in this trace precedes C = B + crel,
        # nor the entry last-dispatch.  The pipe anchor M is whichever
        # is later; pipe-side signature values are relative to it.
        cbf_rel = sched._cur_block_fetch - B
        crel = cbf_rel + self._fd if cbf_rel < 0 else self._fd
        ld_rel = sched._last_dispatch - B
        mrel = ld_rel if ld_rel > crel else crel
        M = B + mrel

        dpens: List[int] = []
        msig: List[int] = []
        mem_idx = plan.mem_idx
        if mem_idx:
            dc = self._dcache
            dsets = dc._sets
            dstamp = dc._stamp
            dmisses = 0
            dacc = 0
            dmiss_pen = self._dmiss
            dassoc = self._dassoc
            dlb, dns = self._dlb, self._dns
            store_get = sched._store_ready.get
            dappend = dpens.append
            mappend = msig.append
            mem_load = plan.mem_load
            last_store: Dict[int, int] = {}
            for j in range(len(mem_idx)):
                addr = dyns[mem_idx[j]].mem_addr
                if addr is None:
                    dappend(0)
                    if mem_load[j]:
                        # No forwarding source and no penalty: canonical
                        # values, behaviorally identical to a clamped get.
                        mappend(0)
                        mappend(-1)
                    else:
                        # A None-address store writes no forwarding entry;
                        # a distinct signature keeps it off replay paths
                        # recorded with a real address.
                        mappend(-2)
                    continue
                dacc += 1
                dstamp += 1
                line = addr // dlb
                cset = dsets[line % dns]
                if line in cset:
                    cset[line] = dstamp
                    dappend(0)
                else:
                    dmisses += 1
                    if len(cset) >= dassoc:
                        del cset[min(cset, key=cset.get)]
                    cset[line] = dstamp
                    dappend(dmiss_pen)
                if mem_load[j]:
                    # Only load penalties affect timing (store misses
                    # mutate the cache but not the schedule).
                    mappend(dpens[-1])
                    v = store_get(addr, 0) - M
                    mappend(v if v > 0 else 0)
                    mappend(last_store.get(addr, -1))
                else:
                    last_store[addr] = j
            dc._stamp = dstamp
            dc.accesses += dacc
            dc.misses += dmisses

        if self._dead or plan.polluted:
            sched.timing_fallback += 1
            return self._scalar(plan, dyns, n, B, M, block_count,
                                block_pending, overrides, ipens, dpens,
                                None, want_retires, cb)

        # --- Entry signature ---
        rob = sched._rob_retire
        L = len(rob)
        pops = L + n - sched._rob_size
        if pops > L:
            # More pops than entries that predate the trace (n > ROB):
            # in-trace retires would be popped; stay exact.
            sched.timing_fallback += 1
            return self._scalar(plan, dyns, n, B, M, block_count,
                                block_pending, overrides, ipens, dpens,
                                None, want_retires, cb)
        sigp: List[int] = [block_count, 1 if block_pending else 0,
                           sched._overhead_acc]
        sappend = sigp.append
        if block_pending or block_count >= self._fw:
            sappend(0)
        else:
            sappend(cbf_rel)
        if ld_rel >= crel:
            # The entry last-dispatch IS the pipe anchor; the dispatch
            # width counter matters only then.
            sappend(1)
            sappend(sched._dispatch_used)
        else:
            sappend(0)
            sappend(0)
        rc_rel = sched._retire_cycle - M
        if rc_rel <= 1:
            sappend(1)
            sappend(0)
        else:
            sappend(rc_rel)
            sappend(sched._retire_count)
        if overrides is not None:
            mc_rel = sched._merge_cycle - M
            if mc_rel <= -1:
                sappend(-1)
                sappend(0)
            else:
                sappend(mc_rel)
                sappend(sched._merge_used)
        sappend(L)
        if pops > 0:
            for t in islice(rob, 0, pops):
                v = t - M
                sappend(v if v > 0 else 0)
        reg_ready = sched._reg_ready
        for r in plan.read_regs:
            v = reg_ready[r] - M
            sappend(v if v > 0 else 0)
        if overrides is not None:
            for ov in overrides:
                if ov is not None:
                    v = ov - M
                    sappend(v if v > 0 else 0)
        sappend(imisses)
        if imisses:
            sigp.extend(ipens)
        if msig:
            sigp.extend(msig)
        sig = tuple(sigp)

        counts = sched._issue_count
        cg = counts.get
        entries = plan.sigs.get(sig)
        if entries is not None:
            # Gap-portable variants: valid at any anchor gap at or
            # above the recorded fetch margin.
            for d in entries:
                if mrel < d.mrel_min:
                    continue
                for relc, pre in d.probes:
                    if cg(M + relc, 0) != pre:
                        break
                else:
                    sched.timing_block_hit += 1
                    return self._apply(d, dyns, B, M, want_retires, cb)
        exact = plan.sigs.get((sig, mrel)) if plan.has_exact else None
        if exact is not None:
            for d in exact:
                for relc, pre in d.probes:
                    if cg(M + relc, 0) != pre:
                        break
                else:
                    sched.timing_block_hit += 1
                    return self._apply(d, dyns, B, M, want_retires, cb)

        sched.timing_block_miss += 1
        if not self._dead and sched.timing_block_miss % DEAD_CHECK == 0:
            total = (sched.timing_block_hit + sched.timing_block_miss
                     + sched.timing_fallback)
            if total >= DEAD_CHECK and sched.timing_block_hit * 3 < total:
                self._dead = True
        pending = plan.pending
        if entries is not None or exact is not None or sig in pending:
            # Recurring signature (or a probe-guard variant of one):
            # record a new delta for it.
            pending.discard(sig)
            record = sig
        else:
            if len(pending) >= 4 * VARIANT_CAP * SIG_CAP:
                pending.clear()
            pending.add(sig)
            record = None
        return self._scalar(plan, dyns, n, B, M, block_count, block_pending,
                            overrides, ipens, dpens, record, want_retires, cb)

    # ------------------------------------------------------------------

    def _apply(self, d: _Delta, dyns: Sequence, B: int, M: int,
               want_retires: bool, cb):
        """Replay a recorded delta: integer adds against real state."""
        sched = self._sched
        rob = sched._rob_retire
        pop = rob.popleft
        for _ in range(d.pops):
            pop()
        rel_r = d.rel_r
        vals = [M + r for r in rel_r]
        rob.extend(vals)
        reg_ready = sched._reg_ready
        for reg, rel in d.reg_writes:
            reg_ready[reg] = M + rel
        if d.store_writes:
            stores = sched._store_ready
            for idx, rel in d.store_writes:
                a = dyns[idx].mem_addr
                if a is not None:
                    stores[a] = M + rel
        counts = sched._issue_count
        cg = counts.get
        for rel, add in d.adds:
            c = M + rel
            counts[c] = cg(c, 0) + add
        x = B + d.nbc_b
        y = M + d.nbc_m
        sched._next_block_cycle = x if x > y else y
        x = B + d.cbf_b
        y = M + d.cbf_m
        sched._cur_block_fetch = x if x > y else y
        sched._last_dispatch = M + d.ld
        sched._dispatch_used = d.du
        if d.mc is not None:
            sched._merge_cycle = M + d.mc
            sched._merge_used = d.mu
        sched._retire_cycle = M + d.rc
        sched._retire_count = d.rcount
        sched._overhead_acc = d.oacc
        sched.retired += d.n
        sched.merge_stalls += d.merge_stalls
        sched.redirects += d.redirects
        retires = vals if want_retires else None
        if cb is not None:
            rel_fb, rel_fm = d.rel_fb, d.rel_fm
            rel_d, rel_i, rel_c = d.rel_d, d.rel_i, d.rel_c
            for i in range(d.n):
                fb = B + rel_fb[i]
                fm = M + rel_fm[i]
                cb(Timestamps(fb if fb > fm else fm, M + rel_d[i],
                              M + rel_i[i], M + rel_c[i], M + rel_r[i]))
        return (M + d.last_c, retires, d.block_count, d.block_pending,
                d.new_blocks)

    # ------------------------------------------------------------------

    def _scalar(self, plan: _TracePlan, dyns: Sequence, n: int, B: int,
                M: int, block_count: int, block_pending: bool,
                overrides: Optional[Sequence[Optional[int]]],
                ipens: List[int], dpens: List[int],
                record_sig: Optional[tuple], want_retires: bool, cb):
        """The exact scalar pass (``OoOScheduler.add_args`` semantics),
        consuming pre-probed cache penalties; optionally records a
        :class:`_Delta` under ``record_sig``."""
        sched = self._sched
        onum, oden = sched._overhead_num, sched._overhead_den
        oacc = sched._overhead_acc
        dw = sched._dispatch_width
        iw = sched._issue_width
        rw = sched._retire_width
        rob_size = sched._rob_size
        fd = self._fd
        fw = self._fw
        mw = sched._merge_width
        reg_ready = sched._reg_ready
        stores = sched._store_ready
        store_get = stores.get
        rob = sched._rob_retire
        rob_append = rob.append
        rob_popleft = rob.popleft
        counts = sched._issue_count
        cg = counts.get
        nbc = sched._next_block_cycle
        cbf = sched._cur_block_fetch
        ld = sched._last_dispatch
        du = sched._dispatch_used
        mc = sched._merge_cycle
        mu = sched._merge_used
        rc = sched._retire_cycle
        rcount = sched._retire_count
        merge_stalls = 0
        redirects = 0
        pops = 0
        new_blocks = 0
        redirect_at = plan.redirect_at
        rp = self._rp
        pre_break = plan.pre_break
        break_after = plan.break_after
        p_srcs, p_dest, p_lat = plan.srcs, plan.dest, plan.lat
        p_load, p_store = plan.is_load, plan.is_store
        iruns = plan.iruns
        nruns = len(iruns)
        ridx = 0
        next_first = iruns[0][3] if nruns else -1
        mptr = 0
        last_complete = 0
        retires: Optional[List[int]] = [] if want_retires else None
        rec = record_sig is not None
        if rec:
            rel_fb: List[int] = []
            rel_fm: List[int] = []
            rel_d: List[int] = []
            rel_i: List[int] = []
            rel_c: List[int] = []
            rel_r: List[int] = []
            reg_w: Dict[int, int] = {}
            store_w: List[Tuple[int, int]] = []
            probes: Dict[int, int] = {}
            own: Dict[int, int] = {}
            own_get = own.get
            # Fetch-chain anchor pairs: value = max(B + *_b, M + *_m).
            nbc_b = 0
            nbc_m = _NEG
            cbf_b = cbf - B
            cbf_m = _NEG
            fetch_b = 0
            fetch_m = _NEG
            mrel0 = M - B
            mrel_min = _NEG
            pipe_ok = True

        for idx in range(n):
            pen = 0
            if idx == next_first:
                pen = ipens[ridx]
                ridx += 1
                next_first = iruns[ridx][3] if ridx < nruns else -1
                if pen:
                    block_pending = True
            if pre_break is not None and pre_break[idx]:
                block_pending = True
            if block_pending or block_count >= fw:
                block_count = 0
                block_pending = False
                new_blocks += 1
                fetch = nbc + pen
                cbf = fetch
                gap = 1
                if onum:
                    oacc += onum
                    if oacc >= oden:
                        oacc -= oden
                        gap += 1
                nbc = fetch + gap
                if rec:
                    fetch_b = nbc_b + pen
                    fetch_m = nbc_m + pen
                    cbf_b = fetch_b
                    cbf_m = fetch_m
                    nbc_b = fetch_b + gap
                    nbc_m = fetch_m + gap
            else:
                fetch = cbf
                if rec:
                    fetch_b = cbf_b
                    fetch_m = cbf_m
            block_count += 1
            if break_after[idx]:
                block_pending = True
            # Operand readiness.
            ready = 0
            for s in p_srcs[idx]:
                t = reg_ready[s]
                if t > ready:
                    ready = t
            is_load = p_load[idx]
            is_store = p_store[idx]
            addr = None
            dpen = 0
            if is_load or is_store:
                addr = dyns[idx].mem_addr
                dpen = dpens[mptr]
                mptr += 1
                if is_load and addr is not None:
                    t = store_get(addr, 0)
                    if t > ready:
                        ready = t
            ov = overrides[idx] if overrides is not None else None
            accelerated = ov is not None and ov < ready
            if accelerated:
                local_ready = ready
                ready = ov
            # Dispatch: in order, width-limited, ROB-limited.
            dispatch = fetch + fd
            if dispatch < ld:
                dispatch = ld
            rob_free = -1
            if len(rob) >= rob_size:
                rob_free = rob_popleft()
                pops += 1
                if dispatch < rob_free:
                    dispatch = rob_free
            if rec:
                # Fetch margin: the anchor gap below which the B-side
                # fetch chain would start binding this dispatch; and
                # pipe reproducibility: the dispatch base must be
                # reachable without the B-side fetch component at all.
                m = fetch_b + fd - (dispatch - M)
                if m > mrel_min:
                    mrel_min = m
                if pipe_ok:
                    f2 = M + fetch_m + fd
                    b2 = f2 if f2 > ld else ld
                    if rob_free > b2:
                        b2 = rob_free
                    if b2 != dispatch:
                        pipe_ok = False
            if dispatch == ld and du >= dw:
                dispatch += 1
            if accelerated and local_ready > dispatch:
                if dispatch == mc and mu >= mw:
                    dispatch += 1
                    merge_stalls += 1
                if dispatch == mc:
                    mu += 1
                else:
                    mc = dispatch
                    mu = 1
            if dispatch == ld:
                du += 1
            else:
                ld = dispatch
                du = 1
            # Issue: width-limited slot search.
            issue = dispatch if dispatch > ready else ready
            if rec:
                while True:
                    c = cg(issue, 0)
                    rel = issue - M
                    if rel not in probes:
                        probes[rel] = c - own_get(issue, 0)
                    if c >= iw:
                        issue += 1
                    else:
                        break
                counts[issue] = c + 1
                own[issue] = own_get(issue, 0) + 1
            else:
                while cg(issue, 0) >= iw:
                    issue += 1
                counts[issue] = cg(issue, 0) + 1
            # Complete.
            complete = issue + p_lat[idx]
            if is_load:
                complete += dpen
            dest = p_dest[idx]
            if dest is not None:
                reg_ready[dest] = complete
            if is_store and addr is not None:
                stores[addr] = complete
                if rec:
                    store_w.append((idx, complete - M))
            # Retire: in order, width-limited.
            earliest = complete + 1
            if earliest > rc:
                rc = earliest
                rcount = 1
            elif rcount >= rw:
                rc += 1
                rcount = 1
            else:
                rcount += 1
            rob_append(rc)
            last_complete = complete
            if retires is not None:
                retires.append(rc)
            if rec:
                rel_fb.append(fetch_b)
                rel_fm.append(fetch_m)
                rel_d.append(dispatch - M)
                rel_i.append(issue - M)
                rel_c.append(complete - M)
                rel_r.append(rc - M)
                if dest is not None:
                    reg_w[dest] = complete - M
            if cb is not None:
                cb(Timestamps(fetch, dispatch, issue, complete, rc))
            if idx == redirect_at:
                floor = complete + 1 + rp
                if floor > nbc:
                    nbc = floor
                redirects += 1
                block_pending = True
                if rec:
                    fm = floor - M
                    if fm > nbc_m:
                        nbc_m = fm

        sched._next_block_cycle = nbc
        sched._cur_block_fetch = cbf
        sched._last_dispatch = ld
        sched._dispatch_used = du
        sched._merge_cycle = mc
        sched._merge_used = mu
        sched._retire_cycle = rc
        sched._retire_count = rcount
        sched._overhead_acc = oacc
        sched.retired += n
        sched.merge_stalls += merge_stalls
        sched.redirects += redirects

        if rec:
            d = _Delta()
            d.n = n
            d.rel_fb = tuple(rel_fb)
            d.rel_fm = tuple(rel_fm)
            d.rel_d = tuple(rel_d)
            d.rel_i = tuple(rel_i)
            d.rel_c = tuple(rel_c)
            d.rel_r = tuple(rel_r)
            d.pops = pops
            d.reg_writes = tuple(reg_w.items())
            d.store_writes = tuple(store_w)
            d.probes = tuple(probes.items())
            d.adds = tuple((c - M, a) for c, a in own.items())
            d.nbc_b = nbc_b
            d.nbc_m = nbc_m
            d.cbf_b = cbf_b
            d.cbf_m = cbf_m
            d.ld = ld - M
            d.du = du
            if overrides is not None:
                d.mc = mc - M
                d.mu = mu
            else:
                # The merge cursor is only live on schedulers that see
                # delay-buffer overrides; leave it untouched on replay.
                d.mc = None
                d.mu = 0
            d.rc = rc - M
            d.rcount = rcount
            d.oacc = oacc
            d.block_count = block_count
            d.block_pending = block_pending
            d.new_blocks = new_blocks
            d.merge_stalls = merge_stalls
            d.redirects = redirects
            d.last_c = last_complete - M
            if pipe_ok:
                d.mrel_min = mrel_min
                skey: tuple = record_sig
            else:
                d.mrel_min = mrel0 + 1  # never matched by the gap test
                skey = (record_sig, mrel0)
                plan.has_exact = True
            sigs = plan.sigs
            entries = sigs.get(skey)
            if entries is None:
                if len(sigs) < SIG_CAP:
                    sigs[skey] = [d]
                else:
                    plan.polluted = True
            elif len(entries) < VARIANT_CAP:
                entries.append(d)

        return last_complete, retires, block_count, block_pending, new_blocks


__all__ = [
    "TIMING_ENV",
    "TraceTimingEngine",
    "compiled_timing_enabled",
    "timing_meta_for",
]
