"""Microarchitecture configuration (paper, Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fingerprint import fingerprint as _fingerprint


@dataclass(frozen=True)
class CacheConfig:
    """Set-associative cache geometry and miss penalty."""

    size_bytes: int
    assoc: int
    line_bytes: int
    miss_penalty: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("cache size must be a multiple of assoc * line size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


#: Table 2: instruction cache 64kB/4-way/LRU, 16-instruction (64B) lines,
#: 12-cycle miss penalty.
ICACHE_DEFAULT = CacheConfig(size_bytes=64 * 1024, assoc=4, line_bytes=64, miss_penalty=12)

#: Table 2: data cache 64kB/4-way/LRU, 64B lines, 14-cycle miss penalty.
DCACHE_DEFAULT = CacheConfig(size_bytes=64 * 1024, assoc=4, line_bytes=64, miss_penalty=14)


@dataclass(frozen=True)
class CoreConfig:
    """One superscalar processing element.

    Defaults model the paper's base core: 4-way dispatch/issue/retire,
    64-entry ROB, fetch of up to a full 16-instruction cache block per
    cycle past multiple not-taken branches (2-way interleaved I-cache).
    """

    name: str = "SS(64x4)"
    fetch_width: int = 16
    dispatch_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    rob_size: int = 64
    #: Front-end pipeline depth: cycles from fetch to dispatch.  Also the
    #: post-redirect refill component of the branch misprediction penalty.
    frontend_depth: int = 4
    #: Extra redirect bubble beyond resolving the branch and refilling
    #: the front end (decode/rename of the redirected stream).
    redirect_penalty: int = 1
    icache: CacheConfig = ICACHE_DEFAULT
    dcache: CacheConfig = DCACHE_DEFAULT

    def fingerprint(self) -> str:
        """Stable content hash, used in experiment-cache keys."""
        return _fingerprint(self)

    def scaled(self, name: str, rob_size: int, width: int) -> "CoreConfig":
        """Derive a core with a different window/width (e.g. SS(128x8))."""
        return replace(
            self,
            name=name,
            rob_size=rob_size,
            dispatch_width=width,
            issue_width=width,
            retire_width=width,
        )


#: The paper's base model: one conventional 4-way, 64-entry-ROB core.
SS_64x4 = CoreConfig()

#: The paper's big-core comparison: 8-way, 128-entry ROB.
SS_128x8 = SS_64x4.scaled("SS(128x8)", rob_size=128, width=8)
