"""Conventional superscalar processor model: SS(64x4) and SS(128x8).

A single copy of the program runs on one core.  As in the paper
(section 5), control-flow prediction comes from the *trace predictor*
(the same predictor that underlies the slipstream IR-predictor) so that
all three models are directly comparable.

The run is execution-driven: the functional simulator produces the true
dynamic stream, the trace machinery decides what the front end would
have predicted, and the table scheduler turns both into cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.executor import DynInstr
from repro.arch.functional import FunctionalSimulator
from repro.isa.program import Program
from repro.obs.session import Observability
from repro.trace.compare import Divergence, first_divergence
from repro.trace.predictor import TracePredictor, TracePredictorConfig
from repro.trace.selection import CompletedTrace, TraceSelector, TRACE_LENGTH
from repro.uarch.branch import BranchTargetBuffer, HybridPredictor
from repro.uarch.cache import Cache
from repro.uarch.compiled_timing import (
    TraceTimingEngine,
    compiled_timing_enabled,
    timing_meta_for,
)
from repro.uarch.config import CoreConfig
from repro.uarch.fetch import BlockFormer
from repro.uarch.latencies import latency_of
from repro.uarch.scheduler import InstrTiming, OoOScheduler


@dataclass
class CoreRunResult:
    """Performance results of one core run."""

    model: str
    benchmark: str
    retired: int
    cycles: int
    branch_mispredictions: int
    icache_misses: int
    dcache_misses: int
    icache_accesses: int
    dcache_accesses: int

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def mispredictions_per_1000(self) -> float:
        return 1000.0 * self.branch_mispredictions / self.retired if self.retired else 0.0


class SuperscalarCore:
    """One conventional out-of-order core running one program."""

    def __init__(
        self,
        config: CoreConfig,
        program: Program,
        predictor_config: Optional[TracePredictorConfig] = None,
        trace_length: int = TRACE_LENGTH,
        max_instructions: int = 50_000_000,
        control: str = "trace",
        obs: Optional[Observability] = None,
    ):
        """``control`` selects the control-flow predictor: "trace" (the
        paper's methodology — the same trace predictor that underlies
        the slipstream IR-predictor) or "hybrid" (a conventional
        bimodal/gshare hybrid plus a last-target BTB for indirect
        jumps, for the methodology ablation)."""
        if control not in ("trace", "hybrid"):
            raise ValueError(f"unknown control predictor {control!r}")
        self.config = config
        self.program = program
        self.control = control
        self.predictor = TracePredictor(predictor_config)
        self.branch_predictor = HybridPredictor()
        self.btb = BranchTargetBuffer()
        self.trace_length = trace_length
        self.max_instructions = max_instructions
        self.icache = Cache(config.icache)
        self.dcache = Cache(config.dcache)
        self.scheduler = OoOScheduler(config)
        self._former = BlockFormer(config.fetch_width)
        self._mispredictions = 0
        self._last_complete = 0
        # Compiled-timing engine (repro.uarch.compiled_timing), bound
        # lazily at run(): timeline tracing may replace self.scheduler
        # with a recording proxy after construction.
        self._timing: Optional[TraceTimingEngine] = None
        self._timing_cb = None
        #: Observability handle (:mod:`repro.obs`); behavior-neutral.
        self._obs = obs

    # ------------------------------------------------------------------

    def run(self) -> CoreRunResult:
        """Run the program to completion; returns timing results."""
        if self.control == "hybrid":
            return self._run_conventional()
        self._ensure_timing()
        obs = self._obs
        if obs is not None:
            obs.emit("start", benchmark=self.program.name,
                     model=self.config.name,
                     trace_length=self.trace_length)
        sim = FunctionalSimulator(self.program, self.max_instructions)
        selector = TraceSelector(self.trace_length)
        upcoming = self.predictor.predict()
        seq = 0
        for trace in selector.chunk(sim.steps()):
            divergence = first_divergence(upcoming, trace)
            self._schedule_trace(trace, divergence)
            self.predictor.update(trace.trace_id)
            upcoming = self.predictor.predict()
            if obs is not None:
                if divergence is not None:
                    obs.emit("redirect", seq=seq, stream="S",
                             reason=divergence.kind)
                obs.emit("trace_retired", seq=seq,
                         retired=self.scheduler.retired,
                         cycle=self.scheduler.total_cycles)
            seq += 1
        result = CoreRunResult(
            model=self.config.name,
            benchmark=self.program.name,
            retired=self.scheduler.retired,
            cycles=self.scheduler.total_cycles,
            branch_mispredictions=self._mispredictions,
            icache_misses=self.icache.misses,
            dcache_misses=self.dcache.misses,
            icache_accesses=self.icache.accesses,
            dcache_accesses=self.dcache.accesses,
        )
        if obs is not None:
            self._finalize_obs(obs, traces=seq)
        return result

    def _finalize_obs(self, obs: Observability, traces: int) -> None:
        """Fold the core's tallies into the registry and close the trace
        (behavior-neutral; see :mod:`repro.obs`)."""
        registry = obs.registry
        registry.set_counters(self.scheduler.snapshot(), "sched.")
        registry.counter("core.traces").set(traces)
        registry.counter("core.branch_mispredictions").set(self._mispredictions)
        for name, cache in (("icache", self.icache), ("dcache", self.dcache)):
            registry.set_counters(cache.snapshot(), f"{name}.")
            obs.emit("cache", cache=name, accesses=cache.accesses,
                     hits=cache.hits, misses=cache.misses)
        obs.emit("summary", counters=registry.snapshot())

    def _run_conventional(self) -> CoreRunResult:
        """Per-branch prediction with the hybrid predictor and a BTB."""
        sim = FunctionalSimulator(self.program, self.max_instructions)
        from repro.isa.instructions import InstrClass

        for dyn in sim.steps():
            mispredicted = False
            if dyn.is_branch:
                mispredicted = self.branch_predictor.predict(dyn.pc) != dyn.taken
                self.branch_predictor.update(dyn.pc, dyn.taken)
            elif dyn.instr.klass is InstrClass.JUMP_INDIRECT:
                mispredicted = self.btb.predict(dyn.pc) != dyn.next_pc
                self.btb.update(dyn.pc, dyn.next_pc)
            ts = self.scheduler.add(self._timing_of(dyn))
            self._last_complete = ts.complete
            if mispredicted:
                self._mispredictions += 1
                self.scheduler.redirect(ts.complete)
                self._former.force_break()
        return CoreRunResult(
            model=f"{self.config.name}/hybrid",
            benchmark=self.program.name,
            retired=self.scheduler.retired,
            cycles=self.scheduler.total_cycles,
            branch_mispredictions=self._mispredictions,
            icache_misses=self.icache.misses,
            dcache_misses=self.dcache.misses,
            icache_accesses=self.icache.accesses,
            dcache_accesses=self.dcache.accesses,
        )

    # ------------------------------------------------------------------

    def _ensure_timing(self) -> None:
        """Bind the compiled-timing engine (if enabled) to the *real*
        scheduler, reaching through a timeline recording proxy when one
        was installed (its per-instruction callback keeps the captured
        timeline identical to the scalar path's)."""
        self._timing = None
        self._timing_cb = None
        if not compiled_timing_enabled():
            return
        sched = self.scheduler
        target = getattr(sched, "timing_target", None)
        if target is not None:
            self._timing_cb = sched.record_stamps
            sched = target
        self._timing = TraceTimingEngine(
            sched, self.icache, self.dcache,
            timing_meta_for(self.program), self.config,
        )

    def _schedule_trace(self, trace: CompletedTrace, divergence: Optional[Divergence]) -> None:
        if divergence is not None:
            self._mispredictions += 1
            if divergence.kind == "boundary":
                # Wrong next-trace start: redirect resolved by the
                # previous trace's last instruction.
                self.scheduler.redirect(self._last_complete)
                self._former.force_break()
        outcome_index = (
            divergence.index
            if divergence is not None and divergence.kind == "outcome"
            else -1
        )
        engine = self._timing
        if engine is not None:
            dyns = trace.instructions
            n = len(dyns)
            if n:
                former = self._former
                # The id + divergence point determine the whole static
                # schedule shape (indirect jumps terminate traces, so
                # the id walks to a unique PC sequence).
                last_c, _retires, count, pending, new_blocks = engine.schedule(
                    (trace.trace_id, outcome_index), dyns, n,
                    former._count, former._pending_break,
                    redirect_at=outcome_index, cb=self._timing_cb,
                )
                former._count = count
                former._pending_break = pending
                former.blocks += new_blocks
                self._last_complete = last_c
            return
        sched_add = self.scheduler.add
        timing_of = self._timing_of
        for index, dyn in enumerate(trace.instructions):
            ts = sched_add(timing_of(dyn))
            self._last_complete = ts.complete
            if index == outcome_index:
                self.scheduler.redirect(ts.complete)
                self._former.force_break()

    def _timing_of(self, dyn: DynInstr) -> InstrTiming:
        instr = dyn.instr
        icache_penalty = 0
        if not self.icache.probe(dyn.pc):
            self._former.force_break()
            icache_penalty = self.config.icache.miss_penalty
        new_block = self._former.place(ends_block=instr.is_control and dyn.taken)
        mem_addr = dyn.mem_addr
        dcache_penalty = 0
        if mem_addr is not None:
            if not self.dcache.probe(mem_addr):
                dcache_penalty = self.config.dcache.miss_penalty
        return InstrTiming(
            new_block=new_block,
            icache_penalty=icache_penalty,
            srcs=instr.srcs,
            dest=dyn.dest_reg,
            latency=latency_of(instr),
            is_load=instr.is_load,
            is_store=instr.is_store,
            mem_addr=mem_addr,
            dcache_penalty=dcache_penalty,
        )
