"""Fetch-block formation.

The I-cache supplies up to ``fetch_width`` sequential instructions per
cycle, fetching past multiple not-taken branches; a taken control
transfer ends the block (paper, Table 2).  Drivers also force breaks at
redirects, trace boundaries and I-cache misses.

``_count``/``_pending_break`` are part of the entry-state signature of
the memoized timing engine (:mod:`repro.uarch.compiled_timing`): a
replayed delta restores them exactly as the scalar walk would have
left them, and cores hand them to the engine before each trace.
"""

from __future__ import annotations


class BlockFormer:
    """Tracks fetch-block boundaries across a dynamic stream."""

    def __init__(self, fetch_width: int):
        if fetch_width < 1:
            raise ValueError("fetch_width must be positive")
        self.fetch_width = fetch_width
        self._count = 0
        self._pending_break = True  # first instruction starts a block
        self.blocks = 0

    def force_break(self) -> None:
        """The next instruction must start a new fetch block."""
        self._pending_break = True

    def place(self, ends_block: bool) -> bool:
        """Account for one instruction; returns True if it starts a new
        fetch block.

        ``ends_block`` marks taken control transfers: the *following*
        instruction starts a new block.
        """
        new_block = self._pending_break or self._count >= self.fetch_width
        if new_block:
            self._count = 0
            self._pending_break = False
            self.blocks += 1
        self._count += 1
        if ends_block:
            self._pending_break = True
        return new_block
