"""Functional-unit latencies (paper, Table 2).

Integer ALU ops take 1 cycle; memory ops take 1 cycle of address
generation plus a 2-cycle cache access on a hit; complex ops follow MIPS
R10000 latencies (integer multiply 5, divide 35).

The memoized timing engine (:mod:`repro.uarch.compiled_timing`) folds
:func:`latency_of` into per-static-PC metadata once per program
(``timing_meta_for``), so a latency change here propagates to both the
scalar and memoized paths from the same table — there is no second
copy to keep in sync.
"""

from __future__ import annotations

from repro.isa.instructions import InstrClass, Instruction

ADDRESS_GEN = 1
MEM_ACCESS_HIT = 2

#: MIPS R10000 integer multiply/divide latencies.
MUL_LATENCY = 5
DIV_LATENCY = 35

_CLASS_LATENCY = {
    InstrClass.ALU: 1,
    InstrClass.MUL: MUL_LATENCY,
    InstrClass.DIV: DIV_LATENCY,
    InstrClass.LOAD: ADDRESS_GEN + MEM_ACCESS_HIT,
    InstrClass.STORE: ADDRESS_GEN,  # data held in store queue until retire
    InstrClass.BRANCH: 1,
    InstrClass.JUMP: 1,
    InstrClass.JUMP_INDIRECT: 1,
    InstrClass.HALT: 1,
    InstrClass.OUT: 1,
    InstrClass.NOP: 1,
}


def latency_of(instr: Instruction) -> int:
    """Execution latency of an instruction, excluding cache misses."""
    return _CLASS_LATENCY[instr.klass]
