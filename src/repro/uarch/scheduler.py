"""Table-scheduled out-of-order timing model.

One forward pass assigns every dynamic instruction its pipeline
timestamps.  The model enforces, per :class:`repro.uarch.config.CoreConfig`:

* **fetch**: one fetch block per cycle (callers mark block boundaries —
  taken branches, fetch-width limits, redirects); I-cache misses delay
  the block; redirects (branch mispredictions, recovery) floor the next
  block's cycle.
* **dispatch**: in order, ``dispatch_width`` per cycle,
  ``frontend_depth`` cycles after fetch, and only when the ROB has a
  free entry (entry freed by the retire of the instruction ``rob_size``
  earlier).
* **issue**: out of order once operands are ready, ``issue_width`` per
  cycle.  Loads additionally wait for the latest earlier store to the
  same address (store-to-load forwarding at the store's completion).
  Value-predicted operands (R-stream) override local readiness with the
  delay-buffer arrival time.
* **complete**: issue + FU latency (+ D-cache miss penalty for loads).
* **retire**: in order, ``retire_width`` per cycle, after completion.

The pass is O(n) in dynamic instructions, which is what makes a pure
Python reproduction of the paper's full benchmark sweep tractable; see
DESIGN.md for the fidelity argument.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Tuple

from repro.isa.instructions import REG_COUNT
from repro.uarch.config import CoreConfig


class Timestamps(NamedTuple):
    """Pipeline timestamps of one dynamic instruction."""

    fetch: int
    dispatch: int
    issue: int
    complete: int
    retire: int


class InstrTiming(NamedTuple):
    """Semantic metadata the scheduler needs about one instruction.

    ``ready_override``, when not None, is the cycle at which *all*
    source operands become available from the delay buffer (value
    prediction), replacing producer-completion readiness.
    """

    new_block: bool
    icache_penalty: int
    srcs: Tuple[int, ...]
    dest: Optional[int]
    latency: int
    is_load: bool = False
    is_store: bool = False
    mem_addr: Optional[int] = None
    dcache_penalty: int = 0
    ready_override: Optional[int] = None
    fetch_floor: int = 0
    #: The instruction consumes a delay-buffer data-flow entry at
    #: dispatch (slipstream R-stream); capped at ``merge_width``/cycle.
    merged: bool = False


class OoOScheduler:
    """Incremental timestamp assignment for one core's dynamic stream.

    ``block_overhead`` is an optional rational (numerator, denominator)
    adding extra front-end cycles per fetch block.  The slipstream
    R-stream uses (1, 2): merging delay-buffer outcome records (operand
    values, skip markers) with each fetched block before rename costs
    its front end an extra cycle every other block.  This is the single
    global fidelity knob that calibrates the R-stream's efficiency to
    the paper's (see DESIGN.md); conventional cores use (0, 1).
    """

    __slots__ = (
        "config",
        "_overhead_num",
        "_overhead_den",
        "_overhead_acc",
        "_dispatch_width",
        "_issue_width",
        "_retire_width",
        "_rob_size",
        "_frontend_depth",
        "_merge_width",
        "_reg_ready",
        "_store_ready",
        "_rob_retire",
        "_issue_count",
        "_next_block_cycle",
        "_cur_block_fetch",
        "_last_dispatch",
        "_dispatch_used",
        "_merge_cycle",
        "_merge_used",
        "_retire_cycle",
        "_retire_count",
        "retired",
        "redirects",
        "merge_stalls",
        "timing_block_hit",
        "timing_block_miss",
        "timing_fallback",
    )

    def __init__(
        self,
        config: CoreConfig,
        block_overhead: Tuple[int, int] = (0, 1),
        merge_width: Optional[int] = None,
    ):
        self.config = config
        self._overhead_num, self._overhead_den = block_overhead
        self._overhead_acc = 0
        # Config fields hoisted out of the per-instruction path.
        self._dispatch_width = config.dispatch_width
        self._issue_width = config.issue_width
        self._retire_width = config.retire_width
        self._rob_size = config.rob_size
        self._frontend_depth = config.frontend_depth
        #: Delay-buffer data-flow read ports: at most this many merged
        #: (value-predicted) instructions dispatch per cycle.
        self._merge_width = merge_width if merge_width is not None else config.dispatch_width
        self._reg_ready: List[int] = [0] * REG_COUNT
        self._store_ready: Dict[int, int] = {}
        self._rob_retire: Deque[int] = deque()
        self._issue_count: Dict[int, int] = {}
        self._next_block_cycle = 0
        self._cur_block_fetch = 0
        # Dispatch is in order, hence monotone non-decreasing: slot
        # occupancy needs only the current cycle's count, not a dict
        # keyed by cycle (issue is out of order and keeps the dict).
        self._last_dispatch = 0
        self._dispatch_used = 0
        self._merge_cycle = 0
        self._merge_used = 0
        self._retire_cycle = 0
        self._retire_count = 0
        self.retired = 0
        #: Observability tallies (:mod:`repro.obs`) — observers only;
        #: nothing in the timing model reads them back.
        self.redirects = 0
        #: Cycles an instruction's dispatch slipped because the delay-
        #: buffer merge ports (``merge_width``) were saturated — the
        #: R-stream merge stall the paper's §2.2 transfer path implies.
        self.merge_stalls = 0
        #: Compiled-timing engine tallies (:mod:`repro.uarch.compiled_timing`):
        #: traces replayed from a memoized delta, traces scheduled
        #: scalar-and-recorded, and traces that bypassed memoization
        #: entirely.  All zero when the engine is disabled
        #: (``REPRO_COMPILED_TIMING=0``).  Observers only.
        self.timing_block_hit = 0
        self.timing_block_miss = 0
        self.timing_fallback = 0

    # ------------------------------------------------------------------
    # External timing events.
    # ------------------------------------------------------------------

    def redirect(self, resolve_cycle: int) -> None:
        """A branch misprediction resolved at ``resolve_cycle``: the next
        fetch block cannot start before the redirect propagates."""
        floor = resolve_cycle + 1 + self.config.redirect_penalty
        if floor > self._next_block_cycle:
            self._next_block_cycle = floor
        self.redirects += 1

    def stall_fetch_until(self, cycle: int) -> None:
        """External fetch barrier (recovery completion, delay-buffer
        availability)."""
        if cycle > self._next_block_cycle:
            self._next_block_cycle = cycle

    # ------------------------------------------------------------------
    # The per-instruction pass.
    # ------------------------------------------------------------------

    def add(self, timing: InstrTiming) -> Timestamps:
        """Schedule one instruction; returns its pipeline timestamps."""
        return self.add_args(*timing)

    def add_args(
        self,
        new_block: bool,
        icache_penalty: int,
        srcs: Tuple[int, ...],
        dest: Optional[int],
        latency: int,
        is_load: bool = False,
        is_store: bool = False,
        mem_addr: Optional[int] = None,
        dcache_penalty: int = 0,
        override: Optional[int] = None,
        fetch_floor: int = 0,
        merged: bool = False,
    ) -> Timestamps:
        """Positional fast path of :meth:`add`, skipping the
        :class:`InstrTiming` allocation (one call per scheduled dynamic
        instruction).

        NOTE: the slipstream co-simulation hot loops
        (``repro.core.slipstream``) inline this exact logic with the
        scalar state in locals; keep them in sync when changing it.
        """
        # Fetch.
        if new_block:
            block = self._next_block_cycle
            if fetch_floor > block:
                block = fetch_floor
            fetch = block + icache_penalty
            self._cur_block_fetch = fetch
            gap = 1
            if self._overhead_num:
                self._overhead_acc += self._overhead_num
                if self._overhead_acc >= self._overhead_den:
                    self._overhead_acc -= self._overhead_den
                    gap += 1
            self._next_block_cycle = fetch + gap
        else:
            fetch = self._cur_block_fetch

        # Operand readiness (computed first: whether the delay-buffer
        # merge port is needed depends on whether the prediction
        # actually accelerates this instruction).
        ready = 0
        reg_ready = self._reg_ready
        for src in srcs:
            t = reg_ready[src]
            if t > ready:
                ready = t
        if is_load and mem_addr is not None:
            t = self._store_ready.get(mem_addr, 0)
            if t > ready:
                ready = t
        accelerated = override is not None and override < ready
        if accelerated:
            # Value-predicted operands (delay buffer): predictions only
            # ever *accelerate* readiness — the local bypass network
            # still supplies values at producer completion.
            local_ready = ready
            ready = override

        # Dispatch: in order, width-limited, ROB-limited.  Dispatch
        # cycles never decrease, so slot occupancy reduces to a count
        # at the current dispatch cycle: any later cycle is empty.
        last_dispatch = self._last_dispatch
        dispatch = fetch + self._frontend_depth
        if dispatch < last_dispatch:
            dispatch = last_dispatch
        rob_retire = self._rob_retire
        if len(rob_retire) >= self._rob_size:
            rob_free = rob_retire.popleft()
            if dispatch < rob_free:
                dispatch = rob_free
        if dispatch == last_dispatch and self._dispatch_used >= self._dispatch_width:
            dispatch += 1
        # Delay-buffer merge ports (slipstream R-stream): consumed only
        # when the prediction actually matters — the operand would not
        # have been locally available by dispatch time.  The same
        # monotonicity argument applies: advancing one cycle lands on
        # an empty cycle for both dispatch slots and merge ports.
        if merged and accelerated and local_ready > dispatch:
            if dispatch == self._merge_cycle and self._merge_used >= self._merge_width:
                dispatch += 1
                self.merge_stalls += 1
            if dispatch == self._merge_cycle:
                self._merge_used += 1
            else:
                self._merge_cycle = dispatch
                self._merge_used = 1
        if dispatch == last_dispatch:
            self._dispatch_used += 1
        else:
            self._last_dispatch = dispatch
            self._dispatch_used = 1

        # Issue: width-limited slot search.
        issue = dispatch if dispatch > ready else ready
        issue_width = self._issue_width
        counts = self._issue_count
        counts_get = counts.get
        while counts_get(issue, 0) >= issue_width:
            issue += 1
        counts[issue] = counts_get(issue, 0) + 1

        # Complete.
        complete = issue + latency
        if is_load:
            complete += dcache_penalty
        if dest is not None:
            reg_ready[dest] = complete
        if is_store and mem_addr is not None:
            self._store_ready[mem_addr] = complete

        # Retire: in order, width-limited.
        earliest = complete + 1
        if earliest > self._retire_cycle:
            self._retire_cycle = earliest
            self._retire_count = 1
        elif self._retire_count >= self._retire_width:
            self._retire_cycle += 1
            self._retire_count = 1
        else:
            self._retire_count += 1
        retire = self._retire_cycle

        rob_retire.append(retire)
        self.retired += 1
        return Timestamps(fetch, dispatch, issue, complete, retire)

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        """Cycles elapsed through the last retirement."""
        return self._retire_cycle

    @property
    def ipc(self) -> float:
        return self.retired / self._retire_cycle if self._retire_cycle else 0.0

    def snapshot(self) -> dict:
        """Observability tallies (:mod:`repro.obs`)."""
        return {
            "retired": self.retired,
            "cycles": self._retire_cycle,
            "redirects": self.redirects,
            "merge_stalls": self.merge_stalls,
            "timing_block_hit": self.timing_block_hit,
            "timing_block_miss": self.timing_block_miss,
            "timing_fallback": self.timing_fallback,
        }
