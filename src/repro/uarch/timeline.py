"""Pipeline-timeline rendering for debugging and teaching.

Captures per-instruction pipeline timestamps from an
:class:`~repro.uarch.scheduler.OoOScheduler` and renders the classic
textbook pipeline diagram (one row per instruction, one column per
cycle, F/D/I/C/R stage letters).  Used by tests and by anyone poking at
why a stream scheduled the way it did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.uarch.scheduler import Timestamps


@dataclass
class TimelineEntry:
    """One instruction's row in the diagram."""

    label: str
    stamps: Timestamps


class PipelineTimeline:
    """Collects (label, Timestamps) pairs and renders them."""

    def __init__(self) -> None:
        self.entries: List[TimelineEntry] = []

    def record(self, label: str, stamps: Timestamps) -> None:
        self.entries.append(TimelineEntry(label, stamps))

    def window(self, start: int, count: int) -> List[TimelineEntry]:
        return self.entries[start:start + count]

    def render(
        self,
        start: int = 0,
        count: int = 16,
        label_width: int = 24,
    ) -> str:
        """Render rows [start, start+count) as a stage diagram.

        Stage letters: F fetch, D dispatch, I issue, C complete,
        R retire; ``.`` marks cycles in flight between stages.
        """
        entries = self.window(start, count)
        if not entries:
            return "(empty timeline)"
        base = min(e.stamps.fetch for e in entries)
        horizon = max(e.stamps.retire for e in entries) - base + 1
        lines = [
            " " * label_width + "".join(
                f"{(base + c) % 10}" for c in range(horizon)
            )
        ]
        for entry in entries:
            stamps = entry.stamps
            row = [" "] * horizon
            for left, right in (
                (stamps.fetch, stamps.dispatch),
                (stamps.dispatch, stamps.issue),
                (stamps.issue, stamps.complete),
                (stamps.complete, stamps.retire),
            ):
                for cycle in range(left, right):
                    row[cycle - base] = "."
            row[stamps.fetch - base] = "F"
            row[stamps.dispatch - base] = "D"
            row[stamps.issue - base] = "I"
            row[stamps.complete - base] = "C"
            row[stamps.retire - base] = "R"
            label = entry.label[:label_width - 2].ljust(label_width)
            lines.append(label + "".join(row))
        return "\n".join(lines)


class _RecordingScheduler:
    """Transparent scheduler proxy that records each ``add``'s stamps.

    The real :class:`~repro.uarch.scheduler.OoOScheduler` is slotted
    (no per-instance ``__dict__``), so its ``add`` cannot be patched in
    place; the proxy delegates every other attribute to the wrapped
    scheduler.
    """

    def __init__(self, scheduler, timeline: PipelineTimeline, limit: int):
        self._scheduler = scheduler
        self._timeline = timeline
        self._limit = limit
        self._count = 0

    @property
    def timing_target(self):
        """The wrapped scheduler.  The compiled-timing engine
        (:mod:`repro.uarch.compiled_timing`) must mutate the *real*
        scheduler's state; cores bind to this and feed the proxy
        through :meth:`record_stamps` so timeline capture composes with
        memoized scheduling instead of silently bypassing it."""
        return self._scheduler

    def record_stamps(self, stamps):
        """Record one instruction's stamps (first ``limit`` only)."""
        if self._count < self._limit:
            self._timeline.record(f"#{self._count}", stamps)
            self._count += 1

    def add(self, timing):
        stamps = self._scheduler.add(timing)
        self.record_stamps(stamps)
        return stamps

    def __getattr__(self, name):
        return getattr(self._scheduler, name)


def trace_core_timeline(core, limit: int = 4096) -> PipelineTimeline:
    """Wrap a :class:`~repro.uarch.core.SuperscalarCore`'s scheduler so
    that running the core also fills a timeline (first ``limit``
    instructions)."""
    timeline = PipelineTimeline()
    core.scheduler = _RecordingScheduler(core.scheduler, timeline, limit)
    return timeline
