"""SPEC95-integer analog workloads.

The paper evaluates on the SPEC95 integer benchmarks (Table 1).  Those
binaries (and the SimpleScalar toolchain that compiled them) are not
reproducible here, so each benchmark is replaced by a synthetic analog
written in our ISA that mimics the *relevant* characteristics of its
namesake — branch predictability, ineffectual-write density (silent
stores / dead writes), loop structure and ILP — because those are
exactly the properties that drive the paper's results (Figure 8
correlates removal with performance; Table 3 correlates removal with
branch predictability).  See DESIGN.md's substitution table.

Use :func:`repro.workloads.suite.benchmark_suite` to get all eight.
"""

from repro.workloads.suite import Benchmark, benchmark_suite, get_benchmark

__all__ = ["Benchmark", "benchmark_suite", "get_benchmark"]
