"""compress analog: an LZW-style hash-probing coder.

Real compress (SPEC95, ``40000 e 2231``) is the least predictable
benchmark in the paper's table: 16 branch mispredictions per 1000
instructions and base IPC of only 1.72, with modest removable work.
Performance is dominated by a data-dependent hash-probe hit/miss
branch over a large code table.

The analog codes a pseudo-random input stream (in-program LCG — the
*high* bits, which a trace predictor cannot learn):

* combines the previous code and the next symbol into a hash and
  probes a 128KB code table — the hit/miss branch depends on the
  random symbol stream and mispredicts heavily, and the probes miss
  the 64KB data cache, exactly like real compress's table search;
* a biased secondary branch on the running code's low bits adds the
  rest of the misprediction budget;
* carries a serial dependence (the previous code feeds the next hash);
* every 64 symbols runs a *block-ratio scan* — a long, perfectly
  predictable inner loop re-writing compression-ratio status words
  (silent stores) and a scan scratch slot (dead writes).  The scan is
  long enough (64 iterations, 16+ traces) that its interior traces see
  an all-stable path history, so it is the one region where the
  IR-predictor's confidence can saturate: compress's small removal
  fraction comes entirely from here.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.dsl import Asm

_TABLE_SLOTS = 16384
_RATIO_ENTRIES = 64


def build(scale: int = 1) -> Program:
    """Build the workload; ``scale`` multiplies the iteration count."""
    asm = Asm("compress")
    symbols = 6400 * scale
    ratio_init = " ".join(str((7 * i) & 0xFF) for i in range(_RATIO_ENTRIES))
    scan_lines = []
    for i in range(_RATIO_ENTRIES):
        scan_lines.append(
            f"""
            lw   r13, {4 * i}(r25)
            srai r14, r13, 4
            xor  r14, r14, r13
            sltu r15, r14, r0           # saturation flag: always 0
            sw   r15, 0(r17)            # SV store; lint: ok(dead-store)
            andi r16, r15, 1            # still 0
            sw   r16, 4(r17)            # SV store; lint: ok(dead-store)
            sw   r14, 8(r17)            # WW scan scratch (dead); lint: ok(dead-store)
            """
        )
    scan_body = "".join(scan_lines)
    asm.emit(
        f"""
        .text
        main:
            addi r1, r0, {symbols}
            addi r2, r0, table
            addi r3, r0, 0              # previous code
            addi r20, r0, 0             # emitted-code count
            addi r21, r0, 0             # table insertions
            addi r17, r0, flags
            addi r25, r0, ratio
        """
    )
    asm.lcg_seed(0x2231)
    asm.emit(
        """
        symbol:
        """
    )
    asm.lcg_step()
    asm.emit(
        f"""
            srli r4, r29, 24
            andi r4, r4, 31             # symbol (0..31)
            # ---- hash(prev_code, symbol): serial through r3 ----
            slli r5, r3, 4
            xor  r5, r5, r4
            add  r5, r5, r3
            andi r5, r5, {_TABLE_SLOTS - 1}
            slli r6, r5, 3              # slot = [key, code]
            add  r6, r6, r2
            # ---- probe: data-dependent hit/miss branch ----
            lw   r7, 0(r6)              # stored key
            slli r8, r3, 5
            or   r8, r8, r4
            addi r8, r8, 1              # search key (never 0)
            beq  r7, r8, hit
            # ---- miss: emit code, insert entry ----
            sw   r8, 0(r6)              # live store
            addi r21, r21, 1
            sw   r21, 4(r6)             # live store
            addi r20, r20, 1
            add  r3, r4, r0             # restart from symbol
            j    emit_check
        hit:
            lw   r3, 4(r6)              # continue from stored code
            add  r27, r3, r4            # path balance
            xor  r27, r27, r4
            add  r27, r27, r3
            addi r20, r20, 0
            j    emit_check
        emit_check:
            # ---- biased secondary branch on the running code (arms
            # equal length so the trace phase stays fixed) ----
            andi r9, r3, 3
            bne  r9, r0, emit_skip
            addi r20, r20, 1
            j    no_emit
        emit_skip:
            add  r27, r27, r9           # path balance
            xor  r27, r27, r3           # path balance
        no_emit:
            # ---- block-ratio scan every 64 symbols (fully unrolled:
            # every trace in the scan has a distinct start PC, so the
            # IR-predictor's path contexts are unambiguous and its
            # confidence can saturate) ----
            andi r10, r1, 63
            bne  r10, r0, next
        {scan_body}
        next:
            addi r1, r1, -1
            bne  r1, r0, symbol
            out  r20
            out  r21
            halt

        .data
        table: .space {_TABLE_SLOTS * 8}
        ratio: .word {ratio_init}
        flags: .space 16
        """
    )
    return asm.build()
