"""Helpers for writing workload programs.

Workloads are generated as assembly text.  The :class:`Asm` builder
keeps that readable: fresh label allocation, fragment emission, and a
couple of common idioms (LCG pseudo-random steps, counted loops).

Register conventions used by the workloads (not enforced by hardware):

* ``r31`` — link register (``jal``/``jalr``)
* ``r29`` — pseudo-random LCG state
* ``r1``–``r28`` — free
"""

from __future__ import annotations

import os
from typing import List, Optional, Set

from repro.isa.assembler import assemble
from repro.isa.program import Program

#: Multiplier of the classic C-library LCG; together with the +12345
#: increment it gives a full-period mod-2^32 generator whose *high*
#: bits are effectively unpredictable to a trace predictor (low bits
#: are short-period and must not be used for "random" branches).
LCG_MULTIPLIER = 1103515245
LCG_INCREMENT = 12345


class Asm:
    """An assembly-text builder with fresh-label support."""

    def __init__(self, name: str):
        self.name = name
        self._lines: List[str] = []
        self._label_counter = 0

    def label(self, prefix: str = "L") -> str:
        """Allocate a fresh, unique label name."""
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    def emit(self, text: str) -> None:
        """Append a fragment (may be multiple lines; indentation-agnostic)."""
        for line in text.splitlines():
            line = line.strip()
            if line:
                self._lines.append(line)

    def lcg_seed(self, seed: int, state_reg: str = "r29") -> None:
        """Initialise the LCG state register."""
        self.emit(
            f"""
            lui  {state_reg}, {(seed >> 16) & 0xFFFF}
            ori  {state_reg}, {state_reg}, {seed & 0xFFFF}
            """
        )

    def lcg_step(self, state_reg: str = "r29", tmp_reg: str = "r28") -> None:
        """Advance the LCG: state = state * 1103515245 + 12345."""
        hi = (LCG_MULTIPLIER >> 16) & 0xFFFF
        lo = LCG_MULTIPLIER & 0xFFFF
        self.emit(
            f"""
            lui  {tmp_reg}, {hi}
            ori  {tmp_reg}, {tmp_reg}, {lo}
            mul  {state_reg}, {state_reg}, {tmp_reg}
            addi {state_reg}, {state_reg}, {LCG_INCREMENT}
            """
        )

    def random_bit(self, dest_reg: str, bit: int = 28,
                   state_reg: str = "r29", tmp_reg: str = "r28") -> None:
        """Advance the LCG and extract one *high* bit into ``dest_reg``."""
        self.lcg_step(state_reg, tmp_reg)
        self.emit(
            f"""
            srli {dest_reg}, {state_reg}, {bit}
            andi {dest_reg}, {dest_reg}, 1
            """
        )

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"

    def build(self, lint: Optional[bool] = None) -> Program:
        """Assemble into a :class:`Program`.

        By default the result is linted (:mod:`repro.analysis.lint`)
        and a :class:`repro.analysis.lint.LintError` is raised if any
        unsuppressed *error*-severity diagnostic remains — warnings are
        for ``python -m repro.analysis`` and CI to report.  Pass
        ``lint=False`` or set ``REPRO_WORKLOAD_LINT=0`` to opt out
        (e.g. when deliberately building broken programs in tests).
        Lint results are memoised per source text, so rebuilding the
        same workload repeatedly pays the analysis cost once.
        """
        program = assemble(self.source(), name=self.name)
        if lint is None:
            lint = os.environ.get("REPRO_WORKLOAD_LINT", "1") != "0"
        if lint:
            _lint_once(self.source(), program)
        return program


#: Source texts already lint-checked this process (hash of the text).
_LINTED: Set[int] = set()


def _lint_once(source: str, program: Program) -> None:
    key = hash(source)
    if key in _LINTED:
        return
    # Imported lazily: repro.analysis must stay importable without the
    # workloads package (and vice versa).
    from repro.analysis.lint import LintError, errors, lint_program

    hard = errors(lint_program(program))
    if hard:
        raise LintError(program.name, hard)
    _LINTED.add(key)
