"""gcc analog: an IR-rewriting (peephole) pass.

Real gcc compiles ``genrecog.i``: branchy traversal code with mixed
predictability (6.4 mispredictions per 1000 instructions), moderate
base IPC (2.69) and modest removal (~8%).  The paper singles gcc out:
its traces embed consistently-removable branches *together with*
unpredictable branches, so trace-grained confidence rarely saturates —
removal underperforms its opportunity (section 5's "unstable traces"
discussion).

The analog makes a single pass over an 8K-node IR buffer (64KB — the
streaming walk also exercises the data cache).  Per node (a uniform
34-instruction body; the opcode pattern repeats every 96 nodes, so the
trace stream is periodic):

* a live folding chain over the node's opcode/operand (window-limiting
  serial work);
* a dead-flag check that never fires (predictable, removable BR);
* an opcode-class split with equal-length arms (periodic,
  predictable);
* a *profitability test* on opcode classes 0-1 (~29% of the nodes)
  keyed to an LCG high bit — genuinely unpredictable, and deliberately
  embedded in the same loop body as the removable branches above: the
  chaos rides in the same traces and destabilises their confidence,
  reproducing gcc's "unstable traces" pathology;
* pass-status bookkeeping: a silent error-flag store (SV) and a
  last-match scratch overwritten unread (WW).
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.dsl import Asm

_NODES = 8192
_PATTERN = 96


def _opcode(i: int) -> int:
    """Opcode class of node *i*: the 96-node pattern clusters the
    chaotic classes (0-1, which take the LCG-keyed profitability test)
    into one 28-node stretch, leaving a 68-node chaos-free stretch whose
    traces stay confidence-stable (real gcc's unpredictable branches
    likewise cluster in specific functions)."""
    phase = i % _PATTERN
    if phase < 28:
        return phase % 2
    return 2 + ((phase * 5 + (phase * phase) // 7) % 4)


def build(scale: int = 1) -> Program:
    """Build the workload; ``scale`` multiplies the iteration count."""
    asm = Asm("gcc")
    nodes = _NODES * scale
    words = []
    for i in range(nodes):
        words.extend([_opcode(i), (i * 13) & 0x3F])
    asm.emit(
        f"""
        .text
        main:
            addi r1, r0, {nodes}
            addi r2, r0, nodes_buf
            addi r3, r0, 0              # node index
            addi r17, r0, stats
            addi r20, r0, 0             # fold checksum
            addi r21, r0, 0             # class counter
            addi r22, r0, 0             # rewrite counter
        """
    )
    asm.lcg_seed(0xBEEF)
    asm.emit(
        """
        node:
            lw   r4, 0(r2)              # opcode
            lw   r5, 4(r2)              # operand
            # ---- live folding chain ----
            add  r6, r5, r4
            xor  r6, r6, r3
            srai r7, r6, 2
            add  r7, r7, r6
            xor  r8, r7, r5
            add  r20, r20, r8
            # ---- rule 1: dead-flag check (never fires: removable) ----
            andi r9, r4, 8
            bne  r9, r0, rewrite_hard
            # ---- rule 2: opcode class split (periodic pattern) ----
            slti r10, r4, 3
            beq  r10, r0, high_class
            andi r11, r5, 31
            add  r21, r21, r11
            add  r27, r21, r11          # path scratch
            j    class_done
        high_class:
            srli r11, r5, 2
            xor  r21, r21, r11
            add  r27, r21, r11          # path scratch
            j    class_done
        class_done:
            # ---- rule 3: profitability test on classes 0-1 (~29%% of
            # nodes) ----
            slti r12, r4, 2
            beq  r12, r0, no_chaos
        """
    )
    asm.lcg_step(tmp_reg="r28")
    asm.emit(
        """
            srli r13, r29, 27
            andi r13, r13, 1
            beq  r13, r0, chaos_b
            add  r22, r22, r13
            j    merge
        chaos_b:
            addi r22, r22, 2
            j    merge
        no_chaos:
            # pad to the chaos path's length (9 instructions)
            add  r27, r27, r8           # path scratch
            xor  r27, r27, r5           # path scratch
            add  r27, r27, r4           # path scratch
            xor  r27, r27, r8           # path scratch
            add  r27, r27, r5           # path scratch
            xor  r27, r27, r4           # path scratch
            add  r27, r27, r8           # path scratch
            xor  r27, r27, r5           # path scratch
            add  r27, r27, r4           # path scratch
        merge:
            xor  r20, r20, r27          # consume path scratch (live)
            # ---- pass-status bookkeeping (removable) ----
            sltu r14, r20, r0           # error flag: always 0
            sw   r14, 0(r17)            # SV store
            sw   r8, 4(r17)             # WW last-match scratch
            # ---- advance ----
            addi r2, r2, 8
            addi r3, r3, 1
            addi r1, r1, -1
            bne  r1, r0, node
            out  r20
            out  r21
            out  r22
            halt
        rewrite_hard:
            # target of the never-taken dead-flag check
            addi r22, r22, 64
            j    merge

        .data
        """
    )
    asm.emit(f"nodes_buf: .word {' '.join(str(w) for w in words)}")
    asm.emit("stats: .space 16")
    return asm.build()
