"""go analog: game-tree position evaluation.

Real go (SPEC95, level 99) is control-flow chaos: 11 branch
mispredictions per 1000 instructions, base IPC 2.15, and essentially
nothing removable (~4%) — decisions depend on evolving board state.

The analog evaluates candidate moves on a 64-cell board whose contents
evolve with play:

* a candidate cell is chosen from LCG high bits (unlearnable);
* the evaluation walks the cell's neighbourhood with branches on cell
  occupancy — board-dependent, effectively random;
* promising moves mutate the board (live stores), so the branch
  behaviour keeps shifting, defeating both the trace predictor and the
  IR-detector's stability requirement.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.dsl import Asm

_BOARD_CELLS = 64


def build(scale: int = 1) -> Program:
    """Build the workload; ``scale`` multiplies the iteration count."""
    asm = Asm("go")
    moves = 3800 * scale
    board_init = " ".join(str(1 if i % 8 == 0 else 0) for i in range(_BOARD_CELLS))
    asm.emit(
        f"""
        .text
        main:
            addi r1, r0, {moves}
            addi r2, r0, board
            addi r20, r0, 0             # score
            addi r21, r0, 0             # stones placed
        """
    )
    asm.lcg_seed(0x60)
    asm.emit("move:")
    asm.lcg_step()
    asm.emit(
        f"""
            srli r3, r29, 23
            andi r3, r3, {_BOARD_CELLS - 1}   # candidate cell
            slli r4, r3, 2
            add  r4, r4, r2
            lw   r5, 0(r4)              # cell occupancy (mostly empty)
            bne  r5, r0, occupied
            # ---- empty cell: evaluate the neighbourhood ----
            addi r6, r3, 1
            andi r6, r6, {_BOARD_CELLS - 1}
            slli r6, r6, 2
            add  r6, r6, r2
            lw   r7, 0(r6)              # right neighbour
            addi r8, r3, {_BOARD_CELLS - 8}
            andi r8, r8, {_BOARD_CELLS - 1}
            slli r8, r8, 2
            add  r8, r8, r2
            lw   r9, 0(r8)              # "up" neighbour
            # branches on evolving board content: unpredictable
            beq  r7, r0, liberty_right
            addi r20, r20, 2
            j    check_up
        liberty_right:
            addi r20, r20, 5
        check_up:
            beq  r9, r0, liberty_up
            sub  r20, r20, r7
            j    place_decision
        liberty_up:
            addi r20, r20, 3
        place_decision:
            # influence evaluation: serial fold over the neighbourhood
            add  r14, r7, r9
            xor  r14, r14, r3
            srai r15, r14, 1
            add  r15, r15, r14
            xor  r15, r15, r7
            add  r20, r20, r15
            # place a stone only on a strong signal (rare, data-driven)
            andi r10, r15, 15
            bne  r10, r0, move_done
            addi r11, r0, 1
            sw   r11, 0(r4)             # mutate the board (live)
            addi r21, r21, 1
            j    move_done
        occupied:
            # contested cell: capture check on diagonal neighbour
            addi r12, r3, 9
            andi r12, r12, {_BOARD_CELLS - 1}
            slli r12, r12, 2
            add  r12, r12, r2
            lw   r13, 0(r12)
            bne  r13, r5, move_done
            sw   r0, 0(r12)             # capture (live store)
            addi r20, r20, 1
        move_done:
            addi r1, r1, -1
            bne  r1, r0, move
            out  r20
            out  r21
            halt

        .data
        board: .word {board_init}
        """
    )
    return asm.build()
