"""jpeg analog: blocked transform coding (DCT-like).

Real ijpeg (``vigo.ppm``) is loop-dominated image arithmetic: high ILP
(base IPC 3.24, the highest alongside vortex), decent predictability
(4.1 mispredictions per 1000 — fixed-trip loops with a few
data-dependent clamps) and very little removable work: almost every
computed value is consumed by the output block.

The analog transforms 8-sample blocks of a synthetic image:

* the inner loop multiply-accumulates samples against a coefficient
  row (independent accumulators: ILP-rich, fully predictable trips);
* coefficients are quantised with a data-dependent clamp branch (the
  modest misprediction source);
* results are stored to the output block (live stores — nothing
  ineffectual), so removal finds only loop-control branches.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.dsl import Asm

_BLOCK = 8


def build(scale: int = 1) -> Program:
    """Build the workload; ``scale`` multiplies the iteration count."""
    asm = Asm("jpeg")
    blocks = 800 * scale
    coeffs = " ".join(str(3 + 2 * i) for i in range(_BLOCK))
    samples = " ".join(str((i * 29 + 7) & 0xFF) for i in range(64))
    asm.emit(
        f"""
        .text
        main:
            addi r1, r0, {blocks}
            addi r2, r0, samples
            addi r3, r0, coeffs
            addi r4, r0, outblock
            addi r26, r0, 0             # image checksum
            addi r5, r0, 0              # block index
        block:
            # ---- select the block's sample row (wraps over 8 rows) ----
            andi r6, r5, 7
            slli r6, r6, 5              # row * 8 samples * 4 bytes
            add  r6, r6, r2
            # ---- transform: 8 independent MACs (ILP-rich) ----
            lw   r10, 0(r6)
            lw   r11, 4(r6)
            lw   r12, 8(r6)
            lw   r13, 12(r6)
            lw   r14, 16(r6)
            lw   r15, 20(r6)
            lw   r16, 24(r6)
            lw   r17, 28(r6)
            lw   r18, 0(r3)
            lw   r19, 4(r3)
            mul  r10, r10, r18
            mul  r11, r11, r19
            lw   r18, 8(r3)
            lw   r19, 12(r3)
            mul  r12, r12, r18
            mul  r13, r13, r19
            lw   r18, 16(r3)
            lw   r19, 20(r3)
            mul  r14, r14, r18
            mul  r15, r15, r19
            lw   r18, 24(r3)
            lw   r19, 28(r3)
            mul  r16, r16, r18
            mul  r17, r17, r19
            add  r20, r10, r11
            add  r21, r12, r13
            add  r22, r14, r15
            add  r23, r16, r17
            add  r20, r20, r21
            add  r22, r22, r23
            add  r20, r20, r22          # block energy
            # ---- quantise with a data-dependent clamp ----
            srai r24, r20, 6
            slti r25, r24, 2048
            bne  r25, r0, no_clamp
            addi r24, r0, 2047
        no_clamp:
            # ---- dithering decision (rare, data-dependent: the modest
            # misprediction source real jpeg has) ----
            mul  r8, r26, r5
            srli r8, r8, 21
            andi r8, r8, 7
            bne  r8, r0, no_dither
            addi r24, r24, 1
        no_dither:
            # ---- store the coded block (live) ----
            andi r7, r5, 15
            slli r7, r7, 2
            add  r7, r7, r4
            sw   r24, 0(r7)
            add  r26, r26, r24
            # ---- next block ----
            addi r5, r5, 1
            addi r1, r1, -1
            bne  r1, r0, block
            out  r26
            halt

        .data
        samples:  .word {samples}
        coeffs:   .word {coeffs}
        outblock: .space 64
        """
    )
    return asm.build()
