"""li analog: a lisp-interpreter evaluation loop.

Real li (xlisp running ``queens 7``) chases cons cells and dispatches
on type tags: moderate branch predictability (6.5 mispredictions per
1000 instructions), pointer-chasing load-use chains that hold base IPC
to 2.88, and ~10% removal.

The analog walks a ring of 64 cons cells.  Each evaluation step is a
uniform 32 instructions (16 cells = 512 instructions = 16 traces, so
the trace-phase pattern is short and stable):

* **pointer chase** — the cell's cdr is stored as an *index* that must
  be loaded, scaled and added before the next cell can be touched: a
  loop-carried serial chain (the classic lisp heap walk) that limits
  the conventional core and that the R-stream's value predictions
  dissolve;
* **type dispatch** — the tag pattern repeats every 16 cells: mostly
  trace-predictable, all dispatch paths padded to the same length;
* **gc poll** — three of every eight cells run an allocation check keyed to an
  in-program LCG high bit: concentrated, genuinely unpredictable
  branches (the source of li's moderate misprediction rate), confined
  to their own paths so the other traces keep stable removal
  confidence;
* **bookkeeping** — gc-colour and environment-depth words re-written
  unchanged (SV) and a per-step scratch slot overwritten unread (WW).
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.dsl import Asm

_CELLS = 64
_TAG_PATTERN = [0, 1, 2, 0, 1, 3, 0, 2, 1, 0, 3, 2, 0, 1, 2, 3]


def build(scale: int = 1) -> Program:
    """Build the workload; ``scale`` multiplies the iteration count."""
    asm = Asm("li")
    steps = 8000 * scale
    # Cons cells: [tag, value, cdr_index, pad]; 16-byte cells.
    cells = []
    for i in range(_CELLS):
        tag = _TAG_PATTERN[i % len(_TAG_PATTERN)]
        cells.extend([tag, (i * 37) & 0xFF, (i + 1) % _CELLS, 0])
    asm.emit(
        f"""
        .text
        main:
            addi r1, r0, {steps}
            addi r2, r0, cells          # heap base
            addi r3, r0, 0              # current cell index
            addi r17, r0, gcstate
            addi r6, r0, 1
            sw   r6, 0(r17)             # gc colour = white(1)
            addi r6, r0, 3
            sw   r6, 4(r17)             # env depth = 3
            addi r26, r0, 0             # eval accumulator
        """
    )
    asm.lcg_seed(0x71)
    asm.emit(
        """
        eval:
            # ---- locate cell and load it (pointer-chase chain) ----
            slli r4, r3, 4
            add  r4, r4, r2             # cell address
            lw   r5, 0(r4)              # tag
            lw   r7, 4(r4)              # value
            lw   r3, 8(r4)              # cdr index (carried chain)
            # ---- gc poll on three of every eight cells (concentrated
            # chaos; the quiet stretches keep their traces stable) ----
            andi r8, r3, 7
            slti r8, r8, 3
            beq  r8, r0, no_gc
        """
    )
    asm.random_bit("r9", bit=26)
    asm.emit(
        f"""
            beq  r9, r0, gc_white
            add  r26, r26, r9           # "grey" bookkeeping
            j    dispatch
        gc_white:
            addi r26, r26, 2
            j    dispatch
        no_gc:
            # pad to match the gc-poll path length (9 instructions)
            add  r27, r7, r5            # path scratch (live via eval_done)
            add  r27, r27, r5           # path scratch (live via eval_done)
            xor  r27, r27, r7           # path scratch (live via eval_done)
            add  r27, r27, r7           # path scratch (live via eval_done)
            add  r27, r27, r5           # path scratch (live via eval_done)
            xor  r27, r27, r5           # path scratch (live via eval_done)
            add  r27, r27, r5           # path scratch (live via eval_done)
            xor  r27, r27, r7           # path scratch (live via eval_done)
            add  r27, r27, r5           # path scratch (live via eval_done)
        dispatch:
            # ---- type dispatch (tag pattern repeats every 16 cells;
            # all paths are seven instructions) ----
            beq  r5, r0, tag_fixnum
            addi r10, r0, 1
            beq  r5, r10, tag_cons
            slti r11, r5, 3
            beq  r11, r0, tag_string
            sub  r26, r26, r7           # tag 2: symbol
            j    eval_done
        tag_string:
            xor  r26, r26, r7
            j    eval_done
        tag_fixnum:
            add  r26, r26, r7
            add  r27, r27, r5           # path scratch (live via eval_done)
            add  r27, r27, r5           # path scratch (live via eval_done)
            xor  r27, r27, r5           # path scratch (live via eval_done)
            add  r27, r27, r5           # path scratch (live via eval_done)
            j    eval_done
        tag_cons:
            slli r12, r7, 1
            add  r26, r26, r12
            add  r27, r27, r5           # path scratch (live via eval_done)
            j    eval_done
        eval_done:
            xor  r26, r26, r27          # consume the path scratch (live)
            add  r26, r26, r8           # poll-phase bit (live)
            # ---- interpreter bookkeeping: removable ----
            lw   r14, 0(r17)
            add  r26, r26, r14          # gc colour feeds the checksum
            sw   r14, 0(r17)            # SV gc colour rewrite
            sw   r27, 12(r17)           # WW last-eval scratch
            # ---- advance ----
            addi r1, r1, -1
            bne  r1, r0, eval
            out  r26
            halt

        .data
        cells:   .word {' '.join(str(w) for w in cells)}
        gcstate: .space 16
        """
    )
    return asm.build()
