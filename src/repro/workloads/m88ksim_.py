"""m88ksim analog: a microprocessor simulator loop.

The real m88ksim interprets Motorola 88100 binaries; the paper removes
nearly half of its dynamic instructions, dominated by silent stores
(status/flag words that rarely change) and dead writes (per-step
scratch state overwritten before use), with an extremely predictable
dispatch loop (1.9 branch mispredictions per 1000 instructions) and a
base IPC of 2.82.

This analog interprets a small fixed guest program (an 8-instruction
loop held in memory).  Per guest step the host executes:

* **fetch/decode/dispatch** — periodic, hence perfectly
  trace-predictable; every dispatch path is padded to the same dynamic
  length so the step is exactly 48 instructions and the guest cycle a
  whole number of traces (trace-phase stability is what lets the
  IR-predictor's per-entry confidence saturate, section 2.1.3);
* **a live evaluation chain** — a long serial dependence (address
  computation, a data-dependent guest-register load, arithmetic
  folding into the result checksum) that is *independent across
  steps*.  This chain is what holds the conventional core's IPC down
  (the 64-entry window covers barely more than one step): the A-stream
  gains by packing more (shortened) steps into its window, and the
  R-stream gains by issuing the chain immediately from delay-buffer
  value predictions;
* **removable bookkeeping** — simulator status words re-written with
  unchanged values (SV) through short feeder chains (P: SV), plus
  per-step scratch/trace slots overwritten unread by the next step
  (WW).
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.dsl import Asm

#: Guest "instruction" encodings: low 3 bits = opcode, bits 3-5 = source
#: register index.  Opcodes: 0 add, 1 sub, 2 and, 3 or, 4-6 add-imm
#: variants, 7 loop bookkeeping.
_GUEST_PROGRAM = [0x08, 0x11, 0x1A, 0x23, 0x0C, 0x15, 0x1E, 0x07]


def build(scale: int = 1) -> Program:
    """Build the workload; ``scale`` multiplies the guest step count."""
    asm = Asm("m88ksim")
    steps = 6000 * scale
    asm.emit(
        f"""
        .text
        main:
            addi r1, r0, {steps}        # remaining guest steps
            addi r2, r0, guest_text     # guest program base
            addi r3, r0, 0              # guest PC (index 0..7)
            addi r4, r0, flags          # status block base
            addi r5, r0, guest_regs     # guest register file base
            addi r6, r0, 3
            sw   r6, 0(r5)              # guest r0 = 3
            addi r6, r0, 5
            sw   r6, 4(r5)              # guest r1 = 5
            addi r6, r0, 9
            sw   r6, 8(r5)              # guest r2 = 9
            addi r13, r0, 0             # guest accumulator (live)
        step:
            # ---- fetch ----
            slli r7, r3, 2
            add  r7, r7, r2
            lw   r8, 0(r7)              # guest instruction word
            # ---- decode ----
            andi r9, r8, 7              # opcode
            srli r10, r8, 3
            andi r10, r10, 7            # source register index
            # ---- operand read ----
            slli r11, r10, 2
            add  r11, r11, r5
            lw   r12, 0(r11)            # guest source value
            # ---- dispatch (periodic and predictable; all paths are
            # eight instructions long) ----
            slti r14, r9, 4
            beq  r14, r0, high_ops
            slti r14, r9, 2
            beq  r14, r0, logic_ops
            beq  r9, r0, op_add
            sub  r13, r13, r12
            add  r27, r13, r9           # dead padding; lint: ok(dead-write)
            j    execute_done
        op_add:
            add  r13, r13, r12
            add  r27, r13, r9           # dead padding; lint: ok(dead-write)
            j    execute_done
        logic_ops:
            andi r14, r9, 1
            beq  r14, r0, op_and
            or   r13, r13, r12
            j    execute_done
        op_and:
            and  r13, r13, r10
            j    execute_done
        high_ops:
            addi r14, r9, -7
            beq  r14, r0, op_loop
            add  r13, r13, r10
            add  r27, r13, r9           # dead padding; lint: ok(dead-write)
            add  r27, r27, r9           # dead padding; lint: ok(dead-write)
            j    execute_done
        op_loop:
            addi r13, r13, 1
            add  r27, r13, r9           # dead padding; lint: ok(dead-write)
            add  r27, r27, r9           # dead padding; lint: ok(dead-write)
            add  r27, r27, r9           # dead padding; lint: ok(dead-write)
        execute_done:
            # ---- live evaluation chain: serial within the step,
            # independent across steps (inputs are this step's guest
            # data).  This is the window-limiting computation. ----
            add  r14, r12, r8
            xor  r14, r14, r3
            slli r15, r14, 3
            sub  r15, r15, r14          # * 7
            andi r16, r15, 8            # 0 or 8: guest register slot
            add  r16, r16, r5
            lw   r17, 0(r16)            # data-dependent guest load
            add  r18, r17, r14
            xor  r24, r18, r12
            srai r22, r12, 2            # side computation (parallel)
            xor  r22, r22, r8           # side computation (parallel, unread); lint: ok(dead-write)
            slli r19, r12, 1            # side computation (parallel)
            add  r19, r19, r8           # side computation (parallel, unread); lint: ok(dead-write)
            add  r13, r13, r24          # fold into live accumulator
            # ---- status-block update: a *chained* block of flag
            # computations feeding silent stores.  The whole chain is
            # removable (P: SV / SV) — the A-stream skips it, but the
            # R-stream re-executes it with its real serial dependences,
            # which is what keeps the R-stream short of peak (as in the
            # paper, where removed computation re-executes in the
            # R-stream). ----
            sltu r20, r24, r0           # carry flag: always 0
            slli r21, r20, 2            # shifted flag: 0
            or   r21, r21, r20          # merged: 0
            sw   r21, 0(r4)             # SV store
            andi r22, r21, 7            # cc subfield: 0
            xor  r22, r22, r20          # still 0
            sw   r22, 4(r4)             # SV store
            or   r23, r22, r21          # interrupt shadow: 0
            sw   r23, 8(r4)             # SV store
            add  r25, r23, r22          # mode scratch: 0
            sw   r25, 12(r4)            # SV store
            # ---- per-step scratch, overwritten next step unread ----
            sw   r24, 20(r4)            # WW store (dead)
            sw   r25, 24(r4)            # WW store (dead)
            # ---- advance guest PC (wraps 0..7) ----
            addi r3, r3, 1
            andi r3, r3, 7
            addi r1, r1, -1
            bne  r1, r0, step
            out  r13
            halt

        .data
        guest_text: .word {' '.join(str(w) for w in _GUEST_PROGRAM)}
        guest_regs: .space 64
        flags:      .space 32
        """
    )
    return asm.build()
