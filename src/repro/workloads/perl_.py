"""perl analog: string hashing and dictionary bookkeeping.

Real perl (the SPEC95 ``scrabble`` input) hashes dictionary words and
updates interpreter bookkeeping: very predictable control flow (2.0
branch mispredictions per 1000 instructions), base IPC 3.08, and the
second-largest removal fraction in the paper (~20%) — interpreter
flag/arena state is re-written unchanged constantly.

The analog iterates over a word table.  Per word it:

* hashes the word's packed 4-character chunks (an inner loop whose
  trip count follows a short periodic length table — the loop-carried
  hash chain runs through a chunk load, which is what holds the
  conventional core's IPC down and what the R-stream's value
  predictions dissolve);
* updates the bucket count for the hash (live read-modify-write);
* folds the hash through a post-processing chain into a checksum
  (live, independent across words);
* re-writes the interpreter's hot state block — taint flag, locale
  word — with unchanged values (SV) through feeder chains (P: SV),
  and writes per-word "last match" scratch that the next word
  overwrites unread (WW).

The word body is exactly 31 fixed instructions plus 10 per chunk; the
8-word length pattern sums to 20 chunks, so one pattern cycle is 448
instructions = 14 traces, giving the trace-phase stability the
IR-predictor's confidence mechanism needs.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.dsl import Asm

#: Word lengths in 4-byte chunks, cycled (sums to 20).
_WORD_CHUNKS = [2, 3, 2, 4, 2, 3, 2, 2]
_BUCKETS = 32768


def build(scale: int = 1) -> Program:
    """Build the workload; ``scale`` multiplies the iteration count."""
    asm = Asm("perl")
    words = 4200 * scale
    pool = [(0x61626364 + 17 * i) & 0x7FFFFFFF for i in range(16)]
    lengths = " ".join(str(c) for c in _WORD_CHUNKS)
    asm.emit(
        f"""
        .text
        main:
            addi r1, r0, {words}
            addi r2, r0, pool
            addi r3, r0, lengths
            addi r4, r0, 0              # word index
            addi r5, r0, buckets
            addi r17, r0, state
            addi r6, r0, 1
            sw   r6, 0(r17)             # taint flag = 1
            addi r26, r0, 0             # total words hashed
            addi r25, r0, 0             # checksum
        word:
            # ---- pick this word's chunk count (periodic) ----
            andi r7, r4, 7
            slli r7, r7, 2
            add  r7, r7, r3
            lw   r8, 0(r7)              # chunks in this word
            addi r9, r0, 0              # hash
            addi r10, r0, 0             # chunk index
        chunk:
            # ---- fold one chunk: the hash chain runs through the
            # chunk load (serial per iteration) ----
            add  r11, r10, r4
            andi r11, r11, 15
            slli r11, r11, 2
            add  r11, r11, r2
            lw   r12, 0(r11)            # chunk data
            slli r13, r9, 3
            add  r13, r13, r9           # hash * 9
            xor  r9, r13, r12
            addi r10, r10, 1
            bne  r10, r8, chunk
            # ---- bucket update (live; the hash spreads over a heap-
            # sized bucket table, so this read-modify-write misses the
            # data cache like real perl's hash tables do) ----
            xor  r9, r9, r4
            andi r14, r9, {_BUCKETS - 1}
            slli r14, r14, 2
            add  r14, r14, r5
            lw   r15, 0(r14)
            addi r15, r15, 1
            sw   r15, 0(r14)
            addi r26, r26, 1
            # ---- post-processing fold (live, short) ----
            srai r16, r9, 3
            xor  r16, r16, r9
            add  r25, r25, r16          # checksum
            # ---- interpreter state: a chained block of bookkeeping
            # computations feeding silent stores (removable: SV/P: SV),
            # plus per-word scratch overwritten unread (WW) ----
            sltu r20, r16, r0           # overflow flag: always 0
            slli r21, r20, 1            # arena-mark delta: 0
            or   r21, r21, r20          # still 0
            sw   r21, 0(r17)            # SV taint flag
            andi r22, r21, 3            # locale subfield: 0
            xor  r22, r22, r20          # still 0
            sw   r22, 4(r17)            # SV locale word
            or   r23, r22, r21          # utf8 flag: 0
            sw   r23, 8(r17)            # SV store
            sw   r16, 12(r17)           # WW last-match fold
            sw   r9, 16(r17)            # WW last-match hash
            addi r4, r4, 1
            addi r1, r1, -1
            bne  r1, r0, word
            out  r26
            out  r25
            halt

        .data
        pool:    .word {' '.join(str(v) for v in pool)}
        lengths: .word {lengths}
        buckets: .space {_BUCKETS * 4}
        state:   .space 32
        """
    )
    return asm.build()
