"""Benchmark registry: the Table 1 analog.

Maps each SPEC95-integer benchmark name to its analog builder plus the
metadata the paper's Table 1 reports (benchmark, input dataset,
instruction count -- ours measured at run time on demand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.isa.program import Program
from repro.workloads import (
    compress_,
    gcc_,
    go_,
    jpeg_,
    li_,
    m88ksim_,
    perl_,
    vortex_,
)


@dataclass(frozen=True)
class Benchmark:
    """One entry of the benchmark suite."""

    name: str
    #: The paper's Table 1 "input dataset" column, for reference.
    paper_input: str
    #: What our analog actually models.
    analog: str
    build: Callable[[int], Program]

    def program(self, scale: int = 1) -> Program:
        return self.build(scale)


_SUITE: List[Benchmark] = [
    Benchmark("compress", "40000 e 2231", "LZW hash-probing coder",
              compress_.build),
    Benchmark("gcc", "-O3 genrecog.i -o genrecog.s",
              "IR peephole-rewriting pass", gcc_.build),
    Benchmark("go", "99", "game-tree position evaluation", go_.build),
    Benchmark("jpeg", "vigo.ppm", "blocked DCT-like transform coding",
              jpeg_.build),
    Benchmark("li", "test.lsp (queens 7)", "lisp-interpreter eval loop",
              li_.build),
    Benchmark("m88ksim", "-c < ctl.in (dcrand.big)",
              "microprocessor simulator loop", m88ksim_.build),
    Benchmark("perl", "scrabble.pl < scrabble.in (dictionary)",
              "string hashing and dictionary bookkeeping", perl_.build),
    Benchmark("vortex", "vortex.in (persons.250, bendian.*)",
              "object-database transaction loop", vortex_.build),
]

_BY_NAME: Dict[str, Benchmark] = {b.name: b for b in _SUITE}


def benchmark_suite() -> List[Benchmark]:
    """All eight benchmarks, in the paper's Table 1 order."""
    return list(_SUITE)


def get_benchmark(name: str) -> Benchmark:
    """Look up one benchmark by its SPEC95 name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of "
            f"{sorted(_BY_NAME)}"
        ) from None
