"""vortex analog: an object-oriented database transaction loop.

Real vortex runs object-database transactions: the most predictable
control flow in SPECint95 (1.1 branch mispredictions per 1000
instructions), base IPC 3.24, and a meaningful removal fraction
(~16%): session/status state is re-validated and re-written with
unchanged values on nearly every transaction.

The analog processes transactions round-robin over a table of 32
fixed-layout records.  Each transaction is exactly 48 instructions
(3 traces per 2 transactions — a short trace-phase period):

* **locate + follow** — the record's link field chains into a second,
  data-dependent record load: a serial pointer-follow chain per
  transaction (independent across transactions) that limits the
  conventional core and is dissolved by the R-stream's value
  predictions;
* **validate** — magic and session status checks (always pass:
  predictable branches, their feeder chains P: BR);
* **update** — access counter read-modify-write and a payload
  checksum (live);
* **session block** — status/version words re-written unchanged (SV)
  plus a transaction journal slot overwritten unread (WW).
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.dsl import Asm

_RECORDS = 1024
_MAGIC = 0x4D2


def build(scale: int = 1) -> Program:
    """Build the workload; ``scale`` multiplies the iteration count."""
    asm = Asm("vortex")
    transactions = 5600 * scale
    # Record layout (8 words): [magic, counter, payload0, payload1,
    # link(index of a partner record), pad, pad, pad].
    init_words = []
    for i in range(_RECORDS):
        link = (i * 7 + 3) % _RECORDS
        init_words.extend([_MAGIC, 0, i * 3 + 1, i ^ 21, link, 0, 0, 0])
    asm.emit(
        f"""
        .text
        main:
            addi r1, r0, {transactions}
            addi r2, r0, records
            addi r3, r0, 0              # record index
            addi r4, r0, journal
            addi r17, r0, session
            addi r18, r0, 1
            sw   r18, 0(r17)            # session status = 1
            addi r18, r0, 7
            sw   r18, 4(r17)            # schema version = 7
            addi r26, r0, 0             # checksum accumulator
        txn:
            # ---- locate record ----
            slli r5, r3, 5
            add  r5, r5, r2             # record base (32 bytes)
            # ---- validate record magic (always passes) ----
            lw   r6, 0(r5)
            addi r7, r0, {_MAGIC}
            bne  r6, r7, corrupt
            # ---- validate session status (always 1) ----
            lw   r8, 0(r17)
            slti r9, r8, 2
            beq  r9, r0, corrupt
            # ---- pointer follow: serial, data-dependent chain ----
            lw   r10, 16(r5)            # link index
            andi r10, r10, {_RECORDS - 1}
            slli r11, r10, 5
            add  r11, r11, r2           # partner record base
            lw   r12, 8(r11)            # partner payload0
            add  r13, r12, r6
            xor  r13, r13, r3
            andi r14, r13, 4
            add  r14, r14, r11
            lw   r15, 8(r14)            # second data-dependent load
            add  r16, r15, r13
            xor  r16, r16, r12
            srai r18, r16, 2
            xor  r18, r18, r16
            add  r26, r26, r18          # fold into checksum (live)
            # ---- bump access counter (live RMW) ----
            lw   r19, 4(r5)
            addi r19, r19, 1
            sw   r19, 4(r5)
            # ---- payload checksum (live, ILP) ----
            lw   r20, 8(r5)
            lw   r21, 12(r5)
            add  r22, r20, r21
            add  r26, r26, r22
            # ---- session block: removable rewrites ----
            sltu r23, r18, r0           # error flag: always 0
            sw   r23, 8(r17)            # SV store
            lw   r25, 0(r17)
            sw   r25, 0(r17)            # SV status rewrite
            # ---- journal entry, overwritten next txn unread ----
            sw   r18, 0(r4)             # WW store
            # ---- live tail chain (extends the serial path) ----
            srai r27, r18, 1
            xor  r27, r27, r15
            add  r24, r27, r13
            xor  r24, r24, r19
            add  r26, r26, r24
            addi r3, r3, 1
            andi r3, r3, {_RECORDS - 1}
            addi r1, r1, -1
            bne  r1, r0, txn
            out  r26
            halt
        corrupt:
            out  r0
            halt

        .data
        records: .word {' '.join(str(w) for w in init_words)}
        session: .space 16
        journal: .space 16
        """
    )
    return asm.build()
