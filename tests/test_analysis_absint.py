"""Unit tests for the interval abstract interpreter and its derived
analyses (repro.analysis.absint / loops / ceiling).

The soundness contract under test: every fact emitted (constant value,
branch direction, silent store, trip bound, resolved jalr target) must
hold in *every* concrete execution.  The hypothesis suite
(tests/test_analysis_properties.py) checks the interval containment
property against generated programs; these tests pin down the derived
analyses on crafted ones.
"""

from repro.analysis.absint import (
    INT_MAX,
    INT_MIN,
    TOP,
    classify_branches,
    interpret,
    loop_bounds,
    monotone_exit_indices,
    resolved_jalr_targets,
    silent_store_indices,
)
from repro.analysis.ceiling import (
    ceiling_report,
    refine_cfg,
    report_json,
    static_removal_report,
)
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import analyze
from repro.analysis.loops import natural_loops
from repro.isa.assembler import assemble
from repro.isa.program import TEXT_BASE


def _interp(source, name="t"):
    program = assemble(source, name=name)
    return program, interpret(program)


class TestIntervals:
    def test_constants_propagate(self):
        program, res = _interp(
            """
            main:
                addi r1, r0, 5
                addi r2, r1, 3
                add  r3, r1, r2
                halt
            """
        )
        assert res.reg_interval(3, 1) == (5, 5)
        assert res.reg_interval(3, 2) == (8, 8)
        assert res.reg_interval(3, 3) == (13, 13)

    def test_r0_pinned_zero(self):
        _, res = _interp("main:\n addi r0, r0, 7\n halt")
        assert res.reg_interval(1, 0) == (0, 0)

    def test_join_of_two_paths_is_hull(self):
        # Registers (and memory) provably start at zero, so the
        # discriminator must be genuinely non-constant: a widened loop
        # counter in [1, 10] compared against a mid-range constant.
        program, res = _interp(
            """
            main:
                addi r9, r0, 10
                addi r8, r0, 5
            loop:
                beq  r9, r8, other  # mixed: r9 spans [1, 10]
                addi r1, r0, 2
                j next
            other:
                addi r1, r0, 10
            next:
                addi r9, r9, -1
                bne  r9, r0, loop
                halt
            """
        )
        join = program.index_of(program.pc_of(6))
        assert res.reg_interval(join, 1) == (2, 10)

    def test_loop_counter_stays_bounded(self):
        # The landmark-widening fixpoint must keep the counter in
        # [0, 10] rather than widening its lower bound to -inf.
        _, res = _interp(
            """
            main:
                addi r1, r0, 10
            loop:
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            """
        )
        lo, hi = res.reg_interval(1, 1)
        assert lo >= 0 and hi <= 10

    def test_unreachable_code_has_no_state(self):
        _, res = _interp("main:\n halt\n addi r1, r0, 1")
        assert res.reg_interval(1, 1) is None


class TestBranchClassification:
    def test_always_and_never(self):
        program, res = _interp(
            """
            main:
                addi r1, r0, 1
                beq  r1, r0, dead     # never: 1 != 0
                bne  r1, r0, live     # always: 1 != 0
            dead:
                out  r1
            live:
                halt
            """
        )
        classes = classify_branches(res)
        assert classes[1] == "never"
        assert classes[2] == "always"

    def test_data_dependent_branch_is_mixed(self):
        _, res = _interp(
            """
            main:
                addi r2, r0, 1
            loop:
                add  r2, r2, r2
                blt  r2, r0, done     # flips when r2 wraps: mixed
                bne  r2, r0, loop
            done:
                halt
            """
        )
        classes = classify_branches(res)
        assert "mixed" in classes.values()


class TestSilentStores:
    def test_store_of_held_value_is_silent(self):
        program, res = _interp(
            """
            main:
                addi r2, r0, 7
                sw   r2, val(r0)
                halt
            .data
            val: .word 7
            """
        )
        assert silent_store_indices(res) == (1,)

    def test_store_of_new_value_is_not_silent(self):
        _, res = _interp(
            """
            main:
                addi r2, r0, 8
                sw   r2, val(r0)
                halt
            .data
            val: .word 7
            """
        )
        assert silent_store_indices(res) == ()

    def test_second_store_after_update_is_silent(self):
        _, res = _interp(
            """
            main:
                addi r2, r0, 3
                sw   r2, val(r0)     # not silent: cell held 0
                sw   r2, val(r0)     # silent: cell now provably 3
                halt
            .data
            val: .word 0
            """
        )
        assert silent_store_indices(res) == (2,)


class TestLoops:
    SOURCE = """
        main:
            addi r1, r0, 0
            addi r3, r0, 0
        loop:
            add  r3, r3, r1
            addi r1, r1, 1
            blt  r1, r2, loop
            out  r3
            halt
    """

    def test_natural_loop_detected(self):
        program = assemble(
            """
            main:
                addi r1, r0, 8
            loop:
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            """,
            name="t",
        )
        cfg = build_cfg(program)
        loops = natural_loops(cfg)
        assert len(loops) == 1
        assert loops[0].header_index == 1

    def test_counted_loop_trip_bound(self):
        _, res = _interp(
            """
            main:
                addi r1, r0, 10
            loop:
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            """
        )
        bounds = loop_bounds(res)
        assert len(bounds) == 1
        bound = bounds[0]
        assert bound.counter == 1
        assert bound.step == -1
        # Counter spans at most [0, 10]: at most 11 increment executions.
        assert bound.bound <= 11

    def test_monotone_exit_branch(self):
        _, res = _interp(
            """
            main:
                addi r1, r0, 10
            loop:
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            """
        )
        # The bne tests the bounded counter: a monotone exit.
        assert monotone_exit_indices(res) == (2,)

    def test_unbounded_loop_has_no_bound(self):
        _, res = _interp(
            """
            main:
                lw r1, arr(r0)
            loop:
                add  r1, r1, r1     # not a single-addi counter
                bne  r1, r0, loop
                halt
            .data
            arr: .word 3
            """
        )
        assert loop_bounds(res) == ()


class TestJalrRefinement:
    """Satellite: constant facts tighten the jalr successor
    over-approximation (every indirect target) to the proven target."""

    SOURCE = """
        main:
            addi r1, r0, fn     # fn's address, materialized
            jalr r31, r1
            halt
        fn:
            jalr r0, r31
    """

    def test_base_cfg_over_approximates(self):
        program = assemble(self.SOURCE, name="t")
        cfg = build_cfg(program)
        assert not cfg.indirect_exact
        # Both jalrs get every indirect target.
        assert len(cfg.instr_succs[1]) >= 2
        assert set(cfg.instr_succs[1]) == set(cfg.indirect_targets)

    def test_absint_resolves_targets(self):
        program, res = _interp(self.SOURCE)
        resolved = resolved_jalr_targets(res)
        assert resolved[1] == 3      # jalr r31, r1 -> fn
        assert resolved[3] == 2      # jalr r0, r31 -> return site

    def test_refined_cfg_prunes_edges_and_is_exact(self):
        program, res = _interp(self.SOURCE)
        base = build_cfg(program)
        refined = refine_cfg(program, res)
        assert refined.instr_succs[1] == (3,)
        assert refined.instr_succs[3] == (2,)
        assert refined.indirect_exact
        base_edges = sum(len(s) for s in base.instr_succs)
        refined_edges = sum(len(s) for s in refined.instr_succs)
        assert refined_edges < base_edges

    def test_refinement_enables_must_live_claims(self):
        program, res = _interp(self.SOURCE)
        base_df = analyze(build_cfg(program))
        refined_df = analyze(refine_cfg(program, res))
        # The over-approximated CFG makes no MUST claims; the proven
        # one may (and the report records the exactness promotion).
        assert not base_df.cfg.indirect_exact
        assert refined_df.cfg.indirect_exact
        report = static_removal_report(program)
        assert report.indirect_exact
        assert report.jalr_resolved == report.jalr_total == 2
        assert report.pruned_edges > 0


class TestStaticRemovalReport:
    SOURCE = """
        main:
            addi r9, r0, 10
        loop:
            addi r3, r0, 1      # dead write: killed below, unreferenced
            addi r3, r0, 2
            add  r4, r4, r3
            addi r2, r0, 7
            sw   r2, val(r0)    # silent store: cell initialized to 7
            addi r9, r9, -1
            bne  r9, r0, loop
            out  r4
            halt
        .data
        val: .word 7
    """

    def test_fact_families_populated(self):
        program = assemble(self.SOURCE, name="t")
        report = static_removal_report(program)
        dead = set(report.dead_write_pcs)
        assert program.pc_of(1) in dead
        assert program.pc_of(5) in set(report.silent_store_pcs)
        assert len(report.loop_header_pcs) == 1
        assert len(report.loop_trip_bounds) == 1
        kinds = report.fact_kinds()
        assert kinds[program.pc_of(1)] == ("dead-write",)
        # The cell is never read back, so the store is both dead and
        # silent — at minimum the silent-store proof must be present.
        assert "silent-store" in kinds[program.pc_of(5)]

    def test_proven_pcs_sorted_unique(self):
        program = assemble(self.SOURCE, name="t")
        report = static_removal_report(program)
        proven = report.proven_pcs
        assert list(proven) == sorted(set(proven))

    def test_ceiling_invariants(self):
        program = assemble(self.SOURCE, name="t")
        report = ceiling_report(program)
        assert not report.truncated
        assert 0.0 <= report.proven_fraction
        assert report.proven_fraction <= report.ceiling_fraction <= 1.0
        # halt retires once: the ceiling excludes it.
        assert report.never_removable_instances >= 1
        assert report.ceiling_fraction < 1.0

    def test_report_json_is_deterministic(self):
        program = assemble(self.SOURCE, name="t")
        a = report_json(ceiling_report(program))
        b = report_json(ceiling_report(program))
        assert a == b
        assert a["name"] == "t"
        profile = a["profile"]
        assert profile["proven_fraction"] <= profile["ceiling_fraction"]


class TestWideningTermination:
    def test_nested_loops_converge(self):
        _, res = _interp(
            """
            main:
                addi r1, r0, 5
            outer:
                addi r2, r0, 5
            inner:
                add  r4, r4, r2
                addi r2, r2, -1
                bne  r2, r0, inner
                addi r1, r1, -1
                bne  r1, r0, outer
                out  r4
                halt
            """
        )
        lo, hi = res.reg_interval(2, 1)
        assert 0 <= lo and hi <= 5
        lo2, hi2 = res.reg_interval(3, 2)
        assert 0 <= lo2 and hi2 <= 5

    def test_wrapping_add_goes_top(self):
        _, res = _interp(
            """
            main:
                addi r1, r0, 1
            loop:
                add  r1, r1, r1     # doubles forever: must hit TOP
                beq  r1, r0, done
                j    loop
            done:
                halt
            """
        )
        assert res.reg_interval(1, 1) == TOP
