"""Unit tests for CFG construction (repro.analysis.cfg)."""

from repro.analysis.cfg import build_cfg
from repro.isa.assembler import assemble
from repro.isa.program import TEXT_BASE


def _cfg(source, name="t"):
    return build_cfg(assemble(source, name=name))


class TestBlocks:
    def test_straight_line_single_block(self):
        cfg = _cfg("addi r1, r0, 1\nadd r2, r1, r1\nhalt")
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].start == 0 and cfg.blocks[0].end == 3
        assert cfg.block_of == [0, 0, 0]

    def test_branch_splits_blocks(self):
        cfg = _cfg(
            """
            main:
                addi r1, r0, 3
            loop:
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            """
        )
        # Blocks: [addi], [addi; bne], [halt].
        assert [(b.start, b.end) for b in cfg.blocks] == [(0, 1), (1, 3), (3, 4)]
        loop = cfg.blocks[1]
        assert set(loop.succs) == {1, 2}  # back edge + fall-through
        assert set(cfg.blocks[0].succs) == {1}

    def test_instr_succs_branch(self):
        cfg = _cfg(
            """
            main:
                beq r1, r2, done
                addi r3, r0, 1
            done:
                halt
            """
        )
        assert set(cfg.instr_succs[0]) == {1, 2}
        assert cfg.instr_succs[1] == (2,)
        assert cfg.instr_succs[2] == ()  # halt

    def test_entry_is_main_label(self):
        cfg = _cfg(
            """
            helper:
                halt
            main:
                halt
            """
        )
        assert cfg.entry_index == 1


class TestReachability:
    def test_unreachable_after_jump(self):
        cfg = _cfg(
            """
            main:
                j end
                addi r1, r0, 1
            end:
                halt
            """
        )
        assert cfg.reachable_instrs() == frozenset({0, 2})
        assert 1 not in {
            i for b in cfg.reachable_blocks() for i in cfg.blocks[b].indices()
        }

    def test_can_reach_backwards_closure(self):
        cfg = _cfg(
            """
            main:
                beq r1, r0, spin
                halt
            spin:
                j spin
            """
        )
        halts = {1}
        reaches = cfg.can_reach(halts)
        assert 0 in reaches and 1 in reaches
        assert 2 not in reaches  # the self-loop never reaches halt

    def test_falls_off_end(self):
        cfg = _cfg("addi r1, r0, 1\nadd r2, r1, r1")
        assert 1 in cfg.falls_off


class TestDominators:
    def test_diamond(self):
        cfg = _cfg(
            """
            main:
                beq  r1, r0, right
                addi r2, r0, 1
                j    join
            right:
                addi r2, r0, 2
            join:
                halt
            """
        )
        idom = cfg.dominators()
        entry = cfg.block_of[cfg.entry_index]
        join = cfg.block_of[4]
        left = cfg.block_of[1]
        right = cfg.block_of[3]
        assert idom[entry] == entry
        assert idom[left] == entry and idom[right] == entry
        assert idom[join] == entry  # neither arm dominates the join
        assert cfg.dominates(entry, join)
        assert not cfg.dominates(left, join)


class TestIndirect:
    def test_no_jalr_is_exact(self):
        cfg = _cfg("halt")
        assert cfg.indirect_exact and cfg.indirect_targets == ()

    def test_jalr_targets_return_sites_and_taken_labels(self):
        cfg = _cfg(
            """
            main:
                addi r1, r0, fn     # fn's address is taken
                jalr r31, r1
                halt
            fn:
                jalr r0, r31
            """
        )
        assert not cfg.indirect_exact
        # Targets: the return site after each jal/jalr, plus fn itself.
        assert 3 in cfg.indirect_targets          # fn (address-taken)
        assert 2 in cfg.indirect_targets          # return site of jalr@1
        assert set(cfg.instr_succs[1]) == set(cfg.indirect_targets)

    def test_branch_target_not_address_taken(self):
        program = assemble(
            """
            main:
                beq r0, r0, done
            done:
                halt
            """
        )
        assert program.source is not None
        assert program.source.address_taken == frozenset()

    def test_entry_pc(self):
        cfg = _cfg("main:\nhalt")
        assert cfg.program.pc_of(cfg.entry_index) == TEXT_BASE
