"""Tests for the static/dynamic ineffectuality cross-check
(repro.analysis.ineffectual) and its eval wiring."""

import pickle

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import analyze
from repro.analysis.ineffectual import analyze_static, cross_check
from repro.isa.assembler import assemble
from repro.workloads.suite import benchmark_suite


def _program(source, name="t"):
    return assemble(source, name=name)


class TestStaticSummary:
    def test_pcs_partition(self):
        program = _program(
            """
            main:
                addi r1, r0, 1      # dead
                addi r1, r0, 2      # must-live
                out  r1
                halt
            """
        )
        summary = analyze_static(program)
        assert summary.dead_pcs == (program.pc_of(0),)
        assert program.pc_of(1) in summary.must_live_pcs
        assert summary.indirect_exact


class TestCrossCheck:
    #: A loop with one dead write per iteration (r5, overwritten next
    #: iteration unread) and one must-live write (r2, always read).
    LOOP = """
        main:
            addi r1, r0, 200
        loop:
            addi r2, r1, 7          # must-live: read right below
            add  r3, r3, r2
            add  r5, r3, r1         # dead: overwritten next iteration unread
            addi r1, r1, -1
            bne  r1, r0, loop
            out  r3
            halt
    """

    def test_loop_dead_write_detected_and_sound(self):
        program = _program(self.LOOP)
        result = cross_check(program)
        assert result.sound
        assert result.static_unsound_pcs == ()
        assert result.detector_contradiction_pcs == ()
        # The dead write executes once per iteration...
        assert result.dead_instances_executed == 200
        # ...and nearly all instances are classified ineffectual (the
        # final iterations' kills can fall outside the detector scope).
        assert result.instance_agreement > 0.9
        assert result.pc_coverage == 1.0

    def test_static_dead_never_referenced(self):
        program = _program(self.LOOP)
        result = cross_check(program)
        for stat in result.dead_pc_stats:
            assert stat.referenced == 0

    def test_truncated_run_reports_flag(self):
        result = cross_check(_program(self.LOOP), max_instructions=50)
        assert result.truncated
        assert result.sound  # partial observation may not contradict

    def test_result_is_picklable(self):
        result = cross_check(_program(self.LOOP))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.sound and clone.retired == result.retired
        assert clone.instance_agreement == result.instance_agreement

    def test_dead_store_cross_checked(self):
        program = _program(
            """
            main:
                addi r1, r0, 100
            loop:
                sw   r1, slot(r0)   # dead store: overwritten unread
                sw   r0, slot(r0)
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            .data
            slot: .word 0
            """
        )
        df = analyze(build_cfg(program))
        assert df.dead_stores  # both stores qualify
        result = cross_check(program, dataflow=df)
        assert result.sound
        assert result.dead_instances_executed > 0
        assert result.instance_agreement > 0.9


class TestAbsintCrossCheck:
    """The interval-layer extension: proven silent stores and pinned
    branch directions are checked against the dynamic run too."""

    SOURCE = """
        main:
            addi r1, r0, 150
            addi r2, r0, 7
        loop:
            sw   r2, slot(r0)   # provably silent: cell holds 7
            addi r1, r1, -1
            bne  r1, r0, loop
            out  r2
            halt
        .data
        slot: .word 7
    """

    def test_silent_stores_tracked_and_sound(self):
        result = cross_check(_program(self.SOURCE))
        assert result.removal_report is not None
        assert result.removal_report.silent_store_pcs
        assert result.silent_instances_executed == 150
        assert result.silent_violation_pcs == ()
        assert 0.0 <= result.silent_agreement <= 1.0
        assert result.sound

    def test_pinned_branches_tracked_and_sound(self):
        # bne exits once and loops 149 times: mixed, so only provably
        # single-direction branches count as pinned.
        program = _program(
            """
            main:
                addi r1, r0, 3
                bne  r1, r0, skip   # always taken: pinned
                out  r1
            skip:
                halt
            """
        )
        result = cross_check(program)
        assert result.removal_report is not None
        assert result.removal_report.branch_always_pcs
        assert result.pinned_branch_instances >= 1
        assert result.branch_violation_pcs == ()
        assert result.sound

    def test_absint_opt_out(self):
        result = cross_check(_program(self.SOURCE), include_absint=False)
        assert result.removal_report is None
        assert result.silent_instances_executed == 0
        assert result.silent_agreement == 1.0
        assert result.sound

    def test_caller_supplied_report_reused(self):
        from repro.analysis.ceiling import static_removal_report

        program = _program(self.SOURCE)
        report = static_removal_report(program)
        result = cross_check(program, removal_report=report)
        assert result.removal_report is report
        assert result.sound


class TestFullSuite:
    @pytest.mark.parametrize(
        "bench", benchmark_suite(), ids=lambda b: b.name
    )
    def test_suite_cross_check_green(self, bench):
        """Acceptance: zero soundness contradictions on every bundled
        workload, and the detector confirms the lion's share of the
        statically-dead instances that execute."""
        result = cross_check(bench.program(scale=1))
        assert not result.truncated
        assert result.static_unsound_pcs == ()
        assert result.detector_contradiction_pcs == ()
        assert result.instance_agreement > 0.9


class TestEvalWiring:
    def test_crosscheck_rows(self):
        from repro.eval import models
        from repro.eval.experiments import ineffectuality_crosscheck

        models.configure_disk_cache(enabled=False)
        try:
            rows = ineffectuality_crosscheck(benchmarks=["m88ksim"])
        finally:
            models.clear_cache()
            models.configure_disk_cache(enabled=True)
        (row,) = rows
        assert row["sound"] and row["contradictions"] == 0
        assert row["static_dead_pcs"] == 6
        assert 0.9 < row["instance_agreement"] <= 1.0
