"""Unit tests for the dataflow analyses (repro.analysis.dataflow)."""

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    WriteClass,
    analyze,
    constant_propagation,
    liveness,
    must_use_before_kill,
    reaching_definitions,
)
from repro.isa.assembler import assemble
from repro.isa.program import DATA_BASE


def _df(source):
    return analyze(build_cfg(assemble(source, name="t")))


class TestConstantPropagation:
    def test_entry_registers_are_zero(self):
        cfg = build_cfg(assemble("add r3, r1, r2\nhalt"))
        consts = constant_propagation(cfg)
        env = consts.env_in[0]
        assert env is not None and all(v == 0 for v in env)

    def test_alu_folding(self):
        cfg = build_cfg(
            assemble(
                """
                addi r1, r0, 6
                addi r2, r0, 7
                mul  r3, r1, r2
                halt
                """
            )
        )
        consts = constant_propagation(cfg)
        assert consts.env_in[3][3] == 42

    def test_loop_carried_value_goes_unknown(self):
        cfg = build_cfg(
            assemble(
                """
                main:
                    addi r1, r0, 5
                loop:
                    addi r1, r1, -1
                    bne  r1, r0, loop
                    halt
                """
            )
        )
        consts = constant_propagation(cfg)
        # At the loop head r1 is 5 on entry but 4, 3, ... around the
        # back edge: the meet must lose it.
        assert consts.env_in[1][1] is None

    def test_memory_addresses_resolved(self):
        cfg = build_cfg(
            assemble(
                """
                main:
                    addi r1, r0, arr
                    lw   r2, 4(r1)
                    sw   r2, 8(r1)
                    halt
                .data
                arr: .word 1 2 3 4
                """
            )
        )
        consts = constant_propagation(cfg)
        assert consts.mem_addr[1] == DATA_BASE + 4
        assert consts.mem_addr[2] == DATA_BASE + 8

    def test_div_zero_detected(self):
        cfg = build_cfg(assemble("addi r1, r0, 9\ndiv r2, r1, r0\nhalt"))
        consts = constant_propagation(cfg)
        assert consts.div_zero == (1,)

    def test_load_result_unknown(self):
        cfg = build_cfg(
            assemble(
                """
                main:
                    lw r1, arr(r0)
                    halt
                .data
                arr: .word 7
                """
            )
        )
        consts = constant_propagation(cfg)
        assert consts.env_in[1][1] is None


class TestLiveness:
    def test_dead_write_not_live_out(self):
        df = _df("addi r1, r0, 1\naddi r1, r0, 2\nout r1\nhalt")
        assert not df.live.reg_live_out(0, 1)
        assert df.live.reg_live_out(1, 1)

    def test_branch_keeps_value_live_on_one_path(self):
        df = _df(
            """
            main:
                addi r1, r0, 1
                beq  r2, r0, skip
                out  r1
            skip:
                halt
            """
        )
        assert df.live.reg_live_out(0, 1)

    def test_unknown_load_keeps_memory_live(self):
        # The first store's slot may be re-read through a dynamic
        # address (r3 is loaded, hence statically unknown): the unknown
        # load must conservatively keep every tracked word live.  The
        # final store *is* dead — memory is unobservable after halt.
        df = _df(
            """
            main:
                sw  r1, arr(r0)
                lw  r3, arr(r0)     # r3 becomes statically unknown
                lw  r2, 0(r3)       # unknown address: reads everything
                sw  r4, arr(r0)
                halt
            .data
            arr: .word 0
            """
        )
        assert df.dead_stores == (3,)

    def test_dead_store_to_known_address(self):
        df = _df(
            """
            main:
                sw  r1, arr(r0)
                sw  r2, arr(r0)
                lw  r3, arr(r0)
                out r3
                halt
            .data
            arr: .word 0
            """
        )
        assert df.dead_stores == (0,)


class TestReachingDefs:
    def test_use_def_chain(self):
        cfg = build_cfg(
            assemble(
                """
                main:
                    addi r1, r0, 1
                    addi r1, r0, 2
                    out  r1
                    halt
                """
            )
        )
        rd = reaching_definitions(cfg)
        # The OUT reads only the second definition.
        assert rd.use_defs[(2, 1)] == (1,)
        assert rd.def_use[0] == ()
        assert rd.def_use[1] == ((2, 1),)

    def test_merge_point_sees_both_defs(self):
        cfg = build_cfg(
            assemble(
                """
                main:
                    beq  r9, r0, other
                    addi r1, r0, 1
                    j    join
                other:
                    addi r1, r0, 2
                join:
                    out  r1
                    halt
                """
            )
        )
        rd = reaching_definitions(cfg)
        assert set(rd.use_defs[(4, 1)]) == {0, 1}

    def test_undefined_use_has_no_defs(self):
        cfg = build_cfg(assemble("out r5\nhalt"))
        rd = reaching_definitions(cfg)
        assert rd.use_defs[(0, 5)] == ()


class TestMustUse:
    def test_straight_line_must_use(self):
        cfg = build_cfg(assemble("addi r1, r0, 1\nout r1\nhalt"))
        must = must_use_before_kill(cfg, 1)
        assert must[1]  # at the OUT itself
        assert not must[2]  # at halt, r1 is never used again

    def test_possible_infinite_loop_defeats_must(self):
        # The loop may statically spin forever without using r1, so no
        # must-use claim is allowed at the loop head (least fixpoint).
        cfg = build_cfg(
            assemble(
                """
                main:
                    addi r1, r0, 1
                spin:
                    beq  r2, r0, spin
                    out  r1
                    halt
                """
            )
        )
        must = must_use_before_kill(cfg, 1)
        assert not must[1]


class TestWriteClasses:
    def test_classification(self):
        df = _df(
            """
            main:
                addi r1, r0, 1      # dead: overwritten unread
                addi r1, r0, 2      # must-live: OUT reads it on all paths
                out  r1
                addi r2, r0, 3      # partial: read on one path only
                beq  r9, r0, skip
                out  r2
            skip:
                halt
            """
        )
        assert df.write_classes[0] is WriteClass.DEAD
        assert df.write_classes[1] is WriteClass.MUST_LIVE
        assert df.write_classes[3] is WriteClass.PARTIAL

    def test_no_must_claims_with_jalr(self):
        df = _df(
            """
            main:
                addi r1, r0, fn
                addi r2, r0, 5
                jalr r31, r1
                out  r2
                halt
            fn:
                jalr r0, r31
            """
        )
        assert not df.cfg.indirect_exact
        assert WriteClass.MUST_LIVE not in df.write_classes.values()

    def test_unreachable_writes_not_classified(self):
        df = _df(
            """
            main:
                j end
                addi r1, r0, 1
            end:
                halt
            """
        )
        assert 1 not in df.write_classes
