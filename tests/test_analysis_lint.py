"""Unit tests for the workload linter (repro.analysis.lint)."""

import pytest

from repro.analysis.lint import ERROR, WARNING, LintError, active, errors, lint_program
from repro.isa.assembler import assemble
from repro.workloads import dsl
from repro.workloads.suite import benchmark_suite


def _rules(source, allow=()):
    diags = active(lint_program(assemble(source, name="t"), allow=allow))
    return {d.rule for d in diags}


def _find(source, rule):
    diags = lint_program(assemble(source, name="t"))
    return [d for d in diags if d.rule == rule]


class TestRules:
    def test_clean_program(self):
        assert _rules("main:\naddi r1, r0, 1\nout r1\nhalt") == set()

    def test_missing_halt(self):
        assert "missing-halt" in _rules("main:\nj main")

    def test_fall_off_end(self):
        assert "fall-off-end" in _rules("addi r1, r0, 1")

    def test_halt_unreachable_infinite_loop(self):
        rules = _rules(
            """
            main:
                beq r1, r0, spin
                halt
            spin:
                j spin
            """
        )
        assert "halt-unreachable" in rules
        assert "missing-halt" not in rules

    def test_unreachable_code(self):
        assert "unreachable-code" in _rules("main:\nj end\naddi r1, r0, 1\nend:\nhalt")

    def test_undef_read(self):
        diags = _find("main:\nout r5\nhalt", "undef-read")
        assert diags and diags[0].severity == WARNING
        assert "r5" in diags[0].message

    def test_dead_write(self):
        diags = _find(
            "main:\naddi r1, r0, 1\naddi r1, r0, 2\nout r1\nhalt", "dead-write"
        )
        assert len(diags) == 1 and diags[0].index == 0

    def test_dead_store(self):
        source = """
            main:
                sw r1, arr(r0)
                sw r2, arr(r0)
                lw r3, arr(r0)
                out r3
                halt
            .data
            arr: .word 0
        """
        assert [d.index for d in _find(source, "dead-store")] == [0]

    def test_r0_write(self):
        assert "r0-write" in _rules("main:\nadd r0, r1, r2\nhalt")

    def test_oob_and_unaligned_data(self):
        source = """
            main:
                lw r1, arr(r0)
                lw r2, 2(r3)        # r3 = 0 statically: addr 2, unaligned+oob
                halt
            .data
            arr: .word 0
        """
        rules = _rules(source)
        assert "oob-data" in rules and "unaligned-data" in rules
        assert all(d.severity == ERROR for d in _find(source, "oob-data"))

    def test_div_zero(self):
        assert "div-zero" in _rules("main:\naddi r1, r0, 4\ndiv r2, r1, r0\nhalt")

    def test_conv_link(self):
        assert "conv-link" in _rules("main:\njal r5, fn\nhalt\nfn:\njalr r0, r5")
        assert "conv-link" not in _rules("main:\njal r31, fn\nhalt\nfn:\njalr r0, r31")

    def test_lcg_low_bits(self):
        source = """
            main:
                lui  r29, 1
                andi r1, r29, 7     # low bits of the LCG state
                out  r1
                halt
        """
        assert "lcg-low-bits" in _rules(source)

    def test_lcg_high_bits_ok(self):
        source = """
            main:
                lui  r29, 1
                srli r1, r29, 28
                andi r1, r1, 1
                out  r1
                halt
        """
        assert "lcg-low-bits" not in _rules(source)


class TestSuppression:
    SOURCE = """
        main:
            addi r1, r0, 1          # lint: ok(dead-write)
            addi r1, r0, 2
            out  r1
            halt
    """

    def test_source_suppression(self):
        diags = lint_program(assemble(self.SOURCE, name="t"))
        dead = [d for d in diags if d.rule == "dead-write"]
        assert len(dead) == 1 and dead[0].suppressed
        assert active(diags) == []

    def test_bare_ok_suppresses_all_rules(self):
        source = "main:\naddi r1, r0, 1  # lint: ok\naddi r1, r0, 2\nout r1\nhalt"
        assert active(lint_program(assemble(source, name="t"))) == []

    def test_mismatched_rule_does_not_suppress(self):
        source = "main:\naddi r1, r0, 1  # lint: ok(r0-write)\naddi r1, r0, 2\nout r1\nhalt"
        assert "dead-write" in {d.rule for d in active(lint_program(assemble(source)))}

    def test_allow_list(self):
        assert _rules(
            "main:\naddi r1, r0, 1\naddi r1, r0, 2\nout r1\nhalt",
            allow=("dead-write",),
        ) == set()

    def test_unknown_allow_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            lint_program(assemble("halt"), allow=("no-such-rule",))


class TestWorkloadIntegration:
    def test_all_bundled_workloads_lint_clean(self):
        for bench in benchmark_suite():
            program = bench.program(scale=1)
            bad = active(lint_program(program))
            assert bad == [], (
                f"{bench.name}: " + "; ".join(d.render() for d in bad)
            )

    def test_build_raises_on_lint_error(self):
        asm = dsl.Asm("broken")
        asm.emit("main:\naddi r1, r0, 1")  # falls off the end
        with pytest.raises(LintError, match="fall-off-end"):
            asm.build()

    def test_build_opt_outs(self, monkeypatch):
        asm = dsl.Asm("broken")
        asm.emit("main:\naddi r1, r0, 1")
        assert len(asm.build(lint=False)) == 1
        monkeypatch.setenv("REPRO_WORKLOAD_LINT", "0")
        assert len(asm.build()) == 1

    def test_build_allows_warnings(self):
        asm = dsl.Asm("warns")
        asm.emit("main:\naddi r1, r0, 1\naddi r1, r0, 2\nout r1\nhalt")
        program = asm.build()  # dead-write is warning-severity: no raise
        assert errors(lint_program(program)) == []


class TestErrorStructure:
    def test_diagnostic_carries_source_location(self):
        program = assemble("main:\n    addi r1, r0, 1\n    halt", name="t")
        diags = lint_program(program)
        dead = [d for d in diags if d.rule == "dead-write"]
        assert dead[0].line_no == 2
        assert "addi r1, r0, 1" in dead[0].line_text
        assert "line 2" in dead[0].render()
